//! Property layer for the autotuner: every accepted move keeps the
//! schedule safe, greedy descent is monotone in the predicted makespan,
//! and tuning is a fixpoint — re-tuning a tuned schedule changes nothing.

use ooo_core::cost::{LayerCost, TableCost};
use ooo_core::graph::TrainGraph;
use ooo_core::op::{LayerId, Op};
use ooo_core::schedule::Schedule;
use ooo_tune::{tune_schedule, MoveKind, TuneOptions};
use ooo_verify::{Verifier, VerifyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deliberately lazy two-lane schedule: the main stream runs the
/// backward spine and forwards, while every `dW` and `U` is parked at
/// the end of the sub-stream — maximal room for the tuner's moves.
fn lazy_two_lane(l: usize) -> (TrainGraph, Schedule) {
    let graph = TrainGraph::single_gpu(l);
    let mut main = vec![Op::Loss];
    for i in (2..=l).rev() {
        main.push(Op::OutputGrad(LayerId(i)));
    }
    for i in 1..=l {
        main.push(Op::Forward(LayerId(i)));
    }
    let mut sub = Vec::new();
    for i in 1..=l {
        sub.push(Op::WeightGrad(LayerId(i)));
        sub.push(Op::Update(LayerId(i)));
    }
    let mut s = Schedule::new();
    s.add_lane("main", main);
    s.add_lane("sub", sub);
    (graph, s)
}

fn varied_cost(l: usize, seed: u64) -> TableCost {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..8);
        c.output_grad = rng.gen_range(1..8);
        c.weight_grad = rng.gen_range(1..8);
        c.update = rng.gen_range(1..4);
    }
    cost
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Whatever sequence of moves the tuner accepts, the result
    /// passes the `ooo-verify` safety gate with zero diagnostics.
    #[test]
    fn accepted_moves_keep_the_schedule_verify_clean(
        l in 2usize..10,
        seed in 0u64..500,
    ) {
        let (graph, baseline) = lazy_two_lane(l);
        let cost = varied_cost(l, seed);
        let tuned = tune_schedule(&graph, &baseline, &cost, &TuneOptions::default()).unwrap();
        let report = Verifier::new(&graph)
            .with_config(VerifyConfig::default())
            .with_cost(&cost)
            .verify(&tuned.schedule);
        prop_assert!(
            report.is_clean(),
            "tuned schedule drew diagnostics {:?}",
            report.rule_codes()
        );
    }

    /// (b) Under greedy-only search every accepted move strictly lowers
    /// the predicted makespan: the recorded per-move predictions form a
    /// strictly decreasing chain from the baseline.
    #[test]
    fn greedy_moves_are_monotone_non_increasing(
        l in 2usize..10,
        seed in 0u64..500,
    ) {
        let (graph, baseline) = lazy_two_lane(l);
        let cost = varied_cost(l, seed);
        let tuned =
            tune_schedule(&graph, &baseline, &cost, &TuneOptions::greedy_only()).unwrap();
        let mut last = tuned.baseline;
        for m in &tuned.moves {
            prop_assert_eq!(m.kind, MoveKind::Greedy);
            prop_assert!(
                m.predicted < last,
                "greedy move '{}' did not improve: {} -> {}",
                m.description,
                last,
                m.predicted
            );
            last = m.predicted;
        }
        prop_assert_eq!(last, tuned.predicted);
    }

    /// (c) Tuning is a fixpoint: feeding the tuned schedule back through
    /// the tuner accepts no further moves and reproduces it exactly.
    #[test]
    fn tuning_is_a_fixpoint(
        l in 2usize..10,
        seed in 0u64..500,
    ) {
        let (graph, baseline) = lazy_two_lane(l);
        let cost = varied_cost(l, seed);
        let opts = TuneOptions::default();
        let once = tune_schedule(&graph, &baseline, &cost, &opts).unwrap();
        let twice = tune_schedule(&graph, &once.schedule, &cost, &opts).unwrap();
        prop_assert!(twice.moves.is_empty(), "re-tuning accepted {:?}", twice.moves);
        prop_assert_eq!(&twice.schedule, &once.schedule);
        prop_assert_eq!(twice.predicted, once.predicted);
        prop_assert_eq!(twice.baseline, once.predicted);
    }
}
