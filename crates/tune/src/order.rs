//! Tuning flat backward orders of data-parallel training.
//!
//! The engines hand the data-parallel simulator a *backward order*
//! (loss, `dO`s, `dW`s); updates, forwards, and the link lane are
//! implicit. [`tune_backward_order`] searches that order directly: the
//! moves are `dW` relocations within the flat order plus *k-jumps* —
//! replacing the whole order by the reverse-first-k (or combined
//! split-k) shape for some `k`, which is what lets the tuner escape the
//! local minima the concave [`ooo_core::reverse_k::search_optimal_k`]
//! heuristic can stop at on non-concave cost surfaces.
//!
//! Scoring reconstructs the realized two-lane schedule with
//! [`ooo_verify::predict::datapar_schedule`] and evaluates it with the
//! exact predictor; the safety gate verifies that same reconstruction.

use crate::{local_search, AppliedMove, Error, Result, SearchSpace, TuneOptions};
use ooo_core::cost::CostModel;
use ooo_core::datapar::{simulate_data_parallel, CommPolicy};
use ooo_core::{Op, SimTime, TrainGraph};
use ooo_verify::predict::{datapar_schedule, predict_makespan, DeltaEval};
use ooo_verify::Verifier;

/// Which family of whole-order jumps the k-move draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KFamily {
    /// No k-jumps: only `dW` relocations.
    None,
    /// [`ooo_core::reverse_k::reverse_first_k`] orders (data-parallel).
    ReverseFirstK,
    /// [`ooo_core::combined::combined_backward_order`] orders (hybrid
    /// data+pipeline parallel).
    Combined,
}

/// The outcome of tuning one flat backward order.
#[derive(Debug, Clone)]
pub struct TunedOrder {
    /// The tuned backward order.
    pub order: Vec<Op>,
    /// The k of the last accepted k-jump, when the final order is still
    /// a pure k-shape (no later relocation touched it).
    pub k: Option<usize>,
    /// Predicted makespan of the input order.
    pub baseline: SimTime,
    /// Predicted makespan of the tuned order.
    pub predicted: SimTime,
    /// Static ledger peak of the tuned order's realized schedule;
    /// populated iff [`TuneOptions::memory_cap`] was set.
    pub peak: Option<u64>,
    /// The accepted move trajectory.
    pub moves: Vec<AppliedMove>,
    /// How many restart perturbations were adopted.
    pub restarts_adopted: usize,
}

impl TunedOrder {
    /// `true` when the tuner strictly beat the baseline.
    pub fn improved(&self) -> bool {
        self.predicted < self.baseline
    }
}

#[derive(Clone)]
struct OrderState {
    order: Vec<Op>,
    k: Option<usize>,
}

struct OrderSpace<'g, C: CostModel> {
    graph: &'g TrainGraph,
    cost: &'g C,
    policy: CommPolicy,
    family: KFamily,
    verifier: Verifier<'g, &'g C>,
    window: Option<usize>,
    memory_cap: Option<u64>,
}

impl<C: CostModel> OrderSpace<'_, C> {
    fn family_order(&self, k: usize) -> Option<Vec<Op>> {
        match self.family {
            KFamily::None => None,
            KFamily::ReverseFirstK => {
                ooo_core::reverse_k::reverse_first_k(self.graph, k, None::<(u64, &C)>).ok()
            }
            KFamily::Combined => ooo_core::combined::combined_backward_order(self.graph, k).ok(),
        }
    }

    /// k-jump candidates: whole-order replacements, one per depth.
    fn k_jumps(&self, state: &OrderState) -> Vec<(OrderState, String)> {
        let mut out = Vec::new();
        for k in 0..=self.graph.layers() {
            let Some(order) = self.family_order(k) else {
                break;
            };
            if order == state.order {
                continue;
            }
            let label = match self.family {
                KFamily::None => unreachable!("family_order returned Some"),
                KFamily::ReverseFirstK => format!("set reverse-first-k k={k}"),
                KFamily::Combined => format!("set combined split k={k}"),
            };
            out.push((OrderState { order, k: Some(k) }, label));
        }
        out
    }

    /// `dW` relocation candidates within the flat order, with the raw
    /// `(op, to)` coordinates attached for delta probing. Restricted to
    /// [`TuneOptions::window`] around each op's current position.
    fn relocations(&self, state: &OrderState) -> Vec<(OrderState, String, Op, usize)> {
        let mut out = Vec::new();
        for (pi, &op) in state.order.iter().enumerate() {
            if !op.is_weight_grad() {
                continue;
            }
            for to in 0..state.order.len() {
                if to == pi || self.window.is_some_and(|w| to.abs_diff(pi) > w) {
                    continue;
                }
                let mut order = state.order.clone();
                order.remove(pi);
                order.insert(to.min(order.len()), op);
                out.push((
                    OrderState { order, k: None },
                    format!("move {op} to position {to}"),
                    op,
                    to,
                ));
            }
        }
        out
    }
}

impl<C: CostModel + Sync> SearchSpace for OrderSpace<'_, C> {
    type State = OrderState;

    fn score(&self, state: &OrderState) -> Option<SimTime> {
        let s = datapar_schedule(self.graph, &state.order, self.cost, self.policy).ok()?;
        let m = predict_makespan(self.graph, &s, self.cost)
            .ok()
            .map(|p| p.makespan())?;
        crate::capped_score(m, self.memory_cap, || {
            ooo_verify::mem::schedule_peak(self.graph, &s, self.cost).ok()
        })
    }

    fn clean(&self, state: &OrderState) -> bool {
        match datapar_schedule(self.graph, &state.order, self.cost, self.policy) {
            Ok(s) => self.verifier.verify(&s).is_clean(),
            Err(_) => false,
        }
    }

    fn candidates(&self, state: &OrderState) -> Vec<(OrderState, String)> {
        let mut out = self.k_jumps(state);
        out.extend(
            self.relocations(state)
                .into_iter()
                .map(|(st, d, _, _)| (st, d)),
        );
        out
    }

    /// Delta-probed scoring. k-jumps replace the whole order and are
    /// scored with the full predictor pass. A `dW` relocation whose
    /// realized *link service order* is unchanged differs from the
    /// incumbent's realized schedule by exactly one compute-lane
    /// relocation, so it is probed with [`DeltaEval::relocate_many`]
    /// (cone-only rescoring) and reverted; when the relocation reorders
    /// the link lane, the candidate falls back to the full pass. Scores
    /// are identical either way — the probe is the exact predictor on
    /// the identical realized schedule.
    fn scored_candidates(&self, state: &OrderState) -> Vec<(OrderState, String, Option<SimTime>)> {
        // A memory cap needs the full ledger per candidate; the
        // makespan-only delta probe cannot supply it.
        if self.memory_cap.is_some() {
            return self
                .candidates(state)
                .into_iter()
                .map(|(st, d)| {
                    let m = self.score(&st);
                    (st, d, m)
                })
                .collect();
        }
        let mut out: Vec<(OrderState, String, Option<SimTime>)> = self
            .k_jumps(state)
            .into_iter()
            .map(|(st, d)| {
                let m = self.score(&st);
                (st, d, m)
            })
            .collect();
        let relocations = self.relocations(state);
        let incumbent = datapar_schedule(self.graph, &state.order, self.cost, self.policy).ok();
        let mut de = incumbent
            .as_ref()
            .and_then(|s0| DeltaEval::new(self.graph, s0, self.cost).ok());
        for (st, d, op, to) in relocations {
            let m = match (&incumbent, &mut de) {
                (Some(s0), Some(de)) => {
                    match datapar_schedule(self.graph, &st.order, self.cost, self.policy) {
                        Ok(s1)
                            if s1.lanes.len() == s0.lanes.len()
                                && (s1.lanes.len() < 2 || s1.lanes[1].ops == s0.lanes[1].ops) =>
                        {
                            // Link order unchanged: probe the single
                            // compute-lane relocation and revert.
                            let (lane, pos) = de.position_of(op).expect("dW is scheduled");
                            let probe = de.relocate_many(&[(op, lane, to)]).ok();
                            if probe.is_some() {
                                de.relocate_many(&[(op, lane, pos)])
                                    .expect("reverting to the incumbent cannot deadlock");
                            }
                            probe
                        }
                        Ok(s1) => predict_makespan(self.graph, &s1, self.cost)
                            .ok()
                            .map(|p| p.makespan()),
                        Err(_) => None,
                    }
                }
                _ => self.score(&st),
            };
            out.push((st, d, m));
        }
        out
    }
}

/// Tunes a flat backward order for the data-parallel simulator under
/// `policy`. `baseline_k` documents the k-shape of the input, if any.
///
/// # Errors
///
/// [`Error::Unsafe`] when the input's realized schedule already fails
/// the safety gate; [`Error::Core`] when it does not evaluate.
pub fn tune_backward_order<C: CostModel + Sync>(
    graph: &TrainGraph,
    baseline: &[Op],
    baseline_k: Option<usize>,
    cost: &C,
    policy: CommPolicy,
    family: KFamily,
    opts: &TuneOptions,
) -> Result<TunedOrder> {
    let verifier = Verifier::new(graph)
        .with_config(opts.verify_config())
        .with_cost(cost);
    let realized = datapar_schedule(graph, baseline, cost, policy)?;
    let report = verifier.verify(&realized);
    if !report.is_clean() {
        return Err(Error::Unsafe(report));
    }
    let base_raw = predict_makespan(graph, &realized, cost)?.makespan();
    let base_m = match opts.memory_cap {
        None => base_raw,
        Some(cap) => {
            let peak = ooo_verify::mem::schedule_peak(graph, &realized, cost)?;
            if peak > cap {
                base_raw.saturating_add(crate::MEMORY_CAP_PENALTY)
            } else {
                base_raw
            }
        }
    };
    let space = OrderSpace {
        graph,
        cost,
        policy,
        family,
        verifier,
        window: opts.window,
        memory_cap: opts.memory_cap,
    };
    let init = OrderState {
        order: baseline.to_vec(),
        k: baseline_k,
    };
    let (state, predicted, moves, restarts_adopted) = local_search(&space, init, base_m, opts);
    // Capped scores carry the penalty; report the raw makespan (and the
    // winner's exact peak) instead.
    let (predicted, peak) = match opts.memory_cap {
        None => (predicted, None),
        Some(_) => {
            let s = datapar_schedule(graph, &state.order, cost, policy)?;
            (
                predict_makespan(graph, &s, cost)?.makespan(),
                Some(ooo_verify::mem::schedule_peak(graph, &s, cost)?),
            )
        }
    };
    Ok(TunedOrder {
        order: state.order,
        k: state.k,
        baseline: base_raw,
        predicted,
        peak,
        moves,
        restarts_adopted,
    })
}

/// Certifies a tuned backward order: runs the data-parallel
/// discrete-event simulator and demands it match the static prediction
/// of the reconstructed schedule exactly. Returns the certified
/// makespan.
///
/// # Errors
///
/// [`Error::Certification`] on any disagreement; [`Error::Core`] when
/// the order does not simulate.
pub fn certify_order<C: CostModel>(
    graph: &TrainGraph,
    order: &[Op],
    cost: &C,
    policy: CommPolicy,
) -> Result<SimTime> {
    let s = datapar_schedule(graph, order, cost, policy)?;
    let predicted = predict_makespan(graph, &s, cost)?.makespan();
    let simulated = simulate_data_parallel(graph, order, cost, policy)?.makespan();
    if predicted != simulated {
        return Err(Error::Certification {
            predicted,
            simulated,
        });
    }
    Ok(simulated)
}

/// Exhaustive predictor sweep over every combined split depth `k`:
/// returns the `(k, makespan)` minimizing the predicted makespan (ties
/// to the smallest `k`). This is the tuner's k-move restricted to the
/// combined family — the hybrid engine's exact alternative to the
/// concave [`ooo_core::combined::choose_split_k`] heuristic.
///
/// # Errors
///
/// Propagates order-construction and prediction errors.
pub fn best_combined_k<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    policy: CommPolicy,
) -> Result<(usize, SimTime)> {
    let mut best: Option<(SimTime, usize)> = None;
    for k in 0..=graph.layers() {
        let order = ooo_core::combined::combined_backward_order(graph, k)?;
        let s = datapar_schedule(graph, &order, cost, policy)?;
        let m = predict_makespan(graph, &s, cost)?.makespan();
        if best.is_none_or(|(bm, _)| m < bm) {
            best = Some((m, k));
        }
    }
    let (m, k) = best.expect("graphs have at least one layer");
    Ok((k, m))
}

/// Exhaustive predictor sweep over every reverse-first-k depth:
/// returns the `(k, makespan)` minimizing the predicted makespan (ties
/// to the smallest `k`).
///
/// # Errors
///
/// Propagates order-construction and prediction errors.
pub fn best_reverse_k<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    policy: CommPolicy,
) -> Result<(usize, SimTime)> {
    let mut best: Option<(SimTime, usize)> = None;
    for k in 0..=graph.layers() {
        let order = ooo_core::reverse_k::reverse_first_k(graph, k, None::<(u64, &C)>)?;
        let s = datapar_schedule(graph, &order, cost, policy)?;
        let m = predict_makespan(graph, &s, cost)?.makespan();
        if best.is_none_or(|(bm, _)| m < bm) {
            best = Some((m, k));
        }
    }
    let (m, k) = best.expect("graphs have at least one layer");
    Ok((k, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::{LayerCost, TableCost};
    use ooo_core::reverse_k::reverse_first_k;

    fn sync_heavy(l: usize) -> TableCost {
        TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 3,
                ..LayerCost::default()
            },
        )
    }

    #[test]
    fn k_jump_beats_conventional_order_under_heavy_sync() {
        let l = 8;
        let graph = TrainGraph::data_parallel(l);
        let cost = sync_heavy(l);
        let base = reverse_first_k(&graph, 0, None::<(u64, &TableCost)>).unwrap();
        let tuned = tune_backward_order(
            &graph,
            &base,
            Some(0),
            &cost,
            CommPolicy::PriorityByLayer,
            KFamily::ReverseFirstK,
            &TuneOptions::default(),
        )
        .unwrap();
        assert!(tuned.improved(), "sync-heavy k=0 must be improvable");
        let certified =
            certify_order(&graph, &tuned.order, &cost, CommPolicy::PriorityByLayer).unwrap();
        assert_eq!(certified, tuned.predicted);
    }

    #[test]
    fn best_reverse_k_matches_brute_force_simulation() {
        let l = 6;
        let graph = TrainGraph::data_parallel(l);
        let cost = sync_heavy(l);
        let (k, m) = best_reverse_k(&graph, &cost, CommPolicy::FifoCompletion).unwrap();
        let mut sim_best = SimTime::MAX;
        for kk in 0..=l {
            let order = reverse_first_k(&graph, kk, None::<(u64, &TableCost)>).unwrap();
            let s = simulate_data_parallel(&graph, &order, &cost, CommPolicy::FifoCompletion)
                .unwrap()
                .makespan();
            sim_best = sim_best.min(s);
        }
        assert_eq!(m, sim_best);
        assert!(k <= l);
    }
}
