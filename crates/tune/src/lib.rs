//! Predictor-guided schedule autotuning.
//!
//! The paper fixes its schedules with hand-designed heuristics —
//! Algorithm 1's multi-region joint scheduling, Algorithm 2's reverse
//! first-k, OOO-Pipe2's modulo allocation. Its own job-shop formulation
//! (§2) admits *search*, and the exact static makespan predictor
//! ([`ooo_verify::predict::predict_makespan`]) is a zero-tolerance
//! oracle that is far cheaper than discrete-event simulation. This crate
//! closes that loop: a local-search autotuner whose move set is exactly
//! the freedom out-of-order backprop licenses, whose every accepted move
//! is gated by the [`ooo_verify::Verifier`] safety analyzer, and whose
//! winner is certified by running the real simulator once at the end
//! (predicted == simulated, tolerance 0).
//!
//! # Move set
//!
//! Only `dW`-class operations ([`Op::is_weight_grad_class`]: `dW_i`,
//! `S[dW_i]`, `U_i`) ever move — everything else sits on the backward
//! critical path or the next iteration's forward chain, which is the
//! paper's ooo-legality rule. The concrete moves are:
//!
//! - defer / hoist a `dW`-class op within its lane,
//! - swap a `dW`-class op onto another lane (sub-stream reassignment),
//! - jump to a different reverse-first-k depth (flat backward orders,
//!   see [`order`]),
//! - regroup pipeline layers under a different modulo group (see
//!   [`pipeline`]).
//!
//! # Search loop
//!
//! Best-improvement greedy descent (deterministic: candidates are tried
//! in `(predicted makespan, enumeration index)` order and the first one
//! that passes the safety gate wins), followed by seeded restart
//! perturbations: from the incumbent, a few random gate-clean moves are
//! applied with [`rand::rngs::StdRng`] seeded `1..=restarts`, greedy
//! descent re-runs, and a strictly better result replaces the incumbent
//! (which restarts the seed sweep). The loop ends when a full seed sweep
//! fails to improve — which makes tuning a *fixpoint*: re-tuning a tuned
//! schedule replays exactly that failed sweep and changes nothing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod order;
pub mod pipeline;

use ooo_core::cost::CostModel;
use ooo_core::schedule::Schedule;
use ooo_core::{SimTime, TrainGraph};
use ooo_verify::mem::schedule_peak;
use ooo_verify::predict::{predict_makespan, DeltaEval};
use ooo_verify::{Report, Verifier, VerifyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Failures of a tuning run.
#[derive(Debug)]
pub enum Error {
    /// A core scheduling error (malformed schedule, unknown op, ...).
    Core(ooo_core::Error),
    /// The *input* schedule failed the safety gate; the tuner refuses to
    /// optimize an unsafe starting point. Carries the verifier report.
    Unsafe(Report),
    /// End-of-run certification failed: the predicted makespan of the
    /// winner disagreed with its simulated makespan. This indicates a
    /// predictor/simulator divergence and should never happen.
    Certification {
        /// Statically predicted makespan of the winner.
        predicted: SimTime,
        /// Simulated makespan of the winner.
        simulated: SimTime,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Unsafe(report) => write!(
                f,
                "input schedule fails the safety gate: {}",
                report.rule_codes().join(", ")
            ),
            Error::Certification {
                predicted,
                simulated,
            } => write!(
                f,
                "certification failed: predicted {predicted} != simulated {simulated}"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<ooo_core::Error> for Error {
    fn from(e: ooo_core::Error) -> Self {
        Error::Core(e)
    }
}

/// Result alias of this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// How an accepted move was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Best-improvement greedy descent: strictly decreases the predicted
    /// makespan relative to the immediately preceding state.
    Greedy,
    /// Seeded restart perturbation: gate-clean but free to regress; only
    /// kept when the descent it enables ends strictly better.
    Perturb,
}

impl MoveKind {
    /// Lower-case label (`greedy` / `perturb`).
    pub fn as_str(self) -> &'static str {
        match self {
            MoveKind::Greedy => "greedy",
            MoveKind::Perturb => "perturb",
        }
    }
}

/// One accepted move of the search trajectory.
#[derive(Debug, Clone)]
pub struct AppliedMove {
    /// Whether the move came from greedy descent or a perturbation.
    pub kind: MoveKind,
    /// Human-readable description of the transformation.
    pub description: String,
    /// Predicted makespan right after applying the move.
    pub predicted: SimTime,
}

/// Tuning knobs. The defaults are deliberately small: the predictor is
/// cheap but the verifier gate runs on every accepted candidate.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Number of perturbation seeds tried per restart sweep.
    pub restarts: u64,
    /// Random moves applied per perturbation.
    pub perturb_moves: usize,
    /// Hard cap on accepted moves per greedy descent (safety valve; the
    /// integer makespan strictly decreases, so descent terminates on its
    /// own long before this).
    pub max_moves: usize,
    /// Allow moving `dW`-class ops across lanes (sub-stream swaps).
    pub cross_lane: bool,
    /// Require schedules to cover the whole graph (pass `false` for the
    /// partial schedules of engines whose updates are implicit).
    pub require_complete: bool,
    /// Optional memory budget forwarded to the verifier's liveness
    /// analysis (OV301).
    pub memory_budget: Option<u64>,
    /// Optional peak-memory cap on the *objective*: candidates whose
    /// exact static ledger peak ([`ooo_verify::mem::schedule_peak`])
    /// exceeds the cap score a large constant penalty on top of their
    /// makespan, so the search minimizes makespan subject to `peak <=
    /// cap` — an over-cap incumbent first descends into the feasible
    /// region (any under-cap candidate beats any over-cap one), then
    /// minimizes makespan inside it. Scoring needs the full ledger per
    /// candidate, so a cap disables the delta-evaluation fast path.
    pub memory_cap: Option<u64>,
    /// Optional certified target makespan (a proven lower bound, e.g.
    /// from `ooo_core::bounds::lower_bound` or an `ooo-cert`
    /// certificate). The search stops as soon as the incumbent reaches
    /// it: no schedule can beat a valid lower bound, so every further
    /// candidate is provably futile. With a *valid* bound this changes
    /// nothing but wasted work — the result is identical.
    pub target: Option<SimTime>,
    /// Evaluate the restart seeds of each sweep on parallel threads
    /// (`std::thread`), adopting the lowest-numbered improving seed —
    /// exactly the seed the sequential sweep would have adopted first, so
    /// the winner, trajectory, and `restarts_adopted` are identical
    /// either way. `false` forces the sequential sweep.
    pub parallel: bool,
    /// Optional relocation window: a `dW`-class op may only move to
    /// positions within `window` slots of where it currently sits (and
    /// the matching slots of other lanes). `None` enumerates every
    /// position — exact but O(ops × positions); thousand-stage inputs
    /// need a window to keep the neighborhood linear.
    pub window: Option<usize>,
    /// Optional deterministic work budget, counted in neighborhood
    /// scans (one scan = one `scored_candidates` enumeration). When the
    /// budget runs out the search stops and returns the best state found
    /// so far — always a valid, verify-clean schedule, since only
    /// gate-clean moves are ever accepted. `Some(0)` returns the input
    /// untouched. Unlike [`TuneOptions::deadline`] this is pure logical
    /// work, so identical inputs give identical outputs regardless of
    /// machine speed or thread scheduling: each restart trial of a sweep
    /// is charged against the budget remaining when the sweep started,
    /// and only the adopted trial's scans are kept — exactly the
    /// accounting of the sequential sweep, so
    /// [`TuneOptions::parallel`] stays byte-deterministic under budgets.
    pub budget: Option<u64>,
    /// Optional wall-clock deadline checked cooperatively at the same
    /// points as [`TuneOptions::budget`]. Past the deadline the search
    /// returns the best state found so far. A wall-clock cutoff is
    /// inherently racy — results may differ run to run — so treat it as
    /// a safety net around a logical budget, not a substitute.
    pub deadline: Option<std::time::Instant>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            restarts: 3,
            perturb_moves: 3,
            max_moves: 256,
            cross_lane: true,
            require_complete: true,
            memory_budget: None,
            memory_cap: None,
            target: None,
            parallel: true,
            window: None,
            budget: None,
            deadline: None,
        }
    }
}

impl TuneOptions {
    /// Greedy-only options (no restarts): useful where strict
    /// monotonicity of the whole trajectory is wanted.
    pub fn greedy_only() -> Self {
        TuneOptions {
            restarts: 0,
            ..TuneOptions::default()
        }
    }

    pub(crate) fn verify_config(&self) -> VerifyConfig {
        VerifyConfig {
            require_complete: self.require_complete,
            memory_budget: self.memory_budget,
            check_legality: true,
        }
    }
}

/// The outcome of tuning one multi-lane schedule.
#[derive(Debug, Clone)]
pub struct Tuned {
    /// The tuned schedule.
    pub schedule: Schedule,
    /// Predicted makespan of the input (heuristic baseline).
    pub baseline: SimTime,
    /// Predicted makespan of the tuned schedule.
    pub predicted: SimTime,
    /// Static ledger peak of the tuned schedule; populated iff
    /// [`TuneOptions::memory_cap`] was set.
    pub peak: Option<u64>,
    /// The accepted move trajectory from input to winner.
    pub moves: Vec<AppliedMove>,
    /// How many restart perturbations were adopted.
    pub restarts_adopted: usize,
}

impl Tuned {
    /// `true` when the tuner strictly beat the baseline.
    pub fn improved(&self) -> bool {
        self.predicted < self.baseline
    }
}

/// The penalty a candidate over the memory cap pays on its score: large
/// enough that any under-cap candidate outranks any over-cap one, small
/// enough that `saturating_add` never wraps the ordering inside either
/// class.
pub(crate) const MEMORY_CAP_PENALTY: SimTime = 1 << 40;

/// Penalized objective: the raw makespan, plus [`MEMORY_CAP_PENALTY`]
/// when the exact ledger peak exceeds `cap`. `None` (no cap, or the
/// ledger cannot be built) leaves the makespan alone / fails the state.
pub(crate) fn capped_score(
    makespan: SimTime,
    cap: Option<u64>,
    peak: impl FnOnce() -> Option<u64>,
) -> Option<SimTime> {
    match cap {
        None => Some(makespan),
        Some(cap) => {
            let p = peak()?;
            Some(if p > cap {
                makespan.saturating_add(MEMORY_CAP_PENALTY)
            } else {
                makespan
            })
        }
    }
}

/// A tunable search space: states scored by the exact predictor and
/// gated by the safety analyzer. Implementations enumerate the ooo-legal
/// neighborhood of a state deterministically.
pub(crate) trait SearchSpace: Sync {
    /// One point of the space.
    type State: Clone + Send;

    /// Predicted makespan, or `None` when the state does not evaluate
    /// (e.g. an illegal placement the predictor rejects).
    fn score(&self, state: &Self::State) -> Option<SimTime>;

    /// The `ooo-verify` gate: `true` iff the state produces zero
    /// diagnostics.
    fn clean(&self, state: &Self::State) -> bool;

    /// The legal neighborhood, in a deterministic enumeration order,
    /// each with a human-readable move description.
    fn candidates(&self, state: &Self::State) -> Vec<(Self::State, String)>;

    /// The neighborhood with each candidate's score attached, computed
    /// the cheapest way the space knows. The default scores every
    /// candidate with a full [`SearchSpace::score`] pass; spaces whose
    /// moves are schedule relocations override this with incremental
    /// delta evaluation ([`ooo_verify::predict::DeltaEval`]), which
    /// re-scores only the affected cone per candidate. Overrides must
    /// return the same candidates, order, and scores as the default.
    fn scored_candidates(
        &self,
        state: &Self::State,
    ) -> Vec<(Self::State, String, Option<SimTime>)> {
        self.candidates(state)
            .into_iter()
            .map(|(st, d)| {
                let m = self.score(&st);
                (st, d, m)
            })
            .collect()
    }
}

/// Cooperative cancellation state for one search (or one restart
/// trial): counts neighborhood scans against [`TuneOptions::budget`]
/// and polls [`TuneOptions::deadline`]. Checked at every point that is
/// about to enumerate a neighborhood, which bounds overshoot to one
/// scan's worth of work.
struct Budgeter {
    scans: u64,
    limit: Option<u64>,
    deadline: Option<std::time::Instant>,
}

impl Budgeter {
    fn new(limit: Option<u64>, opts: &TuneOptions) -> Self {
        Budgeter {
            scans: 0,
            limit,
            deadline: opts.deadline,
        }
    }

    /// `true` once the logical budget is spent or the deadline passed.
    fn exhausted(&self) -> bool {
        self.limit.is_some_and(|l| self.scans >= l)
            || self
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Charges one neighborhood scan.
    fn charge(&mut self) {
        self.scans += 1;
    }
}

/// Best-improvement greedy descent. Candidates are ranked by
/// `(predicted makespan, enumeration index)`; the best strictly
/// improving candidate that passes the gate is accepted, until none is
/// left.
fn greedy<S: SearchSpace>(
    space: &S,
    mut cur: S::State,
    mut cur_m: SimTime,
    moves: &mut Vec<AppliedMove>,
    opts: &TuneOptions,
    budget: &mut Budgeter,
) -> (S::State, SimTime) {
    while moves.len() < opts.max_moves {
        // A certified lower bound already reached proves optimality:
        // no candidate can strictly improve, skip enumerating them.
        if opts.target.is_some_and(|t| cur_m <= t) {
            break;
        }
        if budget.exhausted() {
            break;
        }
        budget.charge();
        let cands = space.scored_candidates(&cur);
        let mut scored: Vec<(SimTime, usize)> = cands
            .iter()
            .enumerate()
            .filter_map(|(i, (_, _, m))| m.map(|m| (m, i)))
            .filter(|&(m, _)| m < cur_m)
            .collect();
        scored.sort_unstable();
        let accepted = scored.into_iter().find(|&(_, i)| space.clean(&cands[i].0));
        let Some((m, i)) = accepted else { break };
        let (state, description, _) = cands[i].clone();
        moves.push(AppliedMove {
            kind: MoveKind::Greedy,
            description,
            predicted: m,
        });
        cur = state;
        cur_m = m;
    }
    (cur, cur_m)
}

/// Applies up to `perturb_moves` random gate-clean moves drawn from a
/// deterministically seeded RNG. Moves are free to regress.
fn perturb<S: SearchSpace>(
    space: &S,
    cur: S::State,
    cur_m: SimTime,
    seed: u64,
    moves: &mut Vec<AppliedMove>,
    opts: &TuneOptions,
    budget: &mut Budgeter,
) -> (S::State, SimTime) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = cur;
    let mut makespan = cur_m;
    for _ in 0..opts.perturb_moves {
        if budget.exhausted() {
            break;
        }
        budget.charge();
        let cands = space.scored_candidates(&state);
        if cands.is_empty() {
            break;
        }
        let mut picked = None;
        for _ in 0..16 {
            let i = rng.gen_range(0..cands.len());
            if let Some(m) = cands[i].2 {
                if space.clean(&cands[i].0) {
                    picked = Some((i, m));
                    break;
                }
            }
        }
        let Some((i, m)) = picked else { break };
        let (next, description, _) = cands[i].clone();
        moves.push(AppliedMove {
            kind: MoveKind::Perturb,
            description,
            predicted: m,
        });
        state = next;
        makespan = m;
    }
    (state, makespan)
}

/// One restart trial: perturb from the incumbent under `seed`, then
/// greedy-descend. Pure in the incumbent — trials for different seeds
/// are independent, which is what licenses running them in parallel.
fn restart_trial<S: SearchSpace>(
    space: &S,
    cur: S::State,
    cur_m: SimTime,
    seed: u64,
    opts: &TuneOptions,
    remaining: Option<u64>,
) -> (S::State, SimTime, Vec<AppliedMove>, u64) {
    let mut trial = Vec::new();
    let mut budget = Budgeter::new(remaining, opts);
    let (p, pm) = perturb(space, cur, cur_m, seed, &mut trial, opts, &mut budget);
    let (g, gm) = greedy(space, p, pm, &mut trial, opts, &mut budget);
    (g, gm, trial, budget.scans)
}

/// The full search loop: greedy descent, then restart sweeps over seeds
/// `1..=restarts`, adopting a perturbed descent only when strictly
/// better (and restarting the sweep on adoption). Terminates because
/// every adoption strictly decreases an integer makespan; the final
/// state is a greedy local optimum that survived a full failed sweep,
/// which is what makes re-tuning a no-op.
///
/// With [`TuneOptions::parallel`] the seeds of one sweep run on
/// `std::thread` workers. Every trial starts from the same incumbent, so
/// the sequential sweep's adoption — the *first* (lowest-numbered)
/// strictly improving seed — is recovered deterministically by merging
/// the parallel results in seed order; higher seeds' work is discarded
/// exactly as the sequential sweep would never have computed it.
pub(crate) fn local_search<S: SearchSpace>(
    space: &S,
    init: S::State,
    init_m: SimTime,
    opts: &TuneOptions,
) -> (S::State, SimTime, Vec<AppliedMove>, usize) {
    let mut moves = Vec::new();
    let mut budget = Budgeter::new(opts.budget, opts);
    let (mut cur, mut cur_m) = greedy(space, init, init_m, &mut moves, opts, &mut budget);
    let mut adopted = 0usize;
    'sweep: loop {
        // Proven optimal: restart perturbations cannot end strictly
        // better than a certified lower bound.
        if opts.target.is_some_and(|t| cur_m <= t) {
            break;
        }
        if budget.exhausted() {
            break;
        }
        // Every trial of this sweep is charged against the budget
        // remaining *now*; only the adopted trial's scans are kept.
        // That mirrors the sequential sweep (discarded trials never ran
        // there either), keeping parallel == sequential under budgets.
        let remaining = opts.budget.map(|b| b.saturating_sub(budget.scans));
        if opts.parallel && opts.restarts > 1 {
            let trials: Vec<(S::State, SimTime, Vec<AppliedMove>, u64)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (1..=opts.restarts)
                        .map(|seed| {
                            let incumbent = cur.clone();
                            scope.spawn(move || {
                                restart_trial(space, incumbent, cur_m, seed, opts, remaining)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("restart trial panicked"))
                        .collect()
                });
            // Deterministic merge: seeds are already in 1..=restarts
            // order; adopt the first improving one.
            for (g, gm, trial, spent) in trials {
                if gm < cur_m {
                    cur = g;
                    cur_m = gm;
                    moves.extend(trial);
                    adopted += 1;
                    budget.scans += spent;
                    continue 'sweep;
                }
            }
        } else {
            for seed in 1..=opts.restarts {
                let (g, gm, trial, spent) =
                    restart_trial(space, cur.clone(), cur_m, seed, opts, remaining);
                if gm < cur_m {
                    cur = g;
                    cur_m = gm;
                    moves.extend(trial);
                    adopted += 1;
                    budget.scans += spent;
                    continue 'sweep;
                }
            }
        }
        break;
    }
    (cur, cur_m, moves, adopted)
}

/// The multi-lane schedule space: `dW`-class ops relocate within their
/// lane and (optionally) across lanes.
struct ScheduleSpace<'g, C: CostModel> {
    graph: &'g TrainGraph,
    cost: &'g C,
    verifier: Verifier<'g, &'g C>,
    cross_lane: bool,
    window: Option<usize>,
    memory_cap: Option<u64>,
}

impl<C: CostModel + Sync> SearchSpace for ScheduleSpace<'_, C> {
    type State = Schedule;

    fn score(&self, state: &Schedule) -> Option<SimTime> {
        let m = predict_makespan(self.graph, state, self.cost)
            .ok()
            .map(|p| p.makespan())?;
        capped_score(m, self.memory_cap, || {
            schedule_peak(self.graph, state, self.cost).ok()
        })
    }

    fn clean(&self, state: &Schedule) -> bool {
        self.verifier.verify(state).is_clean()
    }

    fn candidates(&self, state: &Schedule) -> Vec<(Schedule, String)> {
        schedule_moves(self.graph, state, self.cross_lane, self.window)
    }

    /// Delta-evaluated scoring: see [`delta_scored_schedule_moves`].
    /// Under a memory cap every candidate needs its full ledger, which
    /// the makespan-only delta probe cannot provide, so the cap falls
    /// back to full scoring.
    fn scored_candidates(&self, state: &Schedule) -> Vec<(Schedule, String, Option<SimTime>)> {
        if self.memory_cap.is_some() {
            return self
                .candidates(state)
                .into_iter()
                .map(|(st, d)| {
                    let m = self.score(&st);
                    (st, d, m)
                })
                .collect();
        }
        delta_scored_schedule_moves(self.graph, self.cost, state, self.cross_lane, self.window)
    }
}

/// Scores every `dW`-class relocation of `state` with one [`DeltaEval`]
/// carrying the incumbent's exact timing state: each candidate is probed
/// with [`DeltaEval::relocate_many`] (re-scoring only the affected cone)
/// and reverted. Candidates, order, and scores are identical to scoring
/// each materialized schedule with a full [`predict_makespan`] pass —
/// only the work per candidate shrinks. Shared by the bundle space above
/// and the pipeline space's in-lane moves.
pub(crate) fn delta_scored_schedule_moves<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    state: &Schedule,
    cross_lane: bool,
    window: Option<usize>,
) -> Vec<(Schedule, String, Option<SimTime>)> {
    let Ok(mut de) = DeltaEval::new(graph, state, cost) else {
        // An incumbent the predictor rejects never arises from the
        // search itself; fall back to the default path for safety.
        return schedule_moves(graph, state, cross_lane, window)
            .into_iter()
            .map(|(st, d)| {
                let m = predict_makespan(graph, &st, cost)
                    .ok()
                    .map(|p| p.makespan());
                (st, d, m)
            })
            .collect();
    };
    let mut out = Vec::new();
    for (batch, description) in schedule_move_batches(graph, state, cross_lane, window) {
        let next = apply_move_batch(state, &batch);
        if next == *state {
            continue;
        }
        let origins: Vec<(ooo_core::Op, usize, usize)> = batch
            .iter()
            .map(|&(op, _, _)| {
                let (l, p) = de.position_of(op).expect("moved op is scheduled");
                (op, l, p)
            })
            .collect();
        let m = de.relocate_many(&batch).ok();
        if m.is_some() {
            de.relocate_many(&origins)
                .expect("reverting to the incumbent cannot deadlock");
        }
        out.push((next, description, m));
    }
    out
}

/// One relocation batch: every `(op, target lane, target position)` is
/// applied atomically, positions addressing the final lane contents in
/// ascending `(lane, position)` order — the same semantics as
/// [`DeltaEval::relocate_many`].
pub(crate) type MoveBatch = Vec<(ooo_core::Op, usize, usize)>;

/// `true` when target position `to` falls inside the relocation window
/// around current position `pi` (`None` admits everything).
fn in_window(window: Option<usize>, pi: usize, to: usize) -> bool {
    match window {
        None => true,
        Some(w) => to.abs_diff(pi) <= w,
    }
}

/// Enumerates every relocation of a `dW`-class op as a move descriptor:
/// all in-lane target positions, plus (when `cross_lane`) every
/// insertion point of every other lane. A `dW_i` whose `U_i` sits on the
/// same lane additionally moves as a `[dW_i, U_i]` block — relocating
/// the gradient alone would always violate the update's dependency, so
/// deferring a weight gradient past its own update needs the pair to
/// travel together. Descriptors may reproduce the input state; appliers
/// filter identities.
///
/// Enumeration order is the repository-wide tie-break key
/// ([`ooo_core::schedule::ReadyQueue`]): moved ops in ascending dense
/// arena id, targets in ascending `(lane, position)`. The greedy ranking
/// accepts equal-score candidates by enumeration index, so this order is
/// what makes ties resolve to the smallest op id — independent of where
/// the op happens to sit in the incumbent's lanes, and therefore
/// identical for every schedule that reaches the same search state
/// (including the memory-capped full-scoring path, which shares this
/// enumerator with the delta path).
///
/// `window` (see [`TuneOptions::window`]) restricts target positions to
/// within that many slots of the op's current position — on every lane,
/// using the same index band — turning the O(ops × positions)
/// neighborhood linear for thousand-stage schedules. `None` keeps the
/// exhaustive enumeration.
pub(crate) fn schedule_move_batches(
    graph: &TrainGraph,
    state: &Schedule,
    cross_lane: bool,
    window: Option<usize>,
) -> Vec<(MoveBatch, String)> {
    use ooo_core::Op;
    let mut out = Vec::new();
    let mut movers: Vec<(usize, usize, usize, Op)> = Vec::new();
    for (li, lane) in state.lanes.iter().enumerate() {
        for (pi, &op) in lane.ops.iter().enumerate() {
            if !op.is_weight_grad_class() {
                continue;
            }
            let id = graph.op_index(op).unwrap_or(usize::MAX);
            movers.push((id, li, pi, op));
        }
    }
    movers.sort_unstable();
    for (_, li, pi, op) in movers {
        let lane = &state.lanes[li];
        // In-lane: every position of the reduced lane except the
        // identity.
        for to in 0..lane.ops.len() {
            if to == pi || !in_window(window, pi, to) {
                continue;
            }
            out.push((
                vec![(op, li, to)],
                format!("move {op} to {}:{to}", lane.name),
            ));
        }
        if cross_lane {
            for (lj, other) in state.lanes.iter().enumerate() {
                if lj == li {
                    continue;
                }
                for to in 0..=other.ops.len() {
                    if !in_window(window, pi, to) {
                        continue;
                    }
                    out.push((
                        vec![(op, lj, to)],
                        format!("move {op} to {}:{to}", other.name),
                    ));
                }
            }
        }
        // Block moves: `[dW_i, U_i]` as one unit.
        let Op::WeightGrad(layer) = op else { continue };
        let update = Op::Update(layer);
        if !lane.ops.contains(&update) {
            continue;
        }
        for to in 0..=lane.ops.len().saturating_sub(2) {
            if !in_window(window, pi, to) {
                continue;
            }
            out.push((
                vec![(op, li, to), (update, li, to + 1)],
                format!("move {op}+{update} to {}:{to}", lane.name),
            ));
        }
        if cross_lane {
            for (lj, other) in state.lanes.iter().enumerate() {
                if lj == li {
                    continue;
                }
                for to in 0..=other.ops.len() {
                    if !in_window(window, pi, to) {
                        continue;
                    }
                    out.push((
                        vec![(op, lj, to), (update, lj, to + 1)],
                        format!("move {op}+{update} to {}:{to}", other.name),
                    ));
                }
            }
        }
    }
    out
}

/// Applies a move batch to a plain [`Schedule`] clone, mirroring
/// [`DeltaEval::relocate_many`]: remove every moved op, then insert at
/// the target coordinates in ascending `(lane, position)` order,
/// clamped to the lane length.
pub(crate) fn apply_move_batch(state: &Schedule, batch: &MoveBatch) -> Schedule {
    let mut next = state.clone();
    for &(op, _, _) in batch {
        for lane in &mut next.lanes {
            lane.ops.retain(|&o| o != op);
        }
    }
    let mut inserts = batch.clone();
    inserts.sort_unstable_by_key(|&(_, l, p)| (l, p));
    for (op, l, p) in inserts {
        let ops = &mut next.lanes[l].ops;
        ops.insert(p.min(ops.len()), op);
    }
    next
}

/// Enumerates every `dW`-class relocation as a materialized schedule;
/// see [`schedule_move_batches`] for the move set. Identity moves are
/// filtered out.
pub(crate) fn schedule_moves(
    graph: &TrainGraph,
    state: &Schedule,
    cross_lane: bool,
    window: Option<usize>,
) -> Vec<(Schedule, String)> {
    schedule_move_batches(graph, state, cross_lane, window)
        .into_iter()
        .filter_map(|(batch, description)| {
            let next = apply_move_batch(state, &batch);
            (next != *state).then_some((next, description))
        })
        .collect()
}

/// Tunes a multi-lane schedule in place: greedy + seeded-restart search
/// over `dW`-class relocations, scored by the exact predictor and gated
/// by the verifier.
///
/// # Errors
///
/// [`Error::Unsafe`] when the *input* already fails the safety gate;
/// [`Error::Core`] when the input does not evaluate under the predictor.
pub fn tune_schedule<C: CostModel + Sync>(
    graph: &TrainGraph,
    baseline: &Schedule,
    cost: &C,
    opts: &TuneOptions,
) -> Result<Tuned> {
    let verifier = Verifier::new(graph)
        .with_config(opts.verify_config())
        .with_cost(cost);
    let report = verifier.verify(baseline);
    if !report.is_clean() {
        return Err(Error::Unsafe(report));
    }
    let base_raw = predict_makespan(graph, baseline, cost)?.makespan();
    let base_m = match opts.memory_cap {
        None => base_raw,
        Some(cap) => {
            let peak = schedule_peak(graph, baseline, cost)?;
            if peak > cap {
                base_raw.saturating_add(MEMORY_CAP_PENALTY)
            } else {
                base_raw
            }
        }
    };
    let space = ScheduleSpace {
        graph,
        cost,
        verifier,
        cross_lane: opts.cross_lane,
        window: opts.window,
        memory_cap: opts.memory_cap,
    };
    let (schedule, predicted, moves, restarts_adopted) =
        local_search(&space, baseline.clone(), base_m, opts);
    // Capped scores carry the penalty; report the raw makespan (and the
    // winner's exact peak) instead.
    let (predicted, peak) = match opts.memory_cap {
        None => (predicted, None),
        Some(_) => (
            predict_makespan(graph, &schedule, cost)?.makespan(),
            Some(schedule_peak(graph, &schedule, cost)?),
        ),
    };
    Ok(Tuned {
        schedule,
        baseline: base_raw,
        predicted,
        peak,
        moves,
        restarts_adopted,
    })
}

/// Certifies a tuned schedule: runs the discrete-event simulator once
/// and demands the statically predicted makespan match **exactly**
/// (tolerance 0). Returns the certified makespan.
///
/// # Errors
///
/// [`Error::Certification`] on any disagreement; [`Error::Core`] when
/// the schedule does not simulate.
pub fn certify_schedule<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<SimTime> {
    let predicted = predict_makespan(graph, schedule, cost)?.makespan();
    let simulated = ooo_core::list_scheduling::simulate(graph, schedule, cost)?.makespan();
    if predicted != simulated {
        return Err(Error::Certification {
            predicted,
            simulated,
        });
    }
    Ok(simulated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::UnitCost;
    use ooo_core::Op;

    /// A two-lane single-GPU schedule with all dW/U work appended to the
    /// end of the sub lane: the tuner should interleave it.
    fn lazy_two_lane(l: usize) -> (TrainGraph, Schedule) {
        let graph = TrainGraph::single_gpu(l);
        let mut main = vec![Op::Loss];
        for i in (2..=l).rev() {
            main.push(Op::OutputGrad(ooo_core::op::LayerId(i)));
        }
        for i in 1..=l {
            main.push(Op::Forward(ooo_core::op::LayerId(i)));
        }
        let mut sub = Vec::new();
        for i in 1..=l {
            sub.push(Op::WeightGrad(ooo_core::op::LayerId(i)));
            sub.push(Op::Update(ooo_core::op::LayerId(i)));
        }
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        (graph, s)
    }

    #[test]
    fn tuner_improves_a_lazy_schedule_and_certifies() {
        let (graph, baseline) = lazy_two_lane(6);
        let tuned = tune_schedule(&graph, &baseline, &UnitCost, &TuneOptions::default()).unwrap();
        assert!(tuned.predicted <= tuned.baseline);
        let certified = certify_schedule(&graph, &tuned.schedule, &UnitCost).unwrap();
        assert_eq!(certified, tuned.predicted);
    }

    #[test]
    fn tuning_is_deterministic() {
        let (graph, baseline) = lazy_two_lane(5);
        let a = tune_schedule(&graph, &baseline, &UnitCost, &TuneOptions::default()).unwrap();
        let b = tune_schedule(&graph, &baseline, &UnitCost, &TuneOptions::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.moves.len(), b.moves.len());
    }

    #[test]
    fn tiny_budget_still_yields_valid_certified_result() {
        let (graph, baseline) = lazy_two_lane(6);
        for budget in [0u64, 1, 2, 5] {
            let opts = TuneOptions {
                budget: Some(budget),
                ..TuneOptions::default()
            };
            let tuned = tune_schedule(&graph, &baseline, &UnitCost, &opts).unwrap();
            // Best-so-far is never worse than the input and still
            // verifies and certifies exactly.
            assert!(tuned.predicted <= tuned.baseline, "budget {budget}");
            let certified = certify_schedule(&graph, &tuned.schedule, &UnitCost).unwrap();
            assert_eq!(certified, tuned.predicted, "budget {budget}");
        }
        // Zero budget returns the input untouched.
        let opts = TuneOptions {
            budget: Some(0),
            ..TuneOptions::default()
        };
        let tuned = tune_schedule(&graph, &baseline, &UnitCost, &opts).unwrap();
        assert_eq!(tuned.schedule, baseline);
        assert!(tuned.moves.is_empty());
    }

    #[test]
    fn budgeted_tuning_is_deterministic_parallel_or_not() {
        let (graph, baseline) = lazy_two_lane(6);
        for budget in [1u64, 3, 7, 100] {
            let par = TuneOptions {
                budget: Some(budget),
                parallel: true,
                ..TuneOptions::default()
            };
            let seq = TuneOptions {
                parallel: false,
                ..par.clone()
            };
            let a = tune_schedule(&graph, &baseline, &UnitCost, &par).unwrap();
            let b = tune_schedule(&graph, &baseline, &UnitCost, &seq).unwrap();
            assert_eq!(a.schedule, b.schedule, "budget {budget}");
            assert_eq!(a.predicted, b.predicted, "budget {budget}");
            assert_eq!(a.moves.len(), b.moves.len(), "budget {budget}");
        }
    }

    #[test]
    fn expired_deadline_returns_baseline_unharmed() {
        let (graph, baseline) = lazy_two_lane(5);
        let opts = TuneOptions {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..TuneOptions::default()
        };
        let tuned = tune_schedule(&graph, &baseline, &UnitCost, &opts).unwrap();
        assert_eq!(tuned.schedule, baseline);
        assert_eq!(tuned.predicted, tuned.baseline);
        certify_schedule(&graph, &tuned.schedule, &UnitCost).unwrap();
    }

    #[test]
    fn memory_cap_steers_the_search_under_the_budget() {
        use ooo_core::cost::{LayerCost, TableCost};
        use ooo_core::op::LayerId;
        // Eager dW run, update tail at the end: every wgrad stays live
        // until its late update, stacking the peak. On a single lane the
        // makespan is reorder-invariant, so only the cap penalty can
        // drive the search — it must find [dW, U] deferrals that bring
        // the ledger peak under the cap.
        let l = 5;
        let graph = TrainGraph::single_gpu(l);
        let cost = TableCost::uniform(
            l,
            LayerCost {
                weight_bytes: 10,
                ..LayerCost::default()
            },
        );
        let mut ops = vec![Op::Loss];
        for i in (2..=l).rev() {
            ops.push(Op::OutputGrad(LayerId(i)));
        }
        for i in (1..=l).rev() {
            ops.push(Op::WeightGrad(LayerId(i)));
        }
        for i in 1..=l {
            ops.push(Op::Update(LayerId(i)));
        }
        for i in 1..=l {
            ops.push(Op::Forward(LayerId(i)));
        }
        let baseline = Schedule::single_lane("gpu", ops);
        let base_peak = ooo_verify::mem::schedule_peak(&graph, &baseline, &cost).unwrap();
        let cap = base_peak * 9 / 10;
        let opts = TuneOptions {
            memory_cap: Some(cap),
            ..TuneOptions::default()
        };
        let tuned = tune_schedule(&graph, &baseline, &cost, &opts).unwrap();
        let peak = tuned.peak.expect("cap set implies a reported peak");
        assert!(
            peak <= cap,
            "peak {peak} exceeds cap {cap} (base {base_peak})"
        );
        assert_eq!(
            peak,
            ooo_verify::mem::schedule_peak(&graph, &tuned.schedule, &cost).unwrap()
        );
        // The winner still certifies: reported makespans are raw, not
        // penalty-laden.
        let certified = certify_schedule(&graph, &tuned.schedule, &cost).unwrap();
        assert_eq!(certified, tuned.predicted);
        // Without a cap the same input reports no peak and stays put.
        let untouched = tune_schedule(&graph, &baseline, &cost, &TuneOptions::default()).unwrap();
        assert_eq!(untouched.peak, None);
    }

    #[test]
    fn unsafe_input_is_refused() {
        let graph = TrainGraph::single_gpu(3);
        // dW3 scheduled before the loss: a dependency-order violation.
        let s = Schedule::single_lane(
            "gpu",
            vec![
                Op::WeightGrad(ooo_core::op::LayerId(3)),
                Op::Loss,
                Op::OutputGrad(ooo_core::op::LayerId(3)),
                Op::OutputGrad(ooo_core::op::LayerId(2)),
                Op::WeightGrad(ooo_core::op::LayerId(2)),
                Op::WeightGrad(ooo_core::op::LayerId(1)),
            ],
        );
        let opts = TuneOptions {
            require_complete: false,
            ..TuneOptions::default()
        };
        assert!(matches!(
            tune_schedule(&graph, &s, &UnitCost, &opts),
            Err(Error::Unsafe(_))
        ));
    }

    /// The move enumerator visits moved ops in ascending arena id — the
    /// repository-wide `(priority, op id)` tie-break key — regardless of
    /// which lane or position the op currently occupies. This is what
    /// pins equal-score greedy ties (the `(score, enumeration index)`
    /// ranking) to the smallest op id.
    #[test]
    fn move_enumeration_follows_arena_id_under_shuffled_lanes() {
        let graph = TrainGraph::single_gpu(4);
        let (_, baseline) = lazy_two_lane(4);
        // The same lane contents with the lanes swapped: position-order
        // enumeration would visit the dW-class ops in a different
        // sequence; the arena-id key must not care.
        let mut swapped = Schedule::new();
        swapped.add_lane("sub", baseline.lanes[1].ops.clone());
        swapped.add_lane("main", baseline.lanes[0].ops.clone());
        let ids = |s: &Schedule| -> Vec<usize> {
            schedule_move_batches(&graph, s, true, None)
                .iter()
                .map(|(batch, _)| graph.op_index(batch[0].0).unwrap())
                .collect()
        };
        let a = ids(&baseline);
        let b = ids(&swapped);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted, "enumeration is not ascending in arena id");
        assert_eq!(a, b, "enumeration depends on lane placement");
    }

    /// A slack memory cap switches scoring to the full-ledger path but
    /// must not change the search: same enumerator, same scores, same
    /// `(score, enumeration index)` tie-breaks — byte-identical winner.
    #[test]
    fn slack_memory_cap_is_trajectory_invariant() {
        let (graph, baseline) = lazy_two_lane(6);
        let plain = tune_schedule(&graph, &baseline, &UnitCost, &TuneOptions::default()).unwrap();
        let capped = tune_schedule(
            &graph,
            &baseline,
            &UnitCost,
            &TuneOptions {
                memory_cap: Some(u64::MAX),
                ..TuneOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.schedule, capped.schedule);
        assert_eq!(plain.predicted, capped.predicted);
        assert_eq!(
            plain
                .moves
                .iter()
                .map(|m| m.description.clone())
                .collect::<Vec<_>>(),
            capped
                .moves
                .iter()
                .map(|m| m.description.clone())
                .collect::<Vec<_>>()
        );
    }
}
