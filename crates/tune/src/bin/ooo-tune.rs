//! `ooo-tune` — predictor-guided schedule autotuning.
//!
//! Three modes:
//!
//! ```text
//! ooo-tune order --layers N [--k K] [--sync NS] [--policy fifo|bylayer]
//!                [--restarts N] [--window W] [--memory-cap BYTES] [--json] [--out FILE]
//! ooo-tune bundle <bundle.json> [--schedule NAME] [--policy fifo|bylayer]
//!                [--restarts N] [--window W] [--memory-cap BYTES] [--json] [--out FILE]
//! ooo-tune pipeline --layers N --devices D --strategy NAME [--group G]
//!                [--restarts N] [--window W] [--memory-cap BYTES] [--json] [--out FILE]
//! ```
//!
//! `order` tunes a reverse-first-k backward order of a data-parallel
//! graph with uniform per-layer costs (`--sync` sets the `S[dW]`
//! duration). `bundle` tunes every order and schedule of a
//! JSON-exported [`ScheduleBundle`]. `pipeline` tunes one strategy's
//! op-level schedule under unit cost. Every winner is certified:
//! predicted makespan == simulated makespan, tolerance 0.
//!
//! `--memory-cap BYTES` turns the objective into *min makespan subject
//! to ledger peak <= cap* ([`TuneOptions::memory_cap`]): candidates over
//! the cap are rejected, and the output reports the winner's exact
//! static ledger peak.
//!
//! Output is deterministic: the same input produces byte-identical
//! output (CI runs every invocation twice and compares). Exit status:
//! `0` when every input was tuned and certified (improved or already
//! optimal), `1` when an input schedule fails the `ooo-verify` safety
//! gate (the tuner refuses unsafe starting points), `2` on usage, I/O,
//! or parse problems.

use ooo_core::cost::{CostModel, LayerCost, TableCost, UnitCost};
use ooo_core::datapar::CommPolicy;
use ooo_core::export::ScheduleBundle;
use ooo_core::json::{obj, Value};
use ooo_core::pipeline::Strategy;
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::schedule::Schedule;
use ooo_core::{Op, SimTime, TrainGraph};
use ooo_tune::order::{certify_order, tune_backward_order, KFamily};
use ooo_tune::pipeline::tune_pipeline;
use ooo_tune::{certify_schedule, tune_schedule, AppliedMove, Error, TuneOptions};
use std::process::ExitCode;

const USAGE: &str = "usage: ooo-tune order --layers N [--k K] [--sync NS] \
                     [--policy fifo|bylayer] [--restarts N] [--window W] \
                     [--memory-cap BYTES] [--json] [--out FILE]\n\
                     \x20      ooo-tune bundle <bundle.json> [--schedule NAME] \
                     [--policy fifo|bylayer] [--restarts N] [--window W] \
                     [--memory-cap BYTES] [--json] [--out FILE]\n\
                     \x20      ooo-tune pipeline --layers N --devices D --strategy NAME \
                     [--group G] [--restarts N] [--window W] \
                     [--memory-cap BYTES] [--json] [--out FILE]";

enum Mode {
    Order {
        layers: usize,
        k: usize,
        sync: SimTime,
        policy: CommPolicy,
    },
    Bundle {
        path: String,
        schedule: Option<String>,
        policy: CommPolicy,
    },
    Pipeline {
        layers: usize,
        devices: usize,
        strategy: Strategy,
        group: usize,
    },
}

struct Args {
    mode: Mode,
    knobs: Knobs,
    json: bool,
    out: Option<String>,
}

/// Search knobs shared by every mode.
#[derive(Clone, Copy)]
struct Knobs {
    restarts: u64,
    /// Relocation neighborhood cap ([`TuneOptions::window`]); `None`
    /// keeps the exact full-neighborhood search.
    window: Option<usize>,
    /// Peak-memory cap on the objective ([`TuneOptions::memory_cap`]).
    memory_cap: Option<u64>,
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "mp" | "modelparallel" => Strategy::ModelParallel,
        "gpipe" => Strategy::GPipe,
        "pipedream" => Strategy::PipeDream,
        "dapple" => Strategy::Dapple,
        "megatron" => Strategy::MegatronInterleaved { chunks: 2 },
        "pipe1" => Strategy::OooPipe1,
        "pipe2" => Strategy::OooPipe2,
        other => return Err(format!("unknown strategy: {other:?}")),
    })
}

fn parse_policy(name: &str) -> Result<CommPolicy, String> {
    Ok(match name {
        "fifo" => CommPolicy::FifoCompletion,
        "bylayer" => CommPolicy::PriorityByLayer,
        other => return Err(format!("unknown policy: {other:?}")),
    })
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mode_word = argv.next().ok_or_else(|| USAGE.to_string())?;
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_usize = |flag: &str, v: String| {
        v.parse::<usize>()
            .map_err(|_| format!("{flag}: not a count: {v:?}"))
    };
    let mut restarts = TuneOptions::default().restarts;
    let mut window = None;
    let mut memory_cap = None;
    let mut json = false;
    let mut out = None;

    let mode = match mode_word.as_str() {
        "order" => {
            let mut layers = None;
            let mut k = 0usize;
            let mut sync: SimTime = 3;
            let mut policy = CommPolicy::PriorityByLayer;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--layers" => {
                        layers = Some(parse_usize("--layers", need_value(&mut argv, "--layers")?)?)
                    }
                    "--k" => k = parse_usize("--k", need_value(&mut argv, "--k")?)?,
                    "--sync" => {
                        sync = parse_usize("--sync", need_value(&mut argv, "--sync")?)? as SimTime
                    }
                    "--policy" => policy = parse_policy(&need_value(&mut argv, "--policy")?)?,
                    "--restarts" => {
                        restarts =
                            parse_usize("--restarts", need_value(&mut argv, "--restarts")?)? as u64
                    }
                    "--window" => {
                        window = Some(parse_usize("--window", need_value(&mut argv, "--window")?)?)
                    }
                    "--memory-cap" => {
                        let v = need_value(&mut argv, "--memory-cap")?;
                        memory_cap = Some(
                            v.parse::<u64>()
                                .map_err(|_| format!("--memory-cap: not a byte count: {v:?}"))?,
                        );
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            match layers {
                Some(layers) if layers > 0 && k <= layers => Mode::Order {
                    layers,
                    k,
                    sync,
                    policy,
                },
                _ => return Err(USAGE.to_string()),
            }
        }
        "bundle" => {
            let mut path = String::new();
            let mut schedule = None;
            let mut policy = CommPolicy::PriorityByLayer;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--schedule" => schedule = Some(need_value(&mut argv, "--schedule")?),
                    "--policy" => policy = parse_policy(&need_value(&mut argv, "--policy")?)?,
                    "--restarts" => {
                        restarts =
                            parse_usize("--restarts", need_value(&mut argv, "--restarts")?)? as u64
                    }
                    "--window" => {
                        window = Some(parse_usize("--window", need_value(&mut argv, "--window")?)?)
                    }
                    "--memory-cap" => {
                        let v = need_value(&mut argv, "--memory-cap")?;
                        memory_cap = Some(
                            v.parse::<u64>()
                                .map_err(|_| format!("--memory-cap: not a byte count: {v:?}"))?,
                        );
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other if other.starts_with('-') => {
                        return Err(format!("unknown flag: {other}"))
                    }
                    other if path.is_empty() => path = other.to_string(),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if path.is_empty() {
                return Err(USAGE.to_string());
            }
            Mode::Bundle {
                path,
                schedule,
                policy,
            }
        }
        "pipeline" => {
            let mut layers = None;
            let mut devices = None;
            let mut strategy = None;
            let mut group = 1usize;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--layers" => {
                        layers = Some(parse_usize("--layers", need_value(&mut argv, "--layers")?)?)
                    }
                    "--devices" => {
                        devices = Some(parse_usize(
                            "--devices",
                            need_value(&mut argv, "--devices")?,
                        )?)
                    }
                    "--strategy" => {
                        strategy = Some(parse_strategy(&need_value(&mut argv, "--strategy")?)?)
                    }
                    "--group" => group = parse_usize("--group", need_value(&mut argv, "--group")?)?,
                    "--restarts" => {
                        restarts =
                            parse_usize("--restarts", need_value(&mut argv, "--restarts")?)? as u64
                    }
                    "--window" => {
                        window = Some(parse_usize("--window", need_value(&mut argv, "--window")?)?)
                    }
                    "--memory-cap" => {
                        let v = need_value(&mut argv, "--memory-cap")?;
                        memory_cap = Some(
                            v.parse::<u64>()
                                .map_err(|_| format!("--memory-cap: not a byte count: {v:?}"))?,
                        );
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            match (layers, devices, strategy) {
                (Some(layers), Some(devices), Some(strategy))
                    if layers > 0 && devices > 0 && group >= 1 =>
                {
                    Mode::Pipeline {
                        layers,
                        devices,
                        strategy,
                        group,
                    }
                }
                _ => return Err(USAGE.to_string()),
            }
        }
        "--help" | "-h" => return Err(USAGE.to_string()),
        other => return Err(format!("unknown mode: {other:?}\n{USAGE}")),
    };
    Ok(Args {
        mode,
        knobs: Knobs {
            restarts,
            window,
            memory_cap,
        },
        json,
        out,
    })
}

/// One tuned (or refused) input, ready for rendering.
struct Outcome {
    name: String,
    kind: &'static str,
    baseline: SimTime,
    tuned: SimTime,
    certified: SimTime,
    /// Certified lower bound over the scheduled op subset; fed to the
    /// tuner as its early-termination target.
    lower_bound: SimTime,
    /// `true` when the certified makespan meets the lower bound: the
    /// tuned schedule is provably makespan-optimal for its op set and
    /// lane structure.
    proven_optimal: bool,
    /// Exact static ledger peak of the winner, present iff a memory cap
    /// was requested; `cap_met` records whether it landed under the cap.
    peak: Option<u64>,
    cap: Option<u64>,
    k: Option<usize>,
    moves: Vec<AppliedMove>,
    restarts_adopted: usize,
}

/// The certified makespan floor of `schedule`'s op subset on its lane
/// structure ([`ooo_core::bounds::partial_lower_bound`]). The tuner's
/// moves never add lanes or ops, so no tuned descendant can beat this
/// bound — reaching it proves optimality and stops the search early.
fn certified_floor<C: CostModel>(graph: &TrainGraph, schedule: &Schedule, cost: &C) -> SimTime {
    let scheduled: Vec<Op> = schedule
        .lanes
        .iter()
        .flat_map(|l| l.ops.iter().copied())
        .collect();
    let compute = schedule
        .lanes
        .iter()
        .filter(|l| l.ops.iter().any(|o| o.is_compute()))
        .count()
        .max(1);
    let link = schedule
        .lanes
        .iter()
        .filter(|l| l.ops.iter().any(|o| o.is_sync()))
        .count()
        .max(1);
    ooo_core::bounds::partial_lower_bound(graph, cost, &scheduled, compute, link)
}

enum ItemResult {
    Tuned(Outcome),
    /// The input failed the safety gate; carries the fired rule codes.
    Unsafe {
        name: String,
        codes: Vec<String>,
    },
}

fn outcome_to_json(o: &Outcome) -> Value {
    obj([
        ("name", o.name.as_str().into()),
        ("kind", o.kind.into()),
        ("baseline_makespan", Value::Num(o.baseline as f64)),
        ("tuned_makespan", Value::Num(o.tuned as f64)),
        ("certified_makespan", Value::Num(o.certified as f64)),
        ("lower_bound", Value::Num(o.lower_bound as f64)),
        ("proven_optimal", Value::Bool(o.proven_optimal)),
        ("improved", Value::Bool(o.tuned < o.baseline)),
        (
            "peak",
            match o.peak {
                Some(p) => Value::Num(p as f64),
                None => Value::Null,
            },
        ),
        (
            "memory_cap",
            match o.cap {
                Some(c) => Value::Num(c as f64),
                None => Value::Null,
            },
        ),
        (
            "cap_met",
            match (o.peak, o.cap) {
                (Some(p), Some(c)) => Value::Bool(p <= c),
                _ => Value::Null,
            },
        ),
        (
            "k",
            match o.k {
                Some(k) => Value::Num(k as f64),
                None => Value::Null,
            },
        ),
        (
            "moves",
            Value::Arr(
                o.moves
                    .iter()
                    .map(|m| Value::Str(format!("{}: {}", m.kind.as_str(), m.description)))
                    .collect(),
            ),
        ),
        ("restarts_adopted", Value::Num(o.restarts_adopted as f64)),
    ])
}

fn item_to_json(r: &ItemResult) -> Value {
    match r {
        ItemResult::Tuned(o) => outcome_to_json(o),
        ItemResult::Unsafe { name, codes } => obj([
            ("name", name.as_str().into()),
            ("kind", "unsafe".into()),
            (
                "diagnostics",
                Value::Arr(codes.iter().map(|c| c.as_str().into()).collect()),
            ),
        ]),
    }
}

fn item_to_human(r: &ItemResult) -> String {
    match r {
        ItemResult::Tuned(o) => {
            let mut s = format!(
                "{}: baseline {} -> tuned {} (certified {}, lower bound {}, {})\n",
                o.name,
                o.baseline,
                o.tuned,
                o.certified,
                o.lower_bound,
                if o.proven_optimal {
                    "proven optimal"
                } else if o.tuned < o.baseline {
                    "improved"
                } else {
                    "already optimal under the move set"
                }
            );
            if let (Some(p), Some(c)) = (o.peak, o.cap) {
                s.push_str(&format!(
                    "  ledger peak {p} bytes vs cap {c} ({})\n",
                    if p <= c { "met" } else { "exceeded" }
                ));
            }
            for m in &o.moves {
                s.push_str(&format!(
                    "  {} {} -> {}\n",
                    m.kind.as_str(),
                    m.description,
                    m.predicted
                ));
            }
            s
        }
        ItemResult::Unsafe { name, codes } => {
            format!(
                "{name}: input fails the safety gate ({}), refusing to tune\n",
                codes.join(", ")
            )
        }
    }
}

fn opts_with(knobs: Knobs, require_complete: bool, target: Option<SimTime>) -> TuneOptions {
    TuneOptions {
        restarts: knobs.restarts,
        window: knobs.window,
        memory_cap: knobs.memory_cap,
        require_complete,
        // An over-cap incumbent scores above any makespan floor, so a
        // target is only an early-exit when no cap is in play.
        target: if knobs.memory_cap.is_some() {
            None
        } else {
            target
        },
        ..TuneOptions::default()
    }
}

/// Error split: gate refusals become exit-1 items, everything else
/// aborts with exit 2.
fn push_or_fail(
    results: &mut Vec<ItemResult>,
    name: &str,
    r: Result<Outcome, Error>,
) -> Result<(), String> {
    match r {
        Ok(o) => {
            results.push(ItemResult::Tuned(o));
            Ok(())
        }
        Err(Error::Unsafe(report)) => {
            results.push(ItemResult::Unsafe {
                name: name.to_string(),
                codes: report.rule_codes().iter().map(|c| c.to_string()).collect(),
            });
            Ok(())
        }
        Err(e) => Err(format!("{name}: {e}")),
    }
}

fn run_order_mode(
    layers: usize,
    k: usize,
    sync: SimTime,
    policy: CommPolicy,
    knobs: Knobs,
) -> Result<Outcome, Error> {
    let graph = TrainGraph::data_parallel(layers);
    let cost = TableCost::uniform(
        layers,
        LayerCost {
            sync_weight: sync,
            ..LayerCost::default()
        },
    );
    let baseline = reverse_first_k(&graph, k, None::<(u64, &TableCost)>)?;
    let realized = ooo_verify::predict::datapar_schedule(&graph, &baseline, &cost, policy)?;
    let floor = certified_floor(&graph, &realized, &cost);
    let tuned = tune_backward_order(
        &graph,
        &baseline,
        Some(k),
        &cost,
        policy,
        KFamily::ReverseFirstK,
        &opts_with(knobs, true, Some(floor)),
    )?;
    let certified = certify_order(&graph, &tuned.order, &cost, policy)?;
    Ok(Outcome {
        name: format!("reverse-first-k(l={layers}, k={k})"),
        kind: "order",
        baseline: tuned.baseline,
        tuned: tuned.predicted,
        certified,
        lower_bound: floor,
        proven_optimal: certified == floor,
        peak: tuned.peak,
        cap: knobs.memory_cap,
        k: tuned.k,
        moves: tuned.moves,
        restarts_adopted: tuned.restarts_adopted,
    })
}

fn run_bundle_mode(
    path: &str,
    wanted: Option<&str>,
    policy: CommPolicy,
    knobs: Knobs,
) -> Result<Vec<ItemResult>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let bundle = ScheduleBundle::from_json_lenient(&text)
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    let graph = TrainGraph::new(bundle.graph.clone())
        .map_err(|e| format!("invalid graph configuration: {e}"))?;

    let mut results = Vec::new();
    for (name, order) in &bundle.orders {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        // Backward orders of a data-parallel graph run against the link
        // lane the engine would add; anything else is a flat schedule.
        let item = if graph.config().sync_weight_grads {
            let backward: Vec<_> = order.iter().copied().filter(|o| o.is_backward()).collect();
            let cost = UnitCost;
            ooo_verify::predict::datapar_schedule(&graph, &backward, &cost, policy)
                .map_err(Error::from)
                .and_then(|realized| {
                    let floor = certified_floor(&graph, &realized, &cost);
                    let t = tune_backward_order(
                        &graph,
                        &backward,
                        None,
                        &cost,
                        policy,
                        KFamily::ReverseFirstK,
                        &opts_with(knobs, true, Some(floor)),
                    )?;
                    let certified = certify_order(&graph, &t.order, &cost, policy)?;
                    Ok(Outcome {
                        name: name.clone(),
                        kind: "order",
                        baseline: t.baseline,
                        tuned: t.predicted,
                        certified,
                        lower_bound: floor,
                        proven_optimal: certified == floor,
                        peak: t.peak,
                        cap: knobs.memory_cap,
                        k: t.k,
                        moves: t.moves,
                        restarts_adopted: t.restarts_adopted,
                    })
                })
        } else {
            let s = ooo_core::schedule::Schedule::single_lane(name, order.clone());
            tune_one_schedule(&graph, name, &s, knobs)
        };
        push_or_fail(&mut results, name, item)?;
    }
    for (name, schedule) in &bundle.schedules {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        let item = tune_one_schedule(&graph, name, schedule, knobs);
        push_or_fail(&mut results, name, item)?;
    }
    if results.is_empty() {
        return Err(match wanted {
            Some(w) => format!("no order or schedule named {w:?} in the bundle"),
            None => "bundle holds no orders or schedules".to_string(),
        });
    }
    Ok(results)
}

fn tune_one_schedule(
    graph: &TrainGraph,
    name: &str,
    schedule: &ooo_core::schedule::Schedule,
    knobs: Knobs,
) -> Result<Outcome, Error> {
    // Exported schedules may be partial (engines with implicit updates),
    // so the gate does not demand completeness. The subset lower bound
    // is still valid — it covers exactly the ops the schedule runs.
    let floor = certified_floor(graph, schedule, &UnitCost);
    let tuned = tune_schedule(
        graph,
        schedule,
        &UnitCost,
        &opts_with(knobs, false, Some(floor)),
    )?;
    let certified = certify_schedule(graph, &tuned.schedule, &UnitCost)?;
    Ok(Outcome {
        name: name.to_string(),
        kind: "schedule",
        baseline: tuned.baseline,
        tuned: tuned.predicted,
        certified,
        lower_bound: floor,
        proven_optimal: certified == floor,
        peak: tuned.peak,
        cap: knobs.memory_cap,
        k: None,
        moves: tuned.moves,
        restarts_adopted: tuned.restarts_adopted,
    })
}

fn run_pipeline_mode(
    layers: usize,
    devices: usize,
    strategy: Strategy,
    group: usize,
    knobs: Knobs,
) -> Result<Outcome, Error> {
    let (pgraph, pschedule) =
        ooo_core::pipeline::op_level_schedule(layers, devices, strategy, group);
    let floor = certified_floor(&pgraph, &pschedule, &UnitCost);
    let tuned = tune_pipeline(
        layers,
        devices,
        strategy,
        group,
        &UnitCost,
        &opts_with(knobs, true, Some(floor)),
    )?;
    let certified = certify_schedule(&tuned.graph, &tuned.schedule, &UnitCost)?;
    let name = match strategy {
        Strategy::ModelParallel => "model-parallel",
        Strategy::GPipe => "gpipe",
        Strategy::PipeDream => "pipedream",
        Strategy::Dapple => "dapple",
        Strategy::MegatronInterleaved { .. } => "megatron-interleaved",
        Strategy::OooPipe1 => "ooo-pipe1",
        Strategy::OooPipe2 => "ooo-pipe2",
    };
    Ok(Outcome {
        name: name.to_string(),
        kind: "pipeline",
        baseline: tuned.baseline,
        tuned: tuned.predicted,
        certified,
        lower_bound: floor,
        proven_optimal: certified == floor,
        peak: tuned.peak,
        cap: knobs.memory_cap,
        k: Some(tuned.group),
        moves: tuned.moves,
        restarts_adopted: tuned.restarts_adopted,
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut results = Vec::new();
    let outcome = match &args.mode {
        Mode::Order {
            layers,
            k,
            sync,
            policy,
        } => push_or_fail(
            &mut results,
            "order",
            run_order_mode(*layers, *k, *sync, *policy, args.knobs),
        ),
        Mode::Bundle {
            path,
            schedule,
            policy,
        } => run_bundle_mode(path, schedule.as_deref(), *policy, args.knobs).map(|r| results = r),
        Mode::Pipeline {
            layers,
            devices,
            strategy,
            group,
        } => push_or_fail(
            &mut results,
            "pipeline",
            run_pipeline_mode(*layers, *devices, *strategy, *group, args.knobs),
        ),
    };
    if let Err(msg) = outcome {
        eprintln!("ooo-tune: {msg}");
        return ExitCode::from(2);
    }

    let any_unsafe = results
        .iter()
        .any(|r| matches!(r, ItemResult::Unsafe { .. }));
    let json_output = || {
        let docs: Vec<String> = results
            .iter()
            .map(|r| item_to_json(r).to_pretty())
            .collect();
        if docs.len() == 1 {
            docs[0].clone()
        } else {
            format!("[\n{}\n]", docs.join(",\n"))
        }
    };
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, json_output() + "\n") {
            eprintln!("ooo-tune: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", json_output());
    } else {
        for r in &results {
            print!("{}", item_to_human(r));
        }
    }

    if any_unsafe {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
