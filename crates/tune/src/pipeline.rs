//! Tuning op-level pipeline-parallel schedules.
//!
//! [`tune_pipeline`] starts from a strategy's op-level schedule
//! ([`ooo_core::pipeline::op_level_schedule`]) and searches two move
//! families: `dW`-class relocations *within* a device lane (an op may
//! not change devices — the layer allocation is fixed by the strategy),
//! and *regrouping* — replacing the whole schedule by the same
//! strategy's rendering under a different modulo group, the knob behind
//! OOO-Pipe2's modulo allocation. For strategies whose allocation
//! ignores the group the regroup moves are no-ops and greedy descent
//! simply never accepts them.

use crate::{local_search, AppliedMove, Error, Result, SearchSpace, TuneOptions};
use ooo_core::cost::CostModel;
use ooo_core::pipeline::{op_level_schedule, Strategy};
use ooo_core::schedule::Schedule;
use ooo_core::{SimTime, TrainGraph};
use ooo_verify::predict::predict_makespan;
use ooo_verify::Verifier;

/// The outcome of tuning one op-level pipeline schedule.
#[derive(Debug, Clone)]
pub struct TunedPipeline {
    /// The (group-independent) pipeline dependency graph.
    pub graph: TrainGraph,
    /// The tuned schedule.
    pub schedule: Schedule,
    /// The modulo group of the final schedule.
    pub group: usize,
    /// Predicted makespan of the input schedule.
    pub baseline: SimTime,
    /// Predicted makespan of the tuned schedule.
    pub predicted: SimTime,
    /// Static ledger peak of the tuned schedule; populated iff
    /// [`TuneOptions::memory_cap`] was set.
    pub peak: Option<u64>,
    /// The accepted move trajectory.
    pub moves: Vec<AppliedMove>,
    /// How many restart perturbations were adopted.
    pub restarts_adopted: usize,
}

impl TunedPipeline {
    /// `true` when the tuner strictly beat the baseline.
    pub fn improved(&self) -> bool {
        self.predicted < self.baseline
    }
}

#[derive(Clone)]
struct PipeState {
    schedule: Schedule,
    group: usize,
}

struct PipeSpace<'g, C: CostModel> {
    graph: &'g TrainGraph,
    cost: &'g C,
    verifier: Verifier<'g, &'g C>,
    layers: usize,
    devices: usize,
    strategy: Strategy,
    window: Option<usize>,
    memory_cap: Option<u64>,
}

impl<C: CostModel> PipeSpace<'_, C> {
    /// Regroup candidates: re-render the strategy under every other
    /// modulo group.
    fn regroups(&self, state: &PipeState) -> Vec<(PipeState, String)> {
        let mut out = Vec::new();
        for group in 1..=self.layers {
            if group == state.group {
                continue;
            }
            let (_, schedule) = op_level_schedule(self.layers, self.devices, self.strategy, group);
            if schedule == state.schedule {
                continue;
            }
            out.push((
                PipeState { schedule, group },
                format!("regroup modulo {group}"),
            ));
        }
        out
    }
}

impl<C: CostModel + Sync> SearchSpace for PipeSpace<'_, C> {
    type State = PipeState;

    fn score(&self, state: &PipeState) -> Option<SimTime> {
        let m = predict_makespan(self.graph, &state.schedule, self.cost)
            .ok()
            .map(|p| p.makespan())?;
        crate::capped_score(m, self.memory_cap, || {
            ooo_verify::mem::schedule_peak(self.graph, &state.schedule, self.cost).ok()
        })
    }

    fn clean(&self, state: &PipeState) -> bool {
        self.verifier.verify(&state.schedule).is_clean()
    }

    fn candidates(&self, state: &PipeState) -> Vec<(PipeState, String)> {
        let mut out = self.regroups(state);
        // In-lane dW-class relocations; ops stay on their device.
        for (next, description) in
            crate::schedule_moves(self.graph, &state.schedule, false, self.window)
        {
            out.push((
                PipeState {
                    schedule: next,
                    group: state.group,
                },
                description,
            ));
        }
        out
    }

    /// Regroup candidates replace the whole schedule and get the full
    /// predictor pass; the in-lane relocations are delta-scored with one
    /// [`ooo_verify::predict::DeltaEval`] over the incumbent
    /// ([`crate::delta_scored_schedule_moves`]) — cone-only rescoring
    /// per candidate, identical scores.
    fn scored_candidates(&self, state: &PipeState) -> Vec<(PipeState, String, Option<SimTime>)> {
        // A memory cap needs the full ledger per candidate; the
        // makespan-only delta probe cannot supply it.
        if self.memory_cap.is_some() {
            return self
                .candidates(state)
                .into_iter()
                .map(|(st, d)| {
                    let m = self.score(&st);
                    (st, d, m)
                })
                .collect();
        }
        let mut out: Vec<(PipeState, String, Option<SimTime>)> = self
            .regroups(state)
            .into_iter()
            .map(|(st, d)| {
                let m = self.score(&st);
                (st, d, m)
            })
            .collect();
        for (next, description, m) in crate::delta_scored_schedule_moves(
            self.graph,
            self.cost,
            &state.schedule,
            false,
            self.window,
        ) {
            out.push((
                PipeState {
                    schedule: next,
                    group: state.group,
                },
                description,
                m,
            ));
        }
        out
    }
}

/// Tunes the op-level schedule of `strategy` over `layers` layers and
/// `devices` devices, starting from modulo group `group`.
///
/// # Errors
///
/// [`Error::Unsafe`] when the strategy's own schedule fails the safety
/// gate; [`Error::Core`] when it does not evaluate.
pub fn tune_pipeline<C: CostModel + Sync>(
    layers: usize,
    devices: usize,
    strategy: Strategy,
    group: usize,
    cost: &C,
    opts: &TuneOptions,
) -> Result<TunedPipeline> {
    let (graph, baseline) = op_level_schedule(layers, devices, strategy, group);
    let verifier = Verifier::new(&graph)
        .with_config(opts.verify_config())
        .with_cost(cost);
    let report = verifier.verify(&baseline);
    if !report.is_clean() {
        return Err(Error::Unsafe(report));
    }
    let base_raw = predict_makespan(&graph, &baseline, cost)?.makespan();
    let base_m = match opts.memory_cap {
        None => base_raw,
        Some(cap) => {
            let peak = ooo_verify::mem::schedule_peak(&graph, &baseline, cost)?;
            if peak > cap {
                base_raw.saturating_add(crate::MEMORY_CAP_PENALTY)
            } else {
                base_raw
            }
        }
    };
    let space = PipeSpace {
        graph: &graph,
        cost,
        verifier,
        layers,
        devices,
        strategy,
        window: opts.window,
        memory_cap: opts.memory_cap,
    };
    let init = PipeState {
        schedule: baseline,
        group,
    };
    let (state, predicted, moves, restarts_adopted) = local_search(&space, init, base_m, opts);
    // Capped scores carry the penalty; report the raw makespan (and the
    // winner's exact peak) instead.
    let (predicted, peak) = match opts.memory_cap {
        None => (predicted, None),
        Some(_) => (
            predict_makespan(&graph, &state.schedule, cost)?.makespan(),
            Some(ooo_verify::mem::schedule_peak(
                &graph,
                &state.schedule,
                cost,
            )?),
        ),
    };
    Ok(TunedPipeline {
        graph: graph.clone(),
        schedule: state.schedule,
        group: state.group,
        baseline: base_raw,
        predicted,
        peak,
        moves,
        restarts_adopted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify_schedule;
    use ooo_core::cost::UnitCost;

    #[test]
    fn gpipe_schedule_is_improvable_by_dw_moves() {
        // GPipe computes dW eagerly inside the backward chain; deferring
        // the [dW, U] blocks (gradient fast-forwarding) shortens the
        // critical path.
        let tuned =
            tune_pipeline(8, 4, Strategy::GPipe, 1, &UnitCost, &TuneOptions::default()).unwrap();
        assert!(
            tuned.improved(),
            "GPipe's eager dW blocks must be hoistable"
        );
        let certified = certify_schedule(&tuned.graph, &tuned.schedule, &UnitCost).unwrap();
        assert_eq!(certified, tuned.predicted);
    }

    #[test]
    fn ooo_pipe2_is_already_near_optimal() {
        let tuned = tune_pipeline(
            8,
            4,
            Strategy::OooPipe2,
            1,
            &UnitCost,
            &TuneOptions::default(),
        )
        .unwrap();
        assert!(tuned.predicted <= tuned.baseline);
        certify_schedule(&tuned.graph, &tuned.schedule, &UnitCost).unwrap();
    }
}
