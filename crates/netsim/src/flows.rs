//! Max-min fair bandwidth sharing for concurrent flows.
//!
//! The point-to-point models elsewhere treat each transfer as owning its
//! link; when several transfers share a NIC (e.g. modulo allocation
//! crossing many node boundaries at once), their rates couple. This
//! module computes completion times for a set of flows over shared links
//! under progressive-filling max-min fairness — the standard first-order
//! model of TCP sharing.

use crate::SimTime;
use std::collections::HashMap;

/// One flow: `bytes` from `src` link to `dst` link (a flow consumes
/// capacity on both; pass the same id twice for a single-resource flow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Caller-chosen identifier.
    pub id: usize,
    /// Egress resource id.
    pub src: usize,
    /// Ingress resource id.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Earliest start time (ns).
    pub ready_ns: SimTime,
}

/// Per-resource capacity in bytes/second.
pub type Capacities = HashMap<usize, f64>;

/// Progressive filling at one instant: assigns each active flow its
/// max-min fair rate given the resource capacities. Returns rates in
/// bytes/sec, indexed like `flows`.
pub(crate) fn max_min_rates(flows: &[(usize, usize)], capacities: &Capacities) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut remaining: Capacities = capacities.clone();
    loop {
        // Active flows per resource.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for (i, &(s, d)) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            *counts.entry(s).or_insert(0) += 1;
            if d != s {
                *counts.entry(d).or_insert(0) += 1;
            }
        }
        if counts.is_empty() {
            break;
        }
        // The bottleneck resource: smallest fair share.
        let (&bottleneck, _) = counts
            .iter()
            .min_by(|a, b| {
                let fa = remaining.get(a.0).copied().unwrap_or(0.0) / *a.1 as f64;
                let fb = remaining.get(b.0).copied().unwrap_or(0.0) / *b.1 as f64;
                fa.partial_cmp(&fb).expect("finite capacities")
            })
            .expect("non-empty counts");
        let share = remaining.get(&bottleneck).copied().unwrap_or(0.0) / counts[&bottleneck] as f64;
        // Freeze every flow crossing the bottleneck at the fair share and
        // charge the other resources.
        for (i, &(s, d)) in flows.iter().enumerate() {
            if frozen[i] || (s != bottleneck && d != bottleneck) {
                continue;
            }
            rates[i] = share;
            frozen[i] = true;
            for r in [s, d] {
                if let Some(c) = remaining.get_mut(&r) {
                    *c = (*c - share).max(0.0);
                }
            }
            // Avoid double-charging single-resource flows.
            if s == d {
                if let Some(c) = remaining.get_mut(&s) {
                    *c += share;
                }
            }
        }
    }
    rates
}

/// Simulates the flow set to completion, re-solving the max-min rates at
/// every arrival/completion event. Returns `(id, finish_ns)` pairs sorted
/// by finish time.
pub fn simulate_flows(flows: &[Flow], capacities: &Capacities) -> Vec<(usize, SimTime)> {
    #[derive(Clone)]
    struct Live {
        flow: Flow,
        remaining: f64,
    }
    // Arrivals sorted once; `cursor` walks them instead of shifting a
    // `pending` Vec with `remove(0)` (which was O(n²) over the flow set).
    let mut arrivals: Vec<Flow> = flows.to_vec();
    arrivals.sort_by_key(|f| f.ready_ns);
    let mut cursor = 0usize;
    let mut live: Vec<Live> = Vec::new();
    let mut done: Vec<(usize, SimTime)> = Vec::new();
    let mut now: SimTime = 0;

    while cursor < arrivals.len() || !live.is_empty() {
        // Admit flows that are ready.
        if live.is_empty() {
            if let Some(f) = arrivals.get(cursor) {
                now = now.max(f.ready_ns);
            }
        }
        while arrivals.get(cursor).is_some_and(|f| f.ready_ns <= now) {
            let f = arrivals[cursor];
            cursor += 1;
            live.push(Live {
                flow: f,
                remaining: f.bytes.max(1) as f64,
            });
        }
        // Current rates.
        let pairs: Vec<(usize, usize)> = live.iter().map(|l| (l.flow.src, l.flow.dst)).collect();
        let rates = max_min_rates(&pairs, capacities);
        // Time to the next event (in ns): first completion or next
        // arrival. Rates are bytes/second, remaining is bytes.
        let mut dt_ns_f = f64::INFINITY;
        for (l, &r) in live.iter().zip(&rates) {
            if r > 0.0 {
                dt_ns_f = dt_ns_f.min(l.remaining / r * 1e9);
            }
        }
        if let Some(f) = arrivals.get(cursor) {
            dt_ns_f = dt_ns_f.min((f.ready_ns - now) as f64);
        }
        if !dt_ns_f.is_finite() {
            // No capacity at all: flows can never finish.
            for l in live {
                done.push((l.flow.id, SimTime::MAX));
            }
            break;
        }
        let dt_ns = dt_ns_f.ceil().max(1.0) as SimTime;
        // Advance (rates are bytes/sec; dt in ns).
        for (l, &r) in live.iter_mut().zip(&rates) {
            l.remaining -= r * dt_ns as f64 / 1e9;
        }
        now += dt_ns;
        let mut i = 0;
        while i < live.len() {
            if live[i].remaining <= 1e-6 {
                done.push((live[i].flow.id, now));
                live.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    done.sort_by_key(|&(_, t)| t);
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(entries: &[(usize, f64)]) -> Capacities {
        entries.iter().copied().collect()
    }

    #[test]
    fn single_flow_full_rate() {
        // 1 GB over a 1 GB/s link: one second.
        let flows = [Flow {
            id: 0,
            src: 0,
            dst: 1,
            bytes: 1_000_000_000,
            ready_ns: 0,
        }];
        let done = simulate_flows(&flows, &caps(&[(0, 1e9), (1, 1e9)]));
        assert_eq!(done.len(), 1);
        let t = done[0].1;
        assert!((999_000_000..1_010_000_000).contains(&t), "finish {t}");
    }

    #[test]
    fn two_flows_share_fairly() {
        // Two equal flows over the same egress: each gets half the rate,
        // both finish together at ~2x the solo time.
        let flows = [
            Flow {
                id: 0,
                src: 0,
                dst: 1,
                bytes: 500_000_000,
                ready_ns: 0,
            },
            Flow {
                id: 1,
                src: 0,
                dst: 2,
                bytes: 500_000_000,
                ready_ns: 0,
            },
        ];
        let done = simulate_flows(&flows, &caps(&[(0, 1e9), (1, 1e9), (2, 1e9)]));
        for &(_, t) in &done {
            assert!((990_000_000..1_020_000_000).contains(&t), "finish {t}");
        }
    }

    #[test]
    fn uncontended_flow_unaffected() {
        // Flow 1 shares no resource with flow 0: full rate for both.
        let flows = [
            Flow {
                id: 0,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                ready_ns: 0,
            },
            Flow {
                id: 1,
                src: 2,
                dst: 3,
                bytes: 1_000_000,
                ready_ns: 0,
            },
        ];
        let done = simulate_flows(&flows, &caps(&[(0, 1e9), (1, 1e9), (2, 1e9), (3, 1e9)]));
        for &(_, t) in &done {
            assert!(t <= 1_100_000, "finish {t}");
        }
    }

    #[test]
    fn late_arrival_speeds_up_after_first_completes() {
        // Flow 0 alone for the first half, then shares with flow 1.
        let flows = [
            Flow {
                id: 0,
                src: 0,
                dst: 1,
                bytes: 1_000_000_000,
                ready_ns: 0,
            },
            Flow {
                id: 1,
                src: 0,
                dst: 2,
                bytes: 100_000_000,
                ready_ns: 900_000_000,
            },
        ];
        let done = simulate_flows(&flows, &caps(&[(0, 1e9), (1, 1e9), (2, 1e9)]));
        let f0 = done.iter().find(|&&(id, _)| id == 0).unwrap().1;
        // Without contention flow 0 would finish at 1 s; sharing the last
        // 100 ms slows it slightly.
        assert!(f0 > 1_000_000_000, "finish {f0}");
        assert!(f0 < 1_250_000_000, "finish {f0}");
    }

    #[test]
    fn asymmetric_capacities_bottleneck_on_the_smaller() {
        // Egress 10x faster than ingress: the ingress bounds the rate.
        let flows = [Flow {
            id: 0,
            src: 0,
            dst: 1,
            bytes: 1_000_000_000,
            ready_ns: 0,
        }];
        let done = simulate_flows(&flows, &caps(&[(0, 10e9), (1, 1e9)]));
        let t = done[0].1;
        assert!((990_000_000..1_020_000_000).contains(&t), "finish {t}");
    }

    #[test]
    fn ten_thousand_flows_fast_and_unchanged() {
        // 10k staggered flows across a handful of shared links. The cursor
        // rewrite must finish well inside a wall-clock budget and produce
        // byte-identical `(id, finish_ns)` pairs to the old remove(0) loop.
        let mut flows = Vec::with_capacity(10_000);
        for i in 0..10_000usize {
            flows.push(Flow {
                id: i,
                src: i % 8,
                dst: 8 + (i % 4),
                bytes: 1_000_000 + (i as u64 % 97) * 10_000,
                ready_ns: (i as SimTime) * 2_000_000,
            });
        }
        let mut capacities = Capacities::new();
        for r in 0..12 {
            capacities.insert(r, 4e9);
        }
        let start = std::time::Instant::now();
        let fast = simulate_flows(&flows, &capacities);
        let elapsed = start.elapsed();
        assert_eq!(fast.len(), 10_000);
        assert!(
            elapsed < std::time::Duration::from_secs(30),
            "10k flows took {elapsed:?}"
        );
        let naive = crate::reference::simulate_flows_naive(&flows, &capacities);
        assert_eq!(fast, naive, "cursor rewrite changed flow completions");
    }

    #[test]
    fn zero_capacity_reports_never() {
        let flows = [Flow {
            id: 0,
            src: 0,
            dst: 0,
            bytes: 10,
            ready_ns: 0,
        }];
        let done = simulate_flows(&flows, &caps(&[(0, 0.0)]));
        assert_eq!(done[0].1, SimTime::MAX);
    }
}
