//! Synchronization-cost models for the communication systems the paper
//! compares: BytePS-style parameter servers and Horovod-style ring
//! all-reduce.
//!
//! The models capture the first-order structure:
//!
//! - **BytePS** aggregates on CPU servers; with enough server bandwidth a
//!   worker's synchronization time for a tensor is one push plus one pull
//!   over its own bottleneck link (the architecture's claimed optimality),
//!   plus a small per-tensor coordination overhead.
//! - **Horovod** runs a ring all-reduce: `2(n-1)/n` of the tensor bytes
//!   cross the *slowest* link on the ring, with per-tensor negotiation
//!   overhead and no priority scheduling — which is why the paper measures
//!   it far behind BytePS on Ethernet clusters.

use crate::topology::ClusterTopology;
use crate::{Error, Result, SimTime};

/// Per-tensor coordination overhead of BytePS (scheduler + RDMA/TCP
/// bookkeeping).
pub const BYTEPS_TENSOR_OVERHEAD_NS: SimTime = 80_000;
/// Per-tensor negotiation overhead of Horovod (its background
/// coordination protocol).
pub const HOROVOD_TENSOR_OVERHEAD_NS: SimTime = 250_000;

/// The bottleneck link bandwidth (bytes/sec) a worker sees for parameter
/// traffic on `gpus` GPUs of `topology`: the fast intra-node link while
/// the job fits in one node, the inter-node NIC otherwise — shared by the
/// node's GPUs.
pub fn worker_bottleneck_bytes_per_sec(topology: &ClusterTopology, gpus: usize) -> f64 {
    if topology.single_node(gpus) {
        topology.intra.bytes_per_sec
    } else {
        // All GPUs of a node share its NIC for inter-node traffic.
        topology.inter.bytes_per_sec / topology.gpus_per_node as f64
    }
}

/// Checked variant of [`worker_bottleneck_bytes_per_sec`].
///
/// # Errors
///
/// Returns [`Error::NoWorkers`] for a zero-GPU job or a topology with
/// zero GPUs per node (the unchecked version would divide by zero), and
/// [`Error::DeadLink`] when the bottleneck link carries no bandwidth.
pub fn try_worker_bottleneck_bytes_per_sec(topology: &ClusterTopology, gpus: usize) -> Result<f64> {
    if gpus == 0 || topology.gpus_per_node == 0 {
        return Err(Error::NoWorkers);
    }
    let link = if topology.single_node(gpus) {
        &topology.intra
    } else {
        &topology.inter
    };
    if link.is_dead() {
        return Err(Error::DeadLink {
            link: link.name.to_string(),
            bytes_per_sec: link.bytes_per_sec,
        });
    }
    Ok(worker_bottleneck_bytes_per_sec(topology, gpus))
}

/// BytePS synchronization time for one tensor of `bytes` on `gpus` GPUs:
/// push + pull over the worker bottleneck link, plus coordination
/// overhead. Single-GPU jobs synchronize nothing.
pub fn byteps_sync_ns(topology: &ClusterTopology, gpus: usize, bytes: u64) -> SimTime {
    if gpus <= 1 {
        return 0;
    }
    let bw = worker_bottleneck_bytes_per_sec(topology, gpus);
    let wire = (2.0 * bytes as f64 / bw * 1e9) as SimTime;
    wire + BYTEPS_TENSOR_OVERHEAD_NS
}

/// Horovod ring all-reduce time for one tensor of `bytes` on `gpus` GPUs.
pub fn horovod_sync_ns(topology: &ClusterTopology, gpus: usize, bytes: u64) -> SimTime {
    if gpus <= 1 {
        return 0;
    }
    let n = gpus as f64;
    let bw = if topology.single_node(gpus) {
        topology.intra.bytes_per_sec
    } else {
        // The ring crosses node boundaries; the slowest hop dominates and
        // every node's NIC carries the traffic of its resident GPUs.
        topology.inter.bytes_per_sec / topology.gpus_per_node as f64
    };
    let wire = (2.0 * (n - 1.0) / n * bytes as f64 / bw * 1e9) as SimTime;
    wire + HOROVOD_TENSOR_OVERHEAD_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_needs_no_sync() {
        let c = ClusterTopology::pub_a();
        assert_eq!(byteps_sync_ns(&c, 1, 1 << 20), 0);
        assert_eq!(horovod_sync_ns(&c, 1, 1 << 20), 0);
    }

    #[test]
    fn byteps_beats_horovod_per_tensor() {
        let c = ClusterTopology::priv_b();
        let bytes = 4 << 20; // 4 MB gradient
        assert!(byteps_sync_ns(&c, 20, bytes) < horovod_sync_ns(&c, 20, bytes));
    }

    #[test]
    fn intra_node_jobs_use_fast_link() {
        let c = ClusterTopology::pub_b(); // 8 GPUs/node, NVLink
        let small = byteps_sync_ns(&c, 8, 64 << 20);
        let large = byteps_sync_ns(&c, 16, 64 << 20);
        // Crossing nodes over 25 GbE is far slower than NVLink.
        assert!(large > 10 * small, "{large} vs {small}");
    }

    #[test]
    fn sync_time_scales_with_bytes() {
        let c = ClusterTopology::priv_a();
        let a = byteps_sync_ns(&c, 8, 1 << 20);
        let b = byteps_sync_ns(&c, 8, 8 << 20);
        assert!(b > 4 * (a - BYTEPS_TENSOR_OVERHEAD_NS));
    }

    #[test]
    fn zero_workers_is_an_error_not_a_division_by_zero() {
        let c = ClusterTopology::pub_a();
        assert_eq!(
            try_worker_bottleneck_bytes_per_sec(&c, 0),
            Err(Error::NoWorkers)
        );
        let mut broken = ClusterTopology::priv_a();
        broken.gpus_per_node = 0;
        assert_eq!(
            try_worker_bottleneck_bytes_per_sec(&broken, 8),
            Err(Error::NoWorkers)
        );
    }

    #[test]
    fn dead_bottleneck_link_reported() {
        let mut c = ClusterTopology::priv_a();
        c.inter.bytes_per_sec = 0.0;
        // 8 GPUs on 1-GPU nodes cross the (dead) inter-node network.
        assert!(matches!(
            try_worker_bottleneck_bytes_per_sec(&c, 8),
            Err(Error::DeadLink { .. })
        ));
        // A single-node slice never touches the NIC, so it stays healthy.
        let ok = try_worker_bottleneck_bytes_per_sec(&c, 1).unwrap();
        assert_eq!(ok, c.intra.bytes_per_sec);
    }

    #[test]
    fn checked_and_unchecked_agree_on_live_links() {
        for c in [
            ClusterTopology::priv_a(),
            ClusterTopology::priv_b(),
            ClusterTopology::pub_a(),
            ClusterTopology::pub_b(),
        ] {
            for gpus in [1, 4, 16] {
                assert_eq!(
                    try_worker_bottleneck_bytes_per_sec(&c, gpus).unwrap(),
                    worker_bottleneck_bytes_per_sec(&c, gpus)
                );
            }
        }
    }

    #[test]
    fn ring_factor_approaches_two() {
        let c = ClusterTopology::priv_b();
        let few = horovod_sync_ns(&c, 2, 1 << 24);
        let many = horovod_sync_ns(&c, 20, 1 << 24);
        // 2(n-1)/n grows from 1.0 toward 2.0.
        assert!(many > few);
        assert!(many < 2 * few);
    }
}

/// An all-reduce algorithm choice with a first-order cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// Flat ring across all GPUs (Horovod's default).
    Ring,
    /// Recursive halving/doubling tree: `2 log2(n)` steps of `bytes/2^i`.
    Tree,
    /// Hierarchical: intra-node ring first, one inter-node ring between
    /// node leaders, then intra-node broadcast — the standard layout for
    /// NVLink islands behind slow NICs.
    Hierarchical,
}

/// All-reduce time for `bytes` on `gpus` GPUs of `topology` under the
/// given algorithm. Single-GPU jobs cost nothing.
pub fn allreduce_ns(
    topology: &ClusterTopology,
    gpus: usize,
    bytes: u64,
    algo: AllReduceAlgo,
) -> SimTime {
    if gpus <= 1 {
        return 0;
    }
    let n = gpus as f64;
    let intra_bw = topology.intra.bytes_per_sec;
    let inter_share = topology.inter.bytes_per_sec / topology.gpus_per_node as f64;
    match algo {
        AllReduceAlgo::Ring => horovod_sync_ns(topology, gpus, bytes),
        AllReduceAlgo::Tree => {
            let bw = if topology.single_node(gpus) {
                intra_bw
            } else {
                inter_share
            };
            let steps = (n.log2().ceil()) as u32;
            // Halving + doubling: 2 * sum_i bytes/2^i ~ 2 * bytes wire
            // volume, but in log(n) latency rounds.
            let wire = (2.0 * bytes as f64 / bw * 1e9) as SimTime;
            wire + 2 * steps as SimTime * topology.inter.latency_ns
        }
        AllReduceAlgo::Hierarchical => {
            if topology.single_node(gpus) {
                return allreduce_ns(topology, gpus, bytes, AllReduceAlgo::Ring);
            }
            let local = topology.gpus_per_node as f64;
            let nodes = (n / local).ceil();
            // Intra-node reduce + broadcast on the fast link.
            let intra = (2.0 * (local - 1.0) / local * bytes as f64 / intra_bw * 1e9) as SimTime;
            // One copy per node on the full NIC (leaders only).
            let inter = (2.0 * (nodes - 1.0) / nodes * bytes as f64 / topology.inter.bytes_per_sec
                * 1e9) as SimTime;
            intra + inter + 2 * topology.inter.latency_ns
        }
    }
}

#[cfg(test)]
mod algo_tests {
    use super::*;

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        // NVLink islands behind slow NICs: the flat ring drags all
        // traffic through the NIC share; the hierarchy sends one copy per
        // node.
        let c = ClusterTopology::pub_a(); // 4 GPUs/node, NVLink + 10GbE
        let bytes = 64 << 20;
        let ring = allreduce_ns(&c, 16, bytes, AllReduceAlgo::Ring);
        let hier = allreduce_ns(&c, 16, bytes, AllReduceAlgo::Hierarchical);
        assert!(hier < ring, "hier {hier} vs ring {ring}");
    }

    #[test]
    fn hierarchical_degenerates_to_ring_in_one_node() {
        let c = ClusterTopology::pub_b();
        let bytes = 8 << 20;
        assert_eq!(
            allreduce_ns(&c, 8, bytes, AllReduceAlgo::Hierarchical),
            allreduce_ns(&c, 8, bytes, AllReduceAlgo::Ring)
        );
    }

    #[test]
    fn tree_pays_log_latency_rounds() {
        let c = ClusterTopology::priv_b();
        let small = 1_000; // latency-dominated
        let t4 = allreduce_ns(&c, 4, small, AllReduceAlgo::Tree);
        let t16 = allreduce_ns(&c, 16, small, AllReduceAlgo::Tree);
        assert!(t16 > t4, "t16 {t16} vs t4 {t4}");
    }

    #[test]
    fn single_gpu_costs_nothing() {
        let c = ClusterTopology::priv_a();
        for algo in [
            AllReduceAlgo::Ring,
            AllReduceAlgo::Tree,
            AllReduceAlgo::Hierarchical,
        ] {
            assert_eq!(allreduce_ns(&c, 1, 1 << 20, algo), 0);
        }
    }

    #[test]
    fn degraded_inter_link_strictly_increases_allreduce() {
        let healthy = ClusterTopology::priv_b();
        let degraded = healthy.degrade_inter(3.0);
        let bytes = 16 << 20;
        for algo in [
            AllReduceAlgo::Ring,
            AllReduceAlgo::Tree,
            AllReduceAlgo::Hierarchical,
        ] {
            let h = allreduce_ns(&healthy, 20, bytes, algo);
            let d = allreduce_ns(&degraded, 20, bytes, algo);
            assert!(d > h, "{algo:?}: degraded {d} not above healthy {h}");
        }
    }
}
