//! # ooo-netsim — interconnects and parameter communication
//!
//! Models the communication substrate of the paper's multi-GPU
//! experiments:
//!
//! - [`link`] — link specifications (NVLink, PCIe 3.0, 10/20/25 Gb
//!   Ethernet) with bandwidth/latency transfer costs;
//! - [`topology`] — the four evaluated clusters (Table 2): Priv-A
//!   (8× Titan XP, PCIe + 10 GbE), Priv-B (20× P100, PCIe + 20 GbE),
//!   Pub-A (48× V100, NVLink + 10 GbE), Pub-B (40× V100, NVLink +
//!   25 GbE);
//! - [`commsim`] — a chunk-preemptive priority transmission queue, the
//!   ByteScheduler/BytePS mechanism that lets a late-arriving
//!   high-priority tensor overtake bulk traffic;
//! - [`collective`] — synchronization-cost models for BytePS-style
//!   parameter servers and Horovod-style ring all-reduce.

#![warn(missing_docs)]

pub mod collective;
pub mod commsim;
pub mod flows;
pub mod link;
#[doc(hidden)]
pub mod reference;
pub mod topology;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Errors from the communication models under degraded conditions.
///
/// The happy-path helpers (`transfer_ns`, `worker_bottleneck_bytes_per_sec`)
/// assume live links and non-empty jobs; their `try_` counterparts return
/// these errors instead of saturating or dividing by zero when fault
/// injection drives a parameter to a degenerate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A link has zero (or non-finite) usable bandwidth: no transfer can
    /// ever complete over it.
    DeadLink {
        /// Link name.
        link: String,
        /// The offending bandwidth value.
        bytes_per_sec: f64,
    },
    /// A communication step was requested for a job with no workers (zero
    /// GPUs, or a topology with zero GPUs per node).
    NoWorkers,
    /// A completion lookup referenced a request id the queue never saw.
    UnknownRequest(usize),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DeadLink {
                link,
                bytes_per_sec,
            } => {
                write!(f, "link {link:?} is dead: bandwidth {bytes_per_sec} B/s")
            }
            Error::NoWorkers => write!(f, "communication step requested with zero workers"),
            Error::UnknownRequest(id) => {
                write!(f, "request id {id} was never submitted to the queue")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
