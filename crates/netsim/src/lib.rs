//! # ooo-netsim — interconnects and parameter communication
//!
//! Models the communication substrate of the paper's multi-GPU
//! experiments:
//!
//! - [`link`] — link specifications (NVLink, PCIe 3.0, 10/20/25 Gb
//!   Ethernet) with bandwidth/latency transfer costs;
//! - [`topology`] — the four evaluated clusters (Table 2): Priv-A
//!   (8× Titan XP, PCIe + 10 GbE), Priv-B (20× P100, PCIe + 20 GbE),
//!   Pub-A (48× V100, NVLink + 10 GbE), Pub-B (40× V100, NVLink +
//!   25 GbE);
//! - [`commsim`] — a chunk-preemptive priority transmission queue, the
//!   ByteScheduler/BytePS mechanism that lets a late-arriving
//!   high-priority tensor overtake bulk traffic;
//! - [`collective`] — synchronization-cost models for BytePS-style
//!   parameter servers and Horovod-style ring all-reduce.

#![warn(missing_docs)]

pub mod collective;
pub mod commsim;
pub mod flows;
pub mod link;
pub mod topology;

/// Simulated time in nanoseconds.
pub type SimTime = u64;
