//! Cluster topologies (the paper's Table 2).

use crate::link::LinkSpec;

/// A homogeneous GPU cluster: `nodes` machines with `gpus_per_node` GPUs
/// each, a fast intra-node link, and a slower inter-node network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    /// Cluster name.
    pub name: &'static str,
    /// Number of machines.
    pub nodes: usize,
    /// GPUs per machine.
    pub gpus_per_node: usize,
    /// GPU-to-GPU link within a node.
    pub intra: LinkSpec,
    /// Node-to-node network link (per NIC).
    pub inter: LinkSpec,
}

impl ClusterTopology {
    /// Priv-A: 8 machines x 1 Titan XP, PCIe + 10 GbE.
    pub fn priv_a() -> Self {
        ClusterTopology {
            name: "Priv-A",
            nodes: 8,
            gpus_per_node: 1,
            intra: LinkSpec::pcie3(),
            inter: LinkSpec::ethernet_10g(),
        }
    }

    /// Priv-B: 20 machines x 1 P100, PCIe + 20 GbE.
    pub fn priv_b() -> Self {
        ClusterTopology {
            name: "Priv-B",
            nodes: 20,
            gpus_per_node: 1,
            intra: LinkSpec::pcie3(),
            inter: LinkSpec::ethernet_20g(),
        }
    }

    /// Pub-A: 12 x p3.8xlarge (4 V100 each), NVLink + 10 GbE.
    pub fn pub_a() -> Self {
        ClusterTopology {
            name: "Pub-A",
            nodes: 12,
            gpus_per_node: 4,
            intra: LinkSpec::nvlink(),
            inter: LinkSpec::ethernet_10g(),
        }
    }

    /// Pub-B: 5 x p3.16xlarge (8 V100 each), NVLink + 25 GbE.
    pub fn pub_b() -> Self {
        ClusterTopology {
            name: "Pub-B",
            nodes: 5,
            gpus_per_node: 8,
            intra: LinkSpec::nvlink(),
            inter: LinkSpec::ethernet_25g(),
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node index of a global GPU rank.
    pub fn node_of(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_node
    }

    /// The link connecting two GPU ranks: the intra-node link when they
    /// share a machine, the inter-node network otherwise.
    pub fn link_between(&self, a: usize, b: usize) -> &LinkSpec {
        if self.node_of(a) == self.node_of(b) {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// A copy restricted to the first `gpus` GPUs (for scaling sweeps).
    /// GPUs fill nodes in rank order.
    pub fn with_gpus(&self, gpus: usize) -> Self {
        let nodes = gpus.div_ceil(self.gpus_per_node).max(1);
        ClusterTopology {
            nodes,
            ..self.clone()
        }
    }

    /// Whether a `gpus`-GPU job fits entirely inside one node (all links
    /// are then the fast intra-node link).
    pub fn single_node(&self, gpus: usize) -> bool {
        gpus <= self.gpus_per_node
    }

    /// A copy with the inter-node network degraded by `factor` (see
    /// [`LinkSpec::degraded`]) — the topology-level entry point for link
    /// fault injection.
    pub fn degrade_inter(&self, factor: f64) -> Self {
        ClusterTopology {
            inter: self.inter.degraded(factor),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sizes() {
        assert_eq!(ClusterTopology::priv_a().total_gpus(), 8);
        assert_eq!(ClusterTopology::priv_b().total_gpus(), 20);
        assert_eq!(ClusterTopology::pub_a().total_gpus(), 48);
        assert_eq!(ClusterTopology::pub_b().total_gpus(), 40);
    }

    #[test]
    fn link_selection() {
        let c = ClusterTopology::pub_a();
        // GPUs 0-3 share node 0.
        assert_eq!(c.link_between(0, 3).name, "NVLink");
        assert_eq!(c.link_between(0, 4).name, "10GbE");
        assert_eq!(c.node_of(7), 1);
    }

    #[test]
    fn scaling_subsets() {
        let c = ClusterTopology::pub_b().with_gpus(16);
        assert_eq!(c.nodes, 2);
        assert!(ClusterTopology::pub_b().single_node(8));
        assert!(!ClusterTopology::pub_b().single_node(9));
    }
}
