//! Link specifications.

use crate::{Error, Result, SimTime};

/// Bandwidth (bytes/sec) below which a link is considered dead: no
/// gradient tensor could cross it within a training run's lifetime.
pub const MIN_LIVE_BYTES_PER_SEC: f64 = 1e-3;

/// A point-to-point (or NIC) link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Link name.
    pub name: &'static str,
    /// Usable bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Per-message latency in nanoseconds.
    pub latency_ns: SimTime,
}

impl LinkSpec {
    /// NVLink (the paper cites 50 GB/s for its V100 setup).
    pub fn nvlink() -> Self {
        LinkSpec {
            name: "NVLink",
            bytes_per_sec: 50e9,
            latency_ns: 2_000,
        }
    }

    /// PCIe 3.0 x16 (16 GB/s).
    pub fn pcie3() -> Self {
        LinkSpec {
            name: "PCIe3",
            bytes_per_sec: 16e9,
            latency_ns: 3_000,
        }
    }

    /// 10 Gb Ethernet (1.25 GB/s nominal).
    pub fn ethernet_10g() -> Self {
        LinkSpec {
            name: "10GbE",
            bytes_per_sec: 1.25e9,
            latency_ns: 30_000,
        }
    }

    /// 20 Gb Ethernet.
    pub fn ethernet_20g() -> Self {
        LinkSpec {
            name: "20GbE",
            bytes_per_sec: 2.5e9,
            latency_ns: 30_000,
        }
    }

    /// 25 Gb Ethernet.
    pub fn ethernet_25g() -> Self {
        LinkSpec {
            name: "25GbE",
            bytes_per_sec: 3.125e9,
            latency_ns: 25_000,
        }
    }

    /// Whether the link can make progress at all (see
    /// [`MIN_LIVE_BYTES_PER_SEC`]).
    pub fn is_dead(&self) -> bool {
        !self.bytes_per_sec.is_finite() || self.bytes_per_sec < MIN_LIVE_BYTES_PER_SEC
    }

    /// Time to move `bytes` over this link, including latency.
    ///
    /// On a dead link (zero/near-zero or non-finite bandwidth, as fault
    /// injection can produce) this saturates to [`SimTime::MAX`] instead
    /// of overflowing; use [`LinkSpec::try_transfer_ns`] to surface the
    /// condition as an error.
    pub fn transfer_ns(&self, bytes: u64) -> SimTime {
        self.try_transfer_ns(bytes).unwrap_or(SimTime::MAX)
    }

    /// Checked transfer time: like [`LinkSpec::transfer_ns`], but a dead
    /// link is reported instead of saturating silently.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DeadLink`] when the bandwidth is zero, near-zero,
    /// or non-finite.
    pub fn try_transfer_ns(&self, bytes: u64) -> Result<SimTime> {
        if self.is_dead() {
            return Err(Error::DeadLink {
                link: self.name.to_string(),
                bytes_per_sec: self.bytes_per_sec,
            });
        }
        let wire = bytes as f64 / self.bytes_per_sec * 1e9;
        Ok(self.latency_ns.saturating_add(wire as SimTime))
    }

    /// A degraded copy of this link (for failure/straggler injection):
    /// bandwidth divided by `factor`.
    pub fn degraded(&self, factor: f64) -> Self {
        LinkSpec {
            name: self.name,
            bytes_per_sec: self.bytes_per_sec / factor.max(1.0),
            latency_ns: self.latency_ns,
        }
    }
}

/// A full-duplex link whose two directions may have different
/// specifications — the asymmetric-bandwidth case (consumer uplinks,
/// oversubscribed spine ports, PCIe switch contention) that symmetric
/// [`LinkSpec`]s cannot express. Data-parallel parameter traffic maps
/// onto it as *push* (worker → aggregator, the uplink) and *pull*
/// (aggregator → worker, the downlink).
#[derive(Debug, Clone, PartialEq)]
pub struct DuplexLink {
    /// Worker → aggregator direction (gradient push).
    pub up: LinkSpec,
    /// Aggregator → worker direction (parameter pull).
    pub down: LinkSpec,
}

impl DuplexLink {
    /// A symmetric duplex link: both directions share `spec`.
    pub fn symmetric(spec: LinkSpec) -> Self {
        DuplexLink {
            up: spec.clone(),
            down: spec,
        }
    }

    /// An asymmetric duplex link.
    pub fn asymmetric(up: LinkSpec, down: LinkSpec) -> Self {
        DuplexLink { up, down }
    }

    /// Whether both directions have identical specifications — the case
    /// that must reproduce the single-`LinkSpec` code paths exactly.
    pub fn is_symmetric(&self) -> bool {
        self.up == self.down
    }

    /// Push-direction transfer time.
    pub fn push_ns(&self, bytes: u64) -> SimTime {
        self.up.transfer_ns(bytes)
    }

    /// Pull-direction transfer time.
    pub fn pull_ns(&self, bytes: u64) -> SimTime {
        self.down.transfer_ns(bytes)
    }

    /// Wire time of one parameter synchronization: the gradient pushed
    /// up plus the averaged parameters pulled down. On a symmetric link
    /// this equals `transfer_ns(2 * bytes)` up to the second latency
    /// charge (each direction pays its own message latency).
    pub fn sync_ns(&self, bytes: u64) -> SimTime {
        self.push_ns(bytes).saturating_add(self.pull_ns(bytes))
    }

    /// The slower direction — the bandwidth bottleneck of the duplex
    /// pair.
    pub fn bottleneck(&self) -> &LinkSpec {
        if self.up.bytes_per_sec <= self.down.bytes_per_sec {
            &self.up
        } else {
            &self.down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_symmetric_reproduces_both_directions() {
        let d = DuplexLink::symmetric(LinkSpec::nvlink());
        assert!(d.is_symmetric());
        assert_eq!(d.push_ns(1 << 20), d.pull_ns(1 << 20));
        assert_eq!(
            d.sync_ns(1 << 20),
            2 * LinkSpec::nvlink().transfer_ns(1 << 20)
        );
    }

    #[test]
    fn duplex_asymmetric_bottleneck_is_the_slow_direction() {
        let d = DuplexLink::asymmetric(LinkSpec::ethernet_10g(), LinkSpec::ethernet_25g());
        assert!(!d.is_symmetric());
        assert_eq!(d.bottleneck().name, "10GbE");
        assert!(d.push_ns(1 << 24) > d.pull_ns(1 << 24));
        assert_eq!(d.sync_ns(5), d.push_ns(5) + d.pull_ns(5));
    }

    #[test]
    fn bandwidth_ordering_matches_hardware() {
        let n = LinkSpec::nvlink();
        let p = LinkSpec::pcie3();
        let e = LinkSpec::ethernet_10g();
        assert!(n.bytes_per_sec > p.bytes_per_sec);
        assert!(p.bytes_per_sec > e.bytes_per_sec);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let l = LinkSpec {
            name: "t",
            bytes_per_sec: 1e9,
            latency_ns: 100,
        };
        assert_eq!(l.transfer_ns(0), 100);
        assert_eq!(l.transfer_ns(1_000_000), 100 + 1_000_000);
        // 1 GB over 1 GB/s = 1 s.
        assert_eq!(l.transfer_ns(1_000_000_000), 100 + 1_000_000_000);
    }

    #[test]
    fn zero_bandwidth_is_an_error_not_a_panic() {
        let l = LinkSpec {
            name: "dead",
            bytes_per_sec: 0.0,
            latency_ns: 2_000,
        };
        assert!(l.is_dead());
        assert_eq!(
            l.try_transfer_ns(1 << 20),
            Err(Error::DeadLink {
                link: "dead".to_string(),
                bytes_per_sec: 0.0,
            })
        );
        // The unchecked path saturates instead of overflowing in debug.
        assert_eq!(l.transfer_ns(1 << 20), SimTime::MAX);
    }

    #[test]
    fn near_zero_and_non_finite_bandwidth_rejected() {
        for bw in [1e-9, f64::NAN, f64::INFINITY, -1.0] {
            let l = LinkSpec {
                name: "odd",
                bytes_per_sec: bw,
                latency_ns: 0,
            };
            assert!(l.try_transfer_ns(1).is_err(), "bw {bw} accepted");
        }
        // A healthy link still reports exact times through the checked path.
        let ok = LinkSpec::pcie3();
        assert_eq!(ok.try_transfer_ns(16_000).unwrap(), ok.transfer_ns(16_000));
    }

    #[test]
    fn degraded_halves_bandwidth() {
        let l = LinkSpec::pcie3().degraded(2.0);
        assert!((l.bytes_per_sec - 8e9).abs() < 1.0);
        // Factor below 1 never *improves* the link.
        let same = LinkSpec::pcie3().degraded(0.5);
        assert_eq!(same.bytes_per_sec, LinkSpec::pcie3().bytes_per_sec);
    }
}
