//! Link specifications.

use crate::SimTime;

/// A point-to-point (or NIC) link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Link name.
    pub name: &'static str,
    /// Usable bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Per-message latency in nanoseconds.
    pub latency_ns: SimTime,
}

impl LinkSpec {
    /// NVLink (the paper cites 50 GB/s for its V100 setup).
    pub fn nvlink() -> Self {
        LinkSpec {
            name: "NVLink",
            bytes_per_sec: 50e9,
            latency_ns: 2_000,
        }
    }

    /// PCIe 3.0 x16 (16 GB/s).
    pub fn pcie3() -> Self {
        LinkSpec {
            name: "PCIe3",
            bytes_per_sec: 16e9,
            latency_ns: 3_000,
        }
    }

    /// 10 Gb Ethernet (1.25 GB/s nominal).
    pub fn ethernet_10g() -> Self {
        LinkSpec {
            name: "10GbE",
            bytes_per_sec: 1.25e9,
            latency_ns: 30_000,
        }
    }

    /// 20 Gb Ethernet.
    pub fn ethernet_20g() -> Self {
        LinkSpec {
            name: "20GbE",
            bytes_per_sec: 2.5e9,
            latency_ns: 30_000,
        }
    }

    /// 25 Gb Ethernet.
    pub fn ethernet_25g() -> Self {
        LinkSpec {
            name: "25GbE",
            bytes_per_sec: 3.125e9,
            latency_ns: 25_000,
        }
    }

    /// Time to move `bytes` over this link, including latency.
    pub fn transfer_ns(&self, bytes: u64) -> SimTime {
        self.latency_ns + (bytes as f64 / self.bytes_per_sec * 1e9) as SimTime
    }

    /// A degraded copy of this link (for failure/straggler injection):
    /// bandwidth divided by `factor`.
    pub fn degraded(&self, factor: f64) -> Self {
        LinkSpec {
            name: self.name,
            bytes_per_sec: self.bytes_per_sec / factor.max(1.0),
            latency_ns: self.latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_hardware() {
        let n = LinkSpec::nvlink();
        let p = LinkSpec::pcie3();
        let e = LinkSpec::ethernet_10g();
        assert!(n.bytes_per_sec > p.bytes_per_sec);
        assert!(p.bytes_per_sec > e.bytes_per_sec);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let l = LinkSpec {
            name: "t",
            bytes_per_sec: 1e9,
            latency_ns: 100,
        };
        assert_eq!(l.transfer_ns(0), 100);
        assert_eq!(l.transfer_ns(1_000_000), 100 + 1_000_000);
        // 1 GB over 1 GB/s = 1 s.
        assert_eq!(l.transfer_ns(1_000_000_000), 100 + 1_000_000_000);
    }

    #[test]
    fn degraded_halves_bandwidth() {
        let l = LinkSpec::pcie3().degraded(2.0);
        assert!((l.bytes_per_sec - 8e9).abs() < 1.0);
        // Factor below 1 never *improves* the link.
        let same = LinkSpec::pcie3().degraded(0.5);
        assert_eq!(same.bytes_per_sec, LinkSpec::pcie3().bytes_per_sec);
    }
}
