//! Frozen pre-refactor implementations, kept verbatim as differential
//! oracles.
//!
//! The event loops in [`crate::flows`] and [`crate::commsim`] were
//! rewritten from O(n²) pending-list scans (`pending.remove(0)`,
//! per-chunk filter-and-min) to a sorted arrival cursor plus a ready
//! heap. The rewrites are proven output-identical by the arguments in
//! their respective modules; this module preserves the *original*
//! algorithms so the conformance suite and the scale benchmark can keep
//! checking (and timing) new against old on arbitrary inputs. Not part
//! of the public API.

use crate::commsim::{CommCompletion, CommRequest, Policy, ServiceInterval};
use crate::flows::{max_min_rates, Capacities, Flow};
use crate::link::LinkSpec;
use crate::SimTime;

/// The pre-cursor [`crate::flows::simulate_flows`]: shifts a `pending`
/// Vec with `remove(0)` per admission — O(n²) element moves over the
/// flow set.
pub fn simulate_flows_naive(flows: &[Flow], capacities: &Capacities) -> Vec<(usize, SimTime)> {
    #[derive(Clone)]
    struct Live {
        flow: Flow,
        remaining: f64,
    }
    let mut pending: Vec<Flow> = flows.to_vec();
    pending.sort_by_key(|f| f.ready_ns);
    let mut live: Vec<Live> = Vec::new();
    let mut done: Vec<(usize, SimTime)> = Vec::new();
    let mut now: SimTime = 0;
    while !pending.is_empty() || !live.is_empty() {
        if live.is_empty() {
            if let Some(f) = pending.first() {
                now = now.max(f.ready_ns);
            }
        }
        while pending.first().is_some_and(|f| f.ready_ns <= now) {
            let f = pending.remove(0);
            live.push(Live {
                flow: f,
                remaining: f.bytes.max(1) as f64,
            });
        }
        let pairs: Vec<(usize, usize)> = live.iter().map(|l| (l.flow.src, l.flow.dst)).collect();
        let rates = max_min_rates(&pairs, capacities);
        let mut dt_ns_f = f64::INFINITY;
        for (l, &r) in live.iter().zip(&rates) {
            if r > 0.0 {
                dt_ns_f = dt_ns_f.min(l.remaining / r * 1e9);
            }
        }
        if let Some(f) = pending.first() {
            dt_ns_f = dt_ns_f.min((f.ready_ns - now) as f64);
        }
        if !dt_ns_f.is_finite() {
            for l in live {
                done.push((l.flow.id, SimTime::MAX));
            }
            break;
        }
        let dt_ns = dt_ns_f.ceil().max(1.0) as SimTime;
        for (l, &r) in live.iter_mut().zip(&rates) {
            l.remaining -= r * dt_ns as f64 / 1e9;
        }
        now += dt_ns;
        let mut i = 0;
        while i < live.len() {
            if live[i].remaining <= 1e-6 {
                done.push((live[i].flow.id, now));
                live.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    done.sort_by_key(|&(_, t)| t);
    done
}

/// The pre-heap [`crate::commsim::simulate_queue_recorded`]: every chunk
/// pick filters the whole pending list and takes a `min_by_key` — O(n)
/// per chunk, O(n²) (or worse, with chunking) per queue.
pub fn simulate_queue_recorded_naive(
    link: &LinkSpec,
    chunk_bytes: u64,
    policy: Policy,
    requests: &[CommRequest],
) -> (Vec<CommCompletion>, Vec<ServiceInterval>) {
    #[derive(Clone)]
    struct Pending {
        req: CommRequest,
        remaining: u64,
        started: Option<SimTime>,
        seq: usize,
    }
    let chunk = chunk_bytes.max(1);
    let mut pending: Vec<Pending> = requests
        .iter()
        .enumerate()
        .map(|(seq, &req)| Pending {
            req,
            remaining: req.bytes.max(1),
            started: None,
            seq,
        })
        .collect();
    let mut done: Vec<CommCompletion> = Vec::with_capacity(pending.len());
    let mut intervals: Vec<ServiceInterval> = Vec::new();
    let mut now: SimTime = 0;

    while !pending.is_empty() {
        let earliest = pending
            .iter()
            .map(|p| p.req.ready_ns)
            .min()
            .expect("non-empty");
        now = now.max(earliest);
        // Pick among ready requests.
        let idx = match policy {
            Policy::Fifo => pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.req.ready_ns <= now)
                .min_by_key(|(_, p)| (p.req.ready_ns, p.seq))
                .map(|(i, _)| i),
            Policy::Priority => pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.req.ready_ns <= now)
                .min_by_key(|(_, p)| (p.req.priority, p.req.ready_ns, p.seq))
                .map(|(i, _)| i),
        };
        let Some(idx) = idx else {
            continue;
        };
        let p = &mut pending[idx];
        let service_start = now;
        if p.started.is_none() {
            p.started = Some(now);
            now += link.latency_ns;
        }
        let send = match policy {
            Policy::Fifo => p.remaining,
            Policy::Priority => p.remaining.min(chunk),
        };
        now += (send as f64 / link.bytes_per_sec * 1e9) as SimTime;
        p.remaining -= send;
        match intervals.last_mut() {
            Some(iv) if iv.id == p.req.id && iv.end_ns == service_start => {
                iv.end_ns = now;
                iv.bytes += send;
            }
            _ => intervals.push(ServiceInterval {
                id: p.req.id,
                start_ns: service_start,
                end_ns: now,
                bytes: send,
            }),
        }
        if p.remaining == 0 {
            let finished = pending.swap_remove(idx);
            done.push(CommCompletion {
                id: finished.req.id,
                start_ns: finished.started.expect("started before finishing"),
                finish_ns: now,
            });
        }
    }
    done.sort_by_key(|c| (c.finish_ns, c.id));
    (done, intervals)
}
