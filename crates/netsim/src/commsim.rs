//! A chunk-preemptive priority transmission queue.
//!
//! BytePS/ByteScheduler partition each gradient tensor into small chunks
//! so that a higher-priority tensor arriving mid-transfer overtakes bulk
//! traffic after at most one chunk. This module simulates a single
//! bottleneck resource (a worker NIC or PCIe lane) serving such chunked
//! requests and is the synchronization backend used by the data-parallel
//! cluster engine.

use crate::link::LinkSpec;
use crate::{Error, Result, SimTime};
use ooo_core::trace::{Lane, Span};

/// Queue service discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Serve whole tensors in arrival order (wait-free backprop without
    /// prioritization).
    Fifo,
    /// Serve chunks, lowest `priority` value first among ready requests
    /// (BytePS-style; layer index is the natural priority).
    Priority,
}

/// One transmission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommRequest {
    /// Caller-chosen identifier (e.g. layer index).
    pub id: usize,
    /// Message size in bytes.
    pub bytes: u64,
    /// When the message becomes available to send.
    pub ready_ns: SimTime,
    /// Priority (lower = more urgent); ignored under [`Policy::Fifo`].
    pub priority: i64,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommCompletion {
    /// The request id.
    pub id: usize,
    /// Transmission start (first chunk).
    pub start_ns: SimTime,
    /// Transmission finish (last chunk).
    pub finish_ns: SimTime,
}

/// One contiguous interval during which the link served (part of) a
/// request — the raw material of per-transfer link-occupancy traces.
/// Adjacent chunks of the same request merge into one interval, so a
/// preempted bulk tensor shows up as several intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceInterval {
    /// The request id being served.
    pub id: usize,
    /// Interval start (includes the tensor latency for a first chunk).
    pub start_ns: SimTime,
    /// Interval end.
    pub end_ns: SimTime,
    /// Bytes moved during the interval.
    pub bytes: u64,
}

/// Simulates the queue over one link.
///
/// Chunked requests pay the link latency once per *tensor* (pipelined
/// chunking amortizes per-chunk latency); `chunk_bytes` bounds the
/// preemption delay for higher-priority arrivals.
pub fn simulate_queue(
    link: &LinkSpec,
    chunk_bytes: u64,
    policy: Policy,
    requests: &[CommRequest],
) -> Vec<CommCompletion> {
    simulate_queue_recorded(link, chunk_bytes, policy, requests).0
}

/// Like [`simulate_queue`], additionally returning the link's service
/// intervals in time order. The intervals never overlap (the link is a
/// serial resource), so they render directly as one trace lane.
pub fn simulate_queue_recorded(
    link: &LinkSpec,
    chunk_bytes: u64,
    policy: Policy,
    requests: &[CommRequest],
) -> (Vec<CommCompletion>, Vec<ServiceInterval>) {
    #[derive(Clone)]
    struct Pending {
        req: CommRequest,
        remaining: u64,
        started: Option<SimTime>,
    }
    let chunk = chunk_bytes.max(1);
    // `pending` is never reordered, so an entry's index doubles as the
    // arrival sequence number used in tie-breaks.
    let mut pending: Vec<Pending> = requests
        .iter()
        .map(|&req| Pending {
            req,
            remaining: req.bytes.max(1),
            started: None,
        })
        .collect();
    let n = pending.len();
    let mut done: Vec<CommCompletion> = Vec::with_capacity(n);
    let mut intervals: Vec<ServiceInterval> = Vec::new();
    let mut now: SimTime = 0;

    // Serves one chunk of `pending[i]`; pushes the completion if the
    // request drained. Shared by both policy paths below.
    let serve = |i: usize,
                 send_whole: bool,
                 pending: &mut [Pending],
                 now: &mut SimTime,
                 intervals: &mut Vec<ServiceInterval>,
                 done: &mut Vec<CommCompletion>| {
        let p = &mut pending[i];
        let service_start = *now;
        if p.started.is_none() {
            // Tensor-level latency paid once, up front.
            p.started = Some(*now);
            *now += link.latency_ns;
        }
        let send = if send_whole {
            p.remaining
        } else {
            p.remaining.min(chunk)
        };
        *now += (send as f64 / link.bytes_per_sec * 1e9) as SimTime;
        p.remaining -= send;
        match intervals.last_mut() {
            Some(iv) if iv.id == p.req.id && iv.end_ns == service_start => {
                iv.end_ns = *now;
                iv.bytes += send;
            }
            _ => intervals.push(ServiceInterval {
                id: p.req.id,
                start_ns: service_start,
                end_ns: *now,
                bytes: send,
            }),
        }
        if p.remaining == 0 {
            done.push(CommCompletion {
                id: p.req.id,
                start_ns: p.started.expect("started before finishing"),
                finish_ns: *now,
            });
        }
    };

    // Arrivals sorted once by `(ready_ns, seq)` and consumed through a
    // cursor; the per-chunk O(n) scan-and-filter over `pending` becomes a
    // heap pop. The pick sequence is unchanged:
    // - Fifo: tensors are sent whole, so the ready set admitted so far is
    //   always a prefix of the `(ready_ns, seq)` sort and the old
    //   `min_by_key` pick is exactly the next unserved arrival.
    // - Priority: every admitted-but-unserved request has
    //   `ready_ns ≤ now`, so admitting all arrivals up to `now` and
    //   popping the minimum `(priority, ready_ns, seq)` reproduces the old
    //   filter-then-`min_by_key` pick.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (pending[i].req.ready_ns, i));
    match policy {
        Policy::Fifo => {
            for &i in &order {
                now = now.max(pending[i].req.ready_ns);
                serve(i, true, &mut pending, &mut now, &mut intervals, &mut done);
            }
        }
        Policy::Priority => {
            let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(i64, SimTime, usize)>> =
                std::collections::BinaryHeap::new();
            let mut cursor = 0usize;
            while done.len() < n {
                if ready.is_empty() {
                    now = now.max(pending[order[cursor]].req.ready_ns);
                }
                while cursor < n && pending[order[cursor]].req.ready_ns <= now {
                    let i = order[cursor];
                    ready.push(std::cmp::Reverse((
                        pending[i].req.priority,
                        pending[i].req.ready_ns,
                        i,
                    )));
                    cursor += 1;
                }
                let std::cmp::Reverse(key) = ready.pop().expect("admitted at least one");
                let i = key.2;
                serve(i, false, &mut pending, &mut now, &mut intervals, &mut done);
                if pending[i].remaining > 0 {
                    ready.push(std::cmp::Reverse(key));
                }
            }
        }
    }
    done.sort_by_key(|c| (c.finish_ns, c.id));
    (done, intervals)
}

/// Renders service intervals as one trace [`Lane`]: one `"transfer"`
/// span per interval, named by `name_of(request id)` and annotated with
/// the bytes moved.
pub fn intervals_to_lane<F: Fn(usize) -> String>(
    lane_name: &str,
    intervals: &[ServiceInterval],
    name_of: F,
) -> Lane {
    Lane {
        name: lane_name.to_string(),
        spans: intervals
            .iter()
            .map(|iv| {
                let mut s = Span::new(name_of(iv.id), "transfer", iv.start_ns, iv.end_ns);
                s.args.push(("bytes".into(), iv.bytes as f64));
                s
            })
            .collect(),
    }
}

/// Finish time of the last request.
pub fn total_finish(completions: &[CommCompletion]) -> SimTime {
    completions.iter().map(|c| c.finish_ns).max().unwrap_or(0)
}

/// Finish time of a given request id, if present.
pub fn finish_of(completions: &[CommCompletion], id: usize) -> Option<SimTime> {
    completions.iter().find(|c| c.id == id).map(|c| c.finish_ns)
}

/// Checked variant of [`finish_of`].
///
/// # Errors
///
/// Returns [`Error::UnknownRequest`] when `id` never completed — the
/// panic-prone call sites previously `unwrap`ped the `Option`.
pub fn try_finish_of(completions: &[CommCompletion], id: usize) -> Result<SimTime> {
    finish_of(completions, id).ok_or(Error::UnknownRequest(id))
}

/// A deterministic fault trace applied to one link: time-windowed
/// bandwidth degradation plus hard outages (flapping / message loss).
///
/// All windows are half-open `[start, end)` in simulated nanoseconds.
/// An empty fault (no windows, or windows with factor ≤ 1) is a no-op:
/// [`simulate_queue_faulty`] then reproduces [`simulate_queue_recorded`]
/// byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFault {
    /// `(start_ns, end_ns, factor)`: wire time of chunks whose service
    /// starts inside the window is multiplied by `factor` (clamped ≥ 1).
    pub degraded: Vec<(SimTime, SimTime, f64)>,
    /// `(start_ns, end_ns)`: the link is down; chunks in flight when an
    /// outage is hit are lost and handled per [`LossHandling`].
    pub outages: Vec<(SimTime, SimTime)>,
}

impl LinkFault {
    /// A fault that injects nothing.
    pub fn none() -> Self {
        LinkFault::default()
    }

    /// Whether this fault can perturb a simulation at all.
    pub fn is_noop(&self) -> bool {
        self.outages.iter().all(|&(s, e)| e <= s)
            && self
                .degraded
                .iter()
                .all(|&(s, e, f)| e <= s || f <= 1.0 || !f.is_finite())
    }

    /// Combined slowdown factor at time `t` (product of covering
    /// windows, each clamped to ≥ 1; non-finite factors are ignored).
    pub fn slowdown_at(&self, t: SimTime) -> f64 {
        let mut factor = 1.0;
        for &(s, e, f) in &self.degraded {
            if s <= t && t < e && f.is_finite() && f > 1.0 {
                factor *= f;
            }
        }
        factor
    }

    /// End of the outage window covering `t`, if the link is down at `t`.
    /// Chained/overlapping windows are collapsed to the furthest end.
    pub fn outage_end_at(&self, t: SimTime) -> Option<SimTime> {
        let mut end = None;
        let mut probe = t;
        loop {
            let cover = self
                .outages
                .iter()
                .filter(|&&(s, e)| s <= probe && probe < e)
                .map(|&(_, e)| e)
                .max();
            match cover {
                Some(e) if Some(e) > end => {
                    end = Some(e);
                    probe = e;
                }
                _ => return end,
            }
        }
    }
}

/// What a sender does with a tensor whose transfer an outage killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossHandling {
    /// Discard delivered chunks and resend the whole tensor once the
    /// link returns (the no-recovery baseline: latency is re-paid and
    /// every byte crosses the wire again).
    RestartTensor,
    /// Keep delivered chunks and resume from the first missing one
    /// after a bounded exponential backoff: retry `r` waits
    /// `min(backoff_ns << r, max_backoff_ns)` past the outage.
    ResumeChunks {
        /// Initial backoff.
        backoff_ns: SimTime,
        /// Backoff ceiling.
        max_backoff_ns: SimTime,
    },
}

impl LossHandling {
    fn penalty_ns(&self, retries: u32) -> SimTime {
        match *self {
            LossHandling::RestartTensor => 0,
            LossHandling::ResumeChunks {
                backoff_ns,
                max_backoff_ns,
            } => backoff_ns
                .saturating_mul(1u64 << retries.min(63))
                .min(max_backoff_ns),
        }
    }
}

/// Like [`simulate_queue_recorded`], with a [`LinkFault`] applied.
///
/// The fault model works at chunk granularity: a chunk whose service
/// starts inside a degradation window transmits `factor`× slower; when
/// the queue reaches a time inside an outage window, every in-flight
/// tensor loses its unfinished transfer (handled per `loss`) and the
/// link resumes at the window's end. Chunks already in flight when an
/// outage begins complete (store-and-forward). Latency is not scaled by
/// degradation.
///
/// With `fault.is_noop()` the output is identical to
/// [`simulate_queue_recorded`] — the zero-magnitude guarantee the
/// chaos proptests pin down.
pub fn simulate_queue_faulty(
    link: &LinkSpec,
    chunk_bytes: u64,
    policy: Policy,
    requests: &[CommRequest],
    fault: &LinkFault,
    loss: LossHandling,
) -> (Vec<CommCompletion>, Vec<ServiceInterval>) {
    struct Pending {
        req: CommRequest,
        remaining: u64,
        started: Option<SimTime>,
        seq: usize,
        not_before: SimTime,
        retries: u32,
    }
    impl Pending {
        fn effective_ready(&self) -> SimTime {
            self.req.ready_ns.max(self.not_before)
        }
    }
    let chunk = chunk_bytes.max(1);
    let mut pending: Vec<Pending> = requests
        .iter()
        .enumerate()
        .map(|(seq, &req)| Pending {
            req,
            remaining: req.bytes.max(1),
            started: None,
            seq,
            not_before: 0,
            retries: 0,
        })
        .collect();
    let mut done: Vec<CommCompletion> = Vec::with_capacity(pending.len());
    let mut intervals: Vec<ServiceInterval> = Vec::new();
    let mut now: SimTime = 0;

    while !pending.is_empty() {
        let earliest = pending
            .iter()
            .map(|p| p.effective_ready())
            .min()
            .expect("non-empty");
        now = now.max(earliest);
        if let Some(outage_end) = fault.outage_end_at(now) {
            // The link is down: in-flight tensors lose their transfer.
            for p in pending.iter_mut() {
                if p.started.is_some() && p.remaining > 0 {
                    let resume = outage_end.saturating_add(loss.penalty_ns(p.retries));
                    p.not_before = p.not_before.max(resume);
                    p.retries = p.retries.saturating_add(1);
                    if loss == LossHandling::RestartTensor {
                        p.remaining = p.req.bytes.max(1);
                        p.started = None;
                    }
                }
            }
            now = outage_end;
            continue;
        }
        // Pick among ready requests (same discipline as the fault-free
        // queue, over fault-adjusted readiness).
        let idx = match policy {
            Policy::Fifo => pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.effective_ready() <= now)
                .min_by_key(|(_, p)| (p.req.ready_ns, p.seq))
                .map(|(i, _)| i),
            Policy::Priority => pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.effective_ready() <= now)
                .min_by_key(|(_, p)| (p.req.priority, p.req.ready_ns, p.seq))
                .map(|(i, _)| i),
        };
        let Some(idx) = idx else {
            continue;
        };
        let p = &mut pending[idx];
        let service_start = now;
        if p.started.is_none() {
            p.started = Some(now);
            now = now.saturating_add(link.latency_ns);
        }
        let send = match policy {
            Policy::Fifo => p.remaining,
            Policy::Priority => p.remaining.min(chunk),
        };
        let factor = fault.slowdown_at(service_start);
        let wire = (send as f64 / link.bytes_per_sec * 1e9 * factor) as SimTime;
        now = now.saturating_add(wire);
        p.remaining -= send;
        match intervals.last_mut() {
            Some(iv) if iv.id == p.req.id && iv.end_ns == service_start => {
                iv.end_ns = now;
                iv.bytes += send;
            }
            _ => intervals.push(ServiceInterval {
                id: p.req.id,
                start_ns: service_start,
                end_ns: now,
                bytes: send,
            }),
        }
        if p.remaining == 0 {
            let finished = pending.swap_remove(idx);
            done.push(CommCompletion {
                id: finished.req.id,
                start_ns: finished.started.expect("started before finishing"),
                finish_ns: now,
            });
        }
    }
    done.sort_by_key(|c| (c.finish_ns, c.id));
    (done, intervals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        // 1 byte/ns, zero latency: transfer time equals byte count.
        LinkSpec {
            name: "unit",
            bytes_per_sec: 1e9,
            latency_ns: 0,
        }
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 100,
                ready_ns: 0,
                priority: 9,
            },
            CommRequest {
                id: 1,
                bytes: 100,
                ready_ns: 10,
                priority: 0,
            },
        ];
        let done = simulate_queue(&link(), 10, Policy::Fifo, &reqs);
        assert_eq!(finish_of(&done, 0), Some(100));
        assert_eq!(finish_of(&done, 1), Some(200));
    }

    #[test]
    fn priority_preempts_at_chunk_granularity() {
        // Bulk tensor (low priority) starts first; an urgent tensor
        // arriving at t=10 overtakes after the in-flight chunk.
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 1_000,
                ready_ns: 0,
                priority: 10,
            },
            CommRequest {
                id: 1,
                bytes: 50,
                ready_ns: 10,
                priority: 0,
            },
        ];
        let done = simulate_queue(&link(), 20, Policy::Priority, &reqs);
        let urgent = finish_of(&done, 1).unwrap();
        let bulk = finish_of(&done, 0).unwrap();
        assert!(urgent < 100, "urgent finished at {urgent}");
        assert_eq!(bulk, 1_050);
    }

    #[test]
    fn fifo_vs_priority_total_time_equal_single_link() {
        // Work conservation: total bytes fix the final finish time.
        let reqs: Vec<CommRequest> = (0..5)
            .map(|i| CommRequest {
                id: i,
                bytes: 100,
                ready_ns: 0,
                priority: -(i as i64),
            })
            .collect();
        let f = simulate_queue(&link(), 10, Policy::Fifo, &reqs);
        let p = simulate_queue(&link(), 10, Policy::Priority, &reqs);
        assert_eq!(total_finish(&f), total_finish(&p));
        assert_eq!(total_finish(&f), 500);
    }

    #[test]
    fn latency_paid_once_per_tensor() {
        let l = LinkSpec {
            name: "lat",
            bytes_per_sec: 1e9,
            latency_ns: 7,
        };
        let reqs = [CommRequest {
            id: 0,
            bytes: 100,
            ready_ns: 0,
            priority: 0,
        }];
        let done = simulate_queue(&l, 10, Policy::Priority, &reqs);
        assert_eq!(finish_of(&done, 0), Some(107));
    }

    #[test]
    fn idle_gaps_respected() {
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 10,
                ready_ns: 0,
                priority: 0,
            },
            CommRequest {
                id: 1,
                bytes: 10,
                ready_ns: 100,
                priority: 0,
            },
        ];
        let done = simulate_queue(&link(), 4, Policy::Priority, &reqs);
        assert_eq!(finish_of(&done, 0), Some(10));
        assert_eq!(finish_of(&done, 1), Some(110));
    }

    #[test]
    fn service_intervals_cover_exact_bytes_and_never_overlap() {
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 1_000,
                ready_ns: 0,
                priority: 10,
            },
            CommRequest {
                id: 1,
                bytes: 50,
                ready_ns: 10,
                priority: 0,
            },
        ];
        let (done, intervals) = simulate_queue_recorded(&link(), 20, Policy::Priority, &reqs);
        // Every byte of every request is accounted to exactly one interval.
        for r in &reqs {
            let total: u64 = intervals
                .iter()
                .filter(|iv| iv.id == r.id)
                .map(|iv| iv.bytes)
                .sum();
            assert_eq!(total, r.bytes.max(1));
        }
        // The preempted bulk tensor splits into several intervals.
        assert!(intervals.iter().filter(|iv| iv.id == 0).count() >= 2);
        // Intervals are ordered and disjoint; the lane validates.
        for w in intervals.windows(2) {
            assert!(w[1].start_ns >= w[0].end_ns);
        }
        let lane = intervals_to_lane("uplink", &intervals, |id| format!("t{id}"));
        let mut tl = ooo_core::trace::Timeline::new("queue");
        tl.lanes.push(lane);
        tl.validate().unwrap();
        // Busy time on the lane equals the span of actual service.
        let busy = tl.summarize().lane("uplink").unwrap().busy_ns;
        let total_service: u64 = intervals.iter().map(|iv| iv.end_ns - iv.start_ns).sum();
        assert_eq!(busy, total_service);
        // Completion bounds agree with the interval ledger.
        for c in &done {
            let first = intervals.iter().find(|iv| iv.id == c.id).unwrap();
            let last = intervals.iter().rev().find(|iv| iv.id == c.id).unwrap();
            assert_eq!(first.start_ns, c.start_ns);
            assert_eq!(last.end_ns, c.finish_ns);
        }
    }

    #[test]
    fn zero_byte_requests_complete() {
        let reqs = [CommRequest {
            id: 0,
            bytes: 0,
            ready_ns: 5,
            priority: 0,
        }];
        let done = simulate_queue(&link(), 4, Policy::Priority, &reqs);
        assert_eq!(done.len(), 1);
        assert!(done[0].finish_ns >= 5);
    }

    #[test]
    fn unknown_request_id_is_an_error() {
        let reqs = [CommRequest {
            id: 3,
            bytes: 10,
            ready_ns: 0,
            priority: 0,
        }];
        let done = simulate_queue(&link(), 4, Policy::Priority, &reqs);
        assert!(try_finish_of(&done, 3).is_ok());
        assert_eq!(try_finish_of(&done, 99), Err(Error::UnknownRequest(99)));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec {
            name: "unit",
            bytes_per_sec: 1e9,
            latency_ns: 0,
        }
    }

    fn reqs() -> Vec<CommRequest> {
        vec![
            CommRequest {
                id: 0,
                bytes: 400,
                ready_ns: 0,
                priority: 5,
            },
            CommRequest {
                id: 1,
                bytes: 120,
                ready_ns: 30,
                priority: 0,
            },
            CommRequest {
                id: 2,
                bytes: 250,
                ready_ns: 60,
                priority: 2,
            },
        ]
    }

    #[test]
    fn noop_fault_reproduces_fault_free_run_exactly() {
        for policy in [Policy::Fifo, Policy::Priority] {
            let base = simulate_queue_recorded(&link(), 32, policy, &reqs());
            for fault in [
                LinkFault::none(),
                LinkFault {
                    // Empty windows and factor ≤ 1 are all no-ops.
                    degraded: vec![(0, 0, 9.0), (10, 500, 1.0), (20, 30, 0.5)],
                    outages: vec![(100, 100), (40, 10)],
                },
            ] {
                assert!(fault.is_noop());
                let faulty = simulate_queue_faulty(
                    &link(),
                    32,
                    policy,
                    &reqs(),
                    &fault,
                    LossHandling::RestartTensor,
                );
                assert_eq!(base, faulty, "policy {policy:?}");
            }
        }
    }

    #[test]
    fn degradation_window_slows_only_covered_chunks() {
        let fault = LinkFault {
            degraded: vec![(0, 60, 2.0)],
            outages: vec![],
        };
        let one = [CommRequest {
            id: 0,
            bytes: 100,
            ready_ns: 0,
            priority: 0,
        }];
        let (done, _) = simulate_queue_faulty(
            &link(),
            25,
            Policy::Priority,
            &one,
            &fault,
            LossHandling::RestartTensor,
        );
        // Chunks starting at t=0 and t=50 are degraded (2×25 ns each);
        // chunks at t=100 and t=125 run at full speed.
        assert_eq!(finish_of(&done, 0), Some(150));
    }

    #[test]
    fn outage_with_restart_resends_every_byte() {
        let fault = LinkFault {
            degraded: vec![],
            outages: vec![(30, 100)],
        };
        let one = [CommRequest {
            id: 0,
            bytes: 200,
            ready_ns: 0,
            priority: 0,
        }];
        let (done, intervals) = simulate_queue_faulty(
            &link(),
            20,
            Policy::Priority,
            &one,
            &fault,
            LossHandling::RestartTensor,
        );
        // Chunks at t=0 and t=20 are wasted; the whole tensor restarts
        // at t=100 and start_ns reflects the restart.
        let c = done[0];
        assert_eq!(c.start_ns, 100);
        assert_eq!(c.finish_ns, 300);
        let total: u64 = intervals.iter().map(|iv| iv.bytes).sum();
        assert_eq!(total, 240, "40 wasted bytes + 200 resent");
    }

    #[test]
    fn outage_with_resume_keeps_delivered_chunks_and_backs_off() {
        let fault = LinkFault {
            degraded: vec![],
            outages: vec![(30, 100), (150, 170)],
        };
        let one = [CommRequest {
            id: 0,
            bytes: 200,
            ready_ns: 0,
            priority: 0,
        }];
        let loss = LossHandling::ResumeChunks {
            backoff_ns: 8,
            max_backoff_ns: 12,
        };
        let (done, intervals) =
            simulate_queue_faulty(&link(), 20, Policy::Priority, &one, &fault, loss);
        let c = done[0];
        // Original start is preserved under resume.
        assert_eq!(c.start_ns, 0);
        // 40 bytes land before the first outage; retry 0 resumes at
        // 100+8=108 and sends 60 more until the chunk boundary at 168
        // falls inside the second outage; retry 1 backs off
        // min(8<<1, 12) = 12 past its end → resumes at 182 with 100
        // bytes left.
        assert_eq!(c.finish_ns, 182 + 100);
        let total: u64 = intervals.iter().map(|iv| iv.bytes).sum();
        assert_eq!(total, 200, "no byte is resent under resume");
    }

    #[test]
    fn flapping_link_strictly_delays_but_preserves_all_traffic() {
        let fault = LinkFault {
            degraded: vec![(0, 200, 1.5)],
            outages: vec![(40, 70), (120, 140)],
        };
        let (base, _) = simulate_queue_recorded(&link(), 16, Policy::Priority, &reqs());
        let loss = LossHandling::ResumeChunks {
            backoff_ns: 4,
            max_backoff_ns: 64,
        };
        let (faulty, _) =
            simulate_queue_faulty(&link(), 16, Policy::Priority, &reqs(), &fault, loss);
        assert_eq!(faulty.len(), base.len());
        assert!(total_finish(&faulty) > total_finish(&base));
        for r in reqs() {
            assert!(
                try_finish_of(&faulty, r.id).unwrap() >= finish_of(&base, r.id).unwrap(),
                "request {} finished earlier under faults",
                r.id
            );
        }
    }

    #[test]
    fn overlapping_outages_collapse() {
        let f = LinkFault {
            degraded: vec![],
            outages: vec![(10, 50), (40, 90), (90, 120)],
        };
        assert_eq!(f.outage_end_at(15), Some(120));
        assert_eq!(f.outage_end_at(120), None);
        assert_eq!(f.outage_end_at(5), None);
    }
}
