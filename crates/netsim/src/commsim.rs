//! A chunk-preemptive priority transmission queue.
//!
//! BytePS/ByteScheduler partition each gradient tensor into small chunks
//! so that a higher-priority tensor arriving mid-transfer overtakes bulk
//! traffic after at most one chunk. This module simulates a single
//! bottleneck resource (a worker NIC or PCIe lane) serving such chunked
//! requests and is the synchronization backend used by the data-parallel
//! cluster engine.

use crate::link::LinkSpec;
use crate::SimTime;
use ooo_core::trace::{Lane, Span};

/// Queue service discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Serve whole tensors in arrival order (wait-free backprop without
    /// prioritization).
    Fifo,
    /// Serve chunks, lowest `priority` value first among ready requests
    /// (BytePS-style; layer index is the natural priority).
    Priority,
}

/// One transmission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommRequest {
    /// Caller-chosen identifier (e.g. layer index).
    pub id: usize,
    /// Message size in bytes.
    pub bytes: u64,
    /// When the message becomes available to send.
    pub ready_ns: SimTime,
    /// Priority (lower = more urgent); ignored under [`Policy::Fifo`].
    pub priority: i64,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommCompletion {
    /// The request id.
    pub id: usize,
    /// Transmission start (first chunk).
    pub start_ns: SimTime,
    /// Transmission finish (last chunk).
    pub finish_ns: SimTime,
}

/// One contiguous interval during which the link served (part of) a
/// request — the raw material of per-transfer link-occupancy traces.
/// Adjacent chunks of the same request merge into one interval, so a
/// preempted bulk tensor shows up as several intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceInterval {
    /// The request id being served.
    pub id: usize,
    /// Interval start (includes the tensor latency for a first chunk).
    pub start_ns: SimTime,
    /// Interval end.
    pub end_ns: SimTime,
    /// Bytes moved during the interval.
    pub bytes: u64,
}

/// Simulates the queue over one link.
///
/// Chunked requests pay the link latency once per *tensor* (pipelined
/// chunking amortizes per-chunk latency); `chunk_bytes` bounds the
/// preemption delay for higher-priority arrivals.
pub fn simulate_queue(
    link: &LinkSpec,
    chunk_bytes: u64,
    policy: Policy,
    requests: &[CommRequest],
) -> Vec<CommCompletion> {
    simulate_queue_recorded(link, chunk_bytes, policy, requests).0
}

/// Like [`simulate_queue`], additionally returning the link's service
/// intervals in time order. The intervals never overlap (the link is a
/// serial resource), so they render directly as one trace lane.
pub fn simulate_queue_recorded(
    link: &LinkSpec,
    chunk_bytes: u64,
    policy: Policy,
    requests: &[CommRequest],
) -> (Vec<CommCompletion>, Vec<ServiceInterval>) {
    #[derive(Clone)]
    struct Pending {
        req: CommRequest,
        remaining: u64,
        started: Option<SimTime>,
        seq: usize,
    }
    let chunk = chunk_bytes.max(1);
    let mut pending: Vec<Pending> = requests
        .iter()
        .enumerate()
        .map(|(seq, &req)| Pending {
            req,
            remaining: req.bytes.max(1),
            started: None,
            seq,
        })
        .collect();
    let mut done: Vec<CommCompletion> = Vec::with_capacity(pending.len());
    let mut intervals: Vec<ServiceInterval> = Vec::new();
    let mut now: SimTime = 0;

    while !pending.is_empty() {
        let earliest = pending
            .iter()
            .map(|p| p.req.ready_ns)
            .min()
            .expect("non-empty");
        now = now.max(earliest);
        // Pick among ready requests.
        let idx = match policy {
            Policy::Fifo => pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.req.ready_ns <= now)
                .min_by_key(|(_, p)| (p.req.ready_ns, p.seq))
                .map(|(i, _)| i),
            Policy::Priority => pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.req.ready_ns <= now)
                .min_by_key(|(_, p)| (p.req.priority, p.req.ready_ns, p.seq))
                .map(|(i, _)| i),
        };
        let Some(idx) = idx else {
            // Nothing ready yet; jump to the next readiness point.
            continue;
        };
        let p = &mut pending[idx];
        let service_start = now;
        if p.started.is_none() {
            // Tensor-level latency paid once, up front.
            p.started = Some(now);
            now += link.latency_ns;
        }
        let send = match policy {
            Policy::Fifo => p.remaining,
            Policy::Priority => p.remaining.min(chunk),
        };
        now += (send as f64 / link.bytes_per_sec * 1e9) as SimTime;
        p.remaining -= send;
        match intervals.last_mut() {
            Some(iv) if iv.id == p.req.id && iv.end_ns == service_start => {
                iv.end_ns = now;
                iv.bytes += send;
            }
            _ => intervals.push(ServiceInterval {
                id: p.req.id,
                start_ns: service_start,
                end_ns: now,
                bytes: send,
            }),
        }
        if p.remaining == 0 {
            let finished = pending.swap_remove(idx);
            done.push(CommCompletion {
                id: finished.req.id,
                start_ns: finished.started.expect("started before finishing"),
                finish_ns: now,
            });
        }
    }
    done.sort_by_key(|c| (c.finish_ns, c.id));
    (done, intervals)
}

/// Renders service intervals as one trace [`Lane`]: one `"transfer"`
/// span per interval, named by `name_of(request id)` and annotated with
/// the bytes moved.
pub fn intervals_to_lane<F: Fn(usize) -> String>(
    lane_name: &str,
    intervals: &[ServiceInterval],
    name_of: F,
) -> Lane {
    Lane {
        name: lane_name.to_string(),
        spans: intervals
            .iter()
            .map(|iv| {
                let mut s = Span::new(name_of(iv.id), "transfer", iv.start_ns, iv.end_ns);
                s.args.push(("bytes".into(), iv.bytes as f64));
                s
            })
            .collect(),
    }
}

/// Finish time of the last request.
pub fn total_finish(completions: &[CommCompletion]) -> SimTime {
    completions.iter().map(|c| c.finish_ns).max().unwrap_or(0)
}

/// Finish time of a given request id, if present.
pub fn finish_of(completions: &[CommCompletion], id: usize) -> Option<SimTime> {
    completions.iter().find(|c| c.id == id).map(|c| c.finish_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        // 1 byte/ns, zero latency: transfer time equals byte count.
        LinkSpec {
            name: "unit",
            bytes_per_sec: 1e9,
            latency_ns: 0,
        }
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 100,
                ready_ns: 0,
                priority: 9,
            },
            CommRequest {
                id: 1,
                bytes: 100,
                ready_ns: 10,
                priority: 0,
            },
        ];
        let done = simulate_queue(&link(), 10, Policy::Fifo, &reqs);
        assert_eq!(finish_of(&done, 0), Some(100));
        assert_eq!(finish_of(&done, 1), Some(200));
    }

    #[test]
    fn priority_preempts_at_chunk_granularity() {
        // Bulk tensor (low priority) starts first; an urgent tensor
        // arriving at t=10 overtakes after the in-flight chunk.
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 1_000,
                ready_ns: 0,
                priority: 10,
            },
            CommRequest {
                id: 1,
                bytes: 50,
                ready_ns: 10,
                priority: 0,
            },
        ];
        let done = simulate_queue(&link(), 20, Policy::Priority, &reqs);
        let urgent = finish_of(&done, 1).unwrap();
        let bulk = finish_of(&done, 0).unwrap();
        assert!(urgent < 100, "urgent finished at {urgent}");
        assert_eq!(bulk, 1_050);
    }

    #[test]
    fn fifo_vs_priority_total_time_equal_single_link() {
        // Work conservation: total bytes fix the final finish time.
        let reqs: Vec<CommRequest> = (0..5)
            .map(|i| CommRequest {
                id: i,
                bytes: 100,
                ready_ns: 0,
                priority: -(i as i64),
            })
            .collect();
        let f = simulate_queue(&link(), 10, Policy::Fifo, &reqs);
        let p = simulate_queue(&link(), 10, Policy::Priority, &reqs);
        assert_eq!(total_finish(&f), total_finish(&p));
        assert_eq!(total_finish(&f), 500);
    }

    #[test]
    fn latency_paid_once_per_tensor() {
        let l = LinkSpec {
            name: "lat",
            bytes_per_sec: 1e9,
            latency_ns: 7,
        };
        let reqs = [CommRequest {
            id: 0,
            bytes: 100,
            ready_ns: 0,
            priority: 0,
        }];
        let done = simulate_queue(&l, 10, Policy::Priority, &reqs);
        assert_eq!(finish_of(&done, 0), Some(107));
    }

    #[test]
    fn idle_gaps_respected() {
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 10,
                ready_ns: 0,
                priority: 0,
            },
            CommRequest {
                id: 1,
                bytes: 10,
                ready_ns: 100,
                priority: 0,
            },
        ];
        let done = simulate_queue(&link(), 4, Policy::Priority, &reqs);
        assert_eq!(finish_of(&done, 0), Some(10));
        assert_eq!(finish_of(&done, 1), Some(110));
    }

    #[test]
    fn service_intervals_cover_exact_bytes_and_never_overlap() {
        let reqs = [
            CommRequest {
                id: 0,
                bytes: 1_000,
                ready_ns: 0,
                priority: 10,
            },
            CommRequest {
                id: 1,
                bytes: 50,
                ready_ns: 10,
                priority: 0,
            },
        ];
        let (done, intervals) = simulate_queue_recorded(&link(), 20, Policy::Priority, &reqs);
        // Every byte of every request is accounted to exactly one interval.
        for r in &reqs {
            let total: u64 = intervals
                .iter()
                .filter(|iv| iv.id == r.id)
                .map(|iv| iv.bytes)
                .sum();
            assert_eq!(total, r.bytes.max(1));
        }
        // The preempted bulk tensor splits into several intervals.
        assert!(intervals.iter().filter(|iv| iv.id == 0).count() >= 2);
        // Intervals are ordered and disjoint; the lane validates.
        for w in intervals.windows(2) {
            assert!(w[1].start_ns >= w[0].end_ns);
        }
        let lane = intervals_to_lane("uplink", &intervals, |id| format!("t{id}"));
        let mut tl = ooo_core::trace::Timeline::new("queue");
        tl.lanes.push(lane);
        tl.validate().unwrap();
        // Busy time on the lane equals the span of actual service.
        let busy = tl.summarize().lane("uplink").unwrap().busy_ns;
        let total_service: u64 = intervals.iter().map(|iv| iv.end_ns - iv.start_ns).sum();
        assert_eq!(busy, total_service);
        // Completion bounds agree with the interval ledger.
        for c in &done {
            let first = intervals.iter().find(|iv| iv.id == c.id).unwrap();
            let last = intervals.iter().rev().find(|iv| iv.id == c.id).unwrap();
            assert_eq!(first.start_ns, c.start_ns);
            assert_eq!(last.end_ns, c.finish_ns);
        }
    }

    #[test]
    fn zero_byte_requests_complete() {
        let reqs = [CommRequest {
            id: 0,
            bytes: 0,
            ready_ns: 5,
            priority: 0,
        }];
        let done = simulate_queue(&link(), 4, Policy::Priority, &reqs);
        assert_eq!(done.len(), 1);
        assert!(done[0].finish_ns >= 5);
    }
}
