//! Regenerates the paper's tables and figures on the simulated
//! substrates.
//!
//! Usage:
//!
//! ```text
//! figures            # everything, in paper order
//! figures fig7 fig10 # a subset
//! figures --list     # available ids
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids = ooo_bench::all_ids();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for id in ids {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&str> = if args.is_empty() {
        ids.clone()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            if ids.contains(&a.as_str()) {
                sel.push(ids.iter().copied().find(|&i| i == a).expect("checked"));
            } else {
                eprintln!("unknown figure id '{a}'; try --list");
                return ExitCode::FAILURE;
            }
        }
        sel
    };
    for id in selected {
        let report = ooo_bench::generate(id);
        println!("{}", report.render());
    }
    ExitCode::SUCCESS
}
