//! Emits the scale sweep as JSON (`BENCH_scale.json`): timings of every
//! rewritten hot path against its frozen pre-refactor reference at
//! 10/100/1000 stages × 8/64/512 workers, each pair asserted
//! output-identical before it is timed.
//!
//! `--smoke` runs the small deterministic points and omits the timing
//! fields, so two runs must produce byte-identical output — CI runs it
//! twice and `cmp`s.

use ooo_bench::scale;
use std::io::Write;

const USAGE: &str = "usage: scale-bench [--smoke] [--out PATH]\n\
  Runs the 10/100/1000-stage scale sweep and prints the\n\
  BENCH_scale.json document (or writes it to PATH). With --smoke,\n\
  runs the small points only and emits just the deterministic\n\
  differential fields (byte-identical across runs).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let points = if smoke {
        scale::smoke_points()
    } else {
        scale::sweep_points()
    };
    let rows = scale::run_sweep(&points);
    let text = scale::to_json(&rows, !smoke).to_pretty();
    match out {
        Some(path) => {
            let mut f = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("scale-bench: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            };
            if let Err(e) = writeln!(f, "{text}") {
                eprintln!("scale-bench: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => println!("{text}"),
    }
}
