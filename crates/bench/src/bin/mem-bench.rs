//! Emits the memory-ledger benchmark as JSON (`BENCH_mem.json`):
//! OM401 early-free peak savings across the zoo and the peak/makespan
//! trade of memory-capped tuning.

use ooo_bench::mem;
use std::io::Write;

const USAGE: &str = "usage: mem-bench [--smoke] [--out PATH]\n\
  Runs the static memory-ledger scenarios (early-free savings and the\n\
  memory-capped tuning sweep) and prints the BENCH_mem.json document\n\
  (or writes it to PATH). --smoke runs small sizes and omits wall\n\
  times, so its output is byte-identical across runs.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let sizes = if smoke {
        mem::smoke_sizes()
    } else {
        mem::bench_sizes()
    };
    let (early, caps) = mem::run_bench(&sizes);
    let text = mem::to_json(&early, &caps, !smoke).to_pretty();
    match out {
        Some(path) => {
            let mut f = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("mem-bench: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            };
            if let Err(e) = writeln!(f, "{text}") {
                eprintln!("mem-bench: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => println!("{text}"),
    }
}
