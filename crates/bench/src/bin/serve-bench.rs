//! Emits the serving-layer benchmark as JSON (`BENCH_serve.json`):
//! request throughput, degradation-tier latencies, and the cache-hit
//! speedup over a cold full-tier tune.

use ooo_bench::serve;
use std::io::Write;

const USAGE: &str = "usage: serve-bench [--smoke] [--out PATH]\n\
  Drives the in-process ooo-serve daemon through the benchmark\n\
  scenarios and prints the BENCH_serve.json document (or writes it\n\
  to PATH). --smoke runs small sizes and omits wall times, so its\n\
  output is byte-identical across runs.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let sizes = if smoke {
        serve::smoke_sizes()
    } else {
        serve::bench_sizes()
    };
    let rows = serve::run_bench(&sizes);
    let text = serve::to_json(&rows, !smoke).to_pretty();
    match out {
        Some(path) => {
            let mut f = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("serve-bench: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            };
            if let Err(e) = writeln!(f, "{text}") {
                eprintln!("serve-bench: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => println!("{text}"),
    }
}
