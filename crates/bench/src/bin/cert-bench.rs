//! Emits the certification trajectory benchmark as JSON
//! (`BENCH_cert.json`): heuristic/tuned/certified makespans, wall
//! times, and the delta-vs-full evaluation speedup over seeds 1–10.

use ooo_bench::cert_trajectory;
use std::io::Write;

const USAGE: &str = "usage: cert-bench [--out PATH]\n\
  Runs the heuristic -> tuned -> certified pipeline over seeds 1-10\n\
  and prints the BENCH_cert.json document (or writes it to PATH).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let rows = cert_trajectory::run_default();
    let text = cert_trajectory::to_json(&rows).to_pretty();
    match out {
        Some(path) => {
            let mut f = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cert-bench: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            };
            if let Err(e) = writeln!(f, "{text}") {
                eprintln!("cert-bench: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => println!("{text}"),
    }
}
