//! Emits the strategy tournament as JSON (`BENCH_tournament.json`):
//! every data-parallel zoo strategy over every bracket network under
//! the homogeneous and heterogeneous device mixes, each cell OV-clean,
//! certified at tolerance 0, and memory-reconciled.
//!
//! Every reported number is a deterministic simulated time, so two runs
//! produce byte-identical output in both modes — CI runs `--smoke`
//! twice and `cmp`s. `--strategy NAME` restricts the emitted cells for
//! quick inspection (the full group still runs; winners need the whole
//! field).

use ooo_bench::tournament;
use std::io::Write;

const USAGE: &str = "usage: tournament-bench [--smoke] [--strategy NAME] [--out PATH]\n\
\x20      tournament-bench --bundle PATH\n\
  Runs the strategy tournament (networks x strategies x device mixes)\n\
  and prints the BENCH_tournament.json document (or writes it to PATH).\n\
  With --smoke, runs the small bracket. With --strategy NAME, emits\n\
  only that strategy's cells. Output is byte-identical across runs.\n\
  With --bundle PATH, instead exports every data-parallel zoo\n\
  strategy's schedule as a ScheduleBundle for the analysis CLIs.";

/// Exports one schedule per data-parallel zoo strategy over a small
/// 8-layer graph as a [`ScheduleBundle`], so `ooo-advise bundle
/// --schedule NAME` (and the other bundle consumers) can smoke each
/// strategy from the shell.
fn export_bundle(path: &str) {
    use ooo_cluster::strategy::{zoo, Shape};
    use ooo_core::cost::UnitCost;
    use ooo_core::export::ScheduleBundle;

    let shape = Shape::DataParallel { layers: 8 };
    let graph = match shape.graph() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("tournament-bench: cannot build bundle graph: {e}");
            std::process::exit(2);
        }
    };
    let mut bundle = ScheduleBundle::new("strategy-zoo", &graph);
    for strat in zoo() {
        if !strat.applicable(shape) {
            continue;
        }
        let generated = match strat.generate(shape, &UnitCost) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("tournament-bench: {} failed to generate: {e}", strat.name());
                std::process::exit(2);
            }
        };
        bundle
            .schedules
            .insert(strat.name().to_string(), generated.schedule);
    }
    let text = match bundle.to_json() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tournament-bench: bundle does not serialize: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("tournament-bench: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut strategy: Option<String> = None;
    let mut bundle: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--bundle" if i + 1 < args.len() => {
                bundle = Some(args[i + 1].clone());
                i += 2;
            }
            "--strategy" if i + 1 < args.len() => {
                strategy = Some(args[i + 1].clone());
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &bundle {
        export_bundle(path);
        return;
    }
    if let Some(name) = &strategy {
        if ooo_cluster::strategy::strategy_by_name(name).is_none() {
            eprintln!(
                "tournament-bench: unknown strategy {name}; known: {}",
                ooo_cluster::strategy::strategy_names().join(", ")
            );
            std::process::exit(2);
        }
    }
    let bracket = if smoke {
        tournament::smoke_bracket()
    } else {
        tournament::bracket()
    };
    let mut t = tournament::run(&bracket);
    if let Some(name) = &strategy {
        t.cells.retain(|c| c.strategy == name.as_str());
    }
    let text = tournament::to_json(&t).to_pretty();
    match out {
        Some(path) => {
            let mut f = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("tournament-bench: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            };
            if let Err(e) = writeln!(f, "{text}") {
                eprintln!("tournament-bench: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => println!("{text}"),
    }
}
