//! The heterogeneous strategy tournament behind `BENCH_tournament.json`
//! and `figures tournament`.
//!
//! Every data-parallel strategy of the zoo
//! ([`ooo_cluster::strategy::zoo`]) is run over every network of the
//! bracket under every device mix — a homogeneous NVLink fleet and a
//! heterogeneous fleet with per-worker [`SpeedFactor`]s and an
//! asymmetric uplink/downlink. Each cell is a full contract check, not
//! just a timing:
//!
//! - the schedule must be OV-clean (zero diagnostics, legality on);
//! - the static makespan prediction must equal the discrete-event
//!   simulation at tolerance 0 ([`Generated::certified`]);
//! - the static memory ledger must reconcile exactly against the
//!   instrumented per-op counter ([`Generated::mem_reconciled`]);
//! - on the homogeneous mix, the heterogeneous fleet simulator under
//!   uniform unit speed factors must reproduce the homogeneous
//!   simulator's makespan exactly.
//!
//! All reported numbers are deterministic simulated times, so the
//! emitted document is byte-identical across runs in both modes — CI
//! runs `tournament-bench --smoke` twice and `cmp`s.
//!
//! [`SpeedFactor`]: ooo_core::datapar::SpeedFactor

use ooo_cluster::strategy::{zoo, Shape};
use ooo_core::cost::TableCost;
use ooo_core::datapar::{simulate_data_parallel, simulate_data_parallel_hetero, CommPolicy};
use ooo_core::json::{obj, Value};
use ooo_core::op::LayerId;
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::SimTime;
use ooo_gpusim::spec::{GpuSpec, WorkerFleet};
use ooo_models::cost::{to_table_cost, weight_bytes};
use ooo_models::{zoo as models, GpuProfile, ModelSpec};
use ooo_netsim::link::{DuplexLink, LinkSpec};

/// A device mix: a (possibly heterogeneous) worker fleet plus the
/// duplex link its synchronizations traverse.
pub struct Mix {
    /// Mix identifier ("homogeneous" / "heterogeneous").
    pub name: &'static str,
    /// The worker fleet with per-worker speed factors.
    pub fleet: WorkerFleet,
    /// Uplink/downlink pair; asymmetric on the heterogeneous mix.
    pub link: DuplexLink,
}

/// The two tournament device mixes.
pub fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "homogeneous",
            fleet: WorkerFleet::homogeneous(GpuSpec::v100(), 4),
            link: DuplexLink::symmetric(LinkSpec::nvlink()),
        },
        Mix {
            name: "heterogeneous",
            fleet: WorkerFleet::with_speeds(GpuSpec::v100(), &[100, 110, 125, 150]),
            link: DuplexLink::asymmetric(LinkSpec::ethernet_25g(), LinkSpec::ethernet_10g()),
        },
    ]
}

/// The full tournament bracket (≥ 4 networks).
pub fn bracket() -> Vec<ModelSpec> {
    vec![
        models::resnet(50),
        models::densenet121(12, 32),
        models::mobilenet_v3_large(1.0),
        models::bert(24, 128),
        models::ffnn16(4_096),
    ]
}

/// Small networks for the CI smoke run.
pub fn smoke_bracket() -> Vec<ModelSpec> {
    vec![models::ffnn16(256), models::rnn16(64, 4)]
}

/// Builds the cell cost table: per-layer kernel times from the FLOP
/// model scaled by the fleet's bottleneck factor (the synchronous
/// barrier waits for the slowest worker), synchronization times from
/// the duplex link's round trip over each layer's parameter bytes. On a
/// uniform fleet the scaling is the identity, so the homogeneous mix
/// reproduces the plain single-spec cost byte for byte.
pub fn mix_cost(model: &ModelSpec, batch: usize, mix: &Mix) -> TableCost {
    let mut cost = to_table_cost(model, batch, &GpuProfile::v100());
    let bytes = weight_bytes(model);
    let slow = mix.fleet.bottleneck();
    for (i, &wb) in bytes.iter().enumerate() {
        let c = cost.layer_mut(LayerId(i + 1));
        c.forward = slow.scale(c.forward);
        c.output_grad = slow.scale(c.output_grad);
        c.weight_grad = slow.scale(c.weight_grad);
        c.update = slow.scale(c.update);
        c.sync_weight = mix.link.sync_ns(wb);
    }
    cost
}

/// One (network, mix, strategy) tournament cell. All times are exact
/// simulated nanoseconds.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Network name.
    pub model: String,
    /// Layer count of the network.
    pub layers: usize,
    /// Batch size (the model's default).
    pub batch: usize,
    /// Device-mix identifier.
    pub mix: &'static str,
    /// Strategy identifier.
    pub strategy: &'static str,
    /// Ops in the generated schedule.
    pub ops: usize,
    /// Certified makespan (prediction == simulation, tolerance 0).
    pub makespan_ns: SimTime,
    /// Reconciled memory peak (static ledger == instrumented counter).
    pub peak_bytes: u64,
    /// Makespan ratio of the conventional baseline over this strategy.
    pub speedup: f64,
}

/// One (network, mix) fleet row: the heterogeneous simulator's view of
/// the conventional backward order on that mix.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Network name.
    pub model: String,
    /// Device-mix identifier.
    pub mix: &'static str,
    /// Fleet makespan under the heterogeneous simulator.
    pub fleet_makespan_ns: SimTime,
    /// Index of the straggling worker.
    pub straggler: usize,
}

/// Tournament output: the cells plus the per-mix fleet rows.
#[derive(Debug, Clone, Default)]
pub struct Tournament {
    /// Every (network, mix, strategy) cell.
    pub cells: Vec<Cell>,
    /// Every (network, mix) heterogeneous-simulator row.
    pub fleet_rows: Vec<FleetRow>,
}

/// Runs one (network, mix) group: every applicable strategy, each cell
/// contract-checked, plus the fleet differential row.
///
/// # Panics
///
/// Panics when any cell breaks a contract — a dirty report, a
/// prediction/simulation mismatch, or a ledger/counter mismatch. The
/// tournament is also the conformance proof at model scale, so a
/// violation must fail loudly rather than rank a bogus schedule.
pub fn run_group(model: &ModelSpec, mix: &Mix) -> (Vec<Cell>, FleetRow) {
    let layers = model.num_layers();
    let batch = model.default_batch;
    let cost = mix_cost(model, batch, mix);
    let shape = Shape::DataParallel { layers };

    let mut cells = Vec::new();
    let mut conventional: Option<SimTime> = None;
    for s in zoo() {
        if !s.applicable(shape) {
            continue;
        }
        let g = s
            .generate(shape, &cost)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), model.name));
        let report = g.verify(&cost, None);
        assert!(
            report.is_clean(),
            "{} on {} ({}): {report}",
            s.name(),
            model.name,
            mix.name
        );
        let makespan = g
            .certified(&cost)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), model.name));
        let (ledger, counter) = g
            .mem_reconciled(&cost)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), model.name));
        assert_eq!(
            ledger,
            counter,
            "{} on {} ({}): ledger peak diverged from instrumented counter",
            s.name(),
            model.name,
            mix.name
        );
        if s.name() == "conventional" {
            conventional = Some(makespan);
        }
        cells.push(Cell {
            model: model.name.clone(),
            layers,
            batch,
            mix: mix.name,
            strategy: s.name(),
            ops: g.schedule.num_ops(),
            makespan_ns: makespan,
            peak_bytes: ledger,
            speedup: 0.0,
        });
    }
    let base = conventional.expect("conventional is applicable to every shape");
    for c in &mut cells {
        c.speedup = base as f64 / c.makespan_ns.max(1) as f64;
    }

    // Fleet differential: the heterogeneous simulator on the
    // conventional backward order. The compute table here is the
    // *unscaled* cost (the simulator applies each worker's factor
    // itself); on the homogeneous mix the outcome must equal the plain
    // data-parallel simulator exactly.
    let graph = shape.graph().expect("data-parallel graph builds");
    let mut unscaled = to_table_cost(model, batch, &GpuProfile::v100());
    for (i, &wb) in weight_bytes(model).iter().enumerate() {
        unscaled.layer_mut(LayerId(i + 1)).sync_weight = mix.link.sync_ns(wb);
    }
    let backward = reverse_first_k(&graph, 0, None::<(u64, &TableCost)>).expect("k=0 order builds");
    let policy = CommPolicy::PriorityByLayer;
    let hetero = simulate_data_parallel_hetero(
        &graph,
        &backward,
        &unscaled,
        policy,
        0,
        &mix.fleet.speed_factors(),
    )
    .expect("fleet simulates");
    if mix.fleet.is_uniform() {
        let homo = simulate_data_parallel(&graph, &backward, &unscaled, policy)
            .expect("homogeneous sim")
            .makespan();
        assert_eq!(
            hetero.makespan(),
            homo,
            "{}: uniform fleet diverged from the homogeneous simulator",
            model.name
        );
    }
    let row = FleetRow {
        model: model.name.clone(),
        mix: mix.name,
        fleet_makespan_ns: hetero.makespan(),
        straggler: hetero.straggler(),
    };
    (cells, row)
}

/// Runs the full bracket × mix tournament.
pub fn run(bracket: &[ModelSpec]) -> Tournament {
    let mut t = Tournament::default();
    for model in bracket {
        for mix in mixes() {
            let (cells, row) = run_group(model, &mix);
            t.cells.extend(cells);
            t.fleet_rows.push(row);
        }
    }
    t
}

/// The winner (smallest certified makespan, strategy order breaking
/// ties) of each (network, mix) group.
pub fn winners(t: &Tournament) -> Vec<&Cell> {
    let mut out: Vec<&Cell> = Vec::new();
    for c in &t.cells {
        match out
            .iter_mut()
            .find(|w| w.model == c.model && w.mix == c.mix)
        {
            None => out.push(c),
            Some(w) if c.makespan_ns < w.makespan_ns => *w = c,
            Some(_) => {}
        }
    }
    out
}

fn mix_to_json(m: &Mix) -> Value {
    obj([
        ("name", m.name.into()),
        ("workers", Value::Num(m.fleet.len() as f64)),
        ("gpu", m.fleet.workers[0].gpu.name.into()),
        (
            "speed_percents",
            Value::Arr(
                m.fleet
                    .speed_factors()
                    .iter()
                    .map(|s| Value::Num(f64::from(s.percent)))
                    .collect(),
            ),
        ),
        ("uplink", m.link.up.name.into()),
        ("downlink", m.link.down.name.into()),
    ])
}

fn cell_to_json(c: &Cell) -> Value {
    obj([
        ("model", c.model.as_str().into()),
        ("layers", Value::Num(c.layers as f64)),
        ("batch", Value::Num(c.batch as f64)),
        ("mix", c.mix.into()),
        ("strategy", c.strategy.into()),
        ("ops", Value::Num(c.ops as f64)),
        ("makespan_ns", Value::Num(c.makespan_ns as f64)),
        ("peak_bytes", Value::Num(c.peak_bytes as f64)),
        ("speedup_vs_conventional", Value::Num(c.speedup)),
        ("clean", Value::Bool(true)),
        ("certified", Value::Bool(true)),
    ])
}

/// Renders the tournament as the `BENCH_tournament.json` document.
/// Every field is deterministic, so the document is byte-identical
/// across runs.
pub fn to_json(t: &Tournament) -> Value {
    obj([
        ("bench", "tournament".into()),
        (
            "strategies",
            Value::Arr(
                ooo_cluster::strategy::zoo()
                    .iter()
                    .filter(|s| s.applicable(Shape::DataParallel { layers: 4 }))
                    .map(|s| {
                        obj([
                            ("name", s.name().into()),
                            ("description", s.description().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "mixes",
            Value::Arr(mixes().iter().map(mix_to_json).collect()),
        ),
        (
            "cells",
            Value::Arr(t.cells.iter().map(cell_to_json).collect()),
        ),
        (
            "fleet",
            Value::Arr(
                t.fleet_rows
                    .iter()
                    .map(|r| {
                        obj([
                            ("model", r.model.as_str().into()),
                            ("mix", r.mix.into()),
                            ("fleet_makespan_ns", Value::Num(r.fleet_makespan_ns as f64)),
                            ("straggler", Value::Num(r.straggler as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "winners",
            Value::Arr(
                winners(t)
                    .iter()
                    .map(|w| {
                        obj([
                            ("model", w.model.as_str().into()),
                            ("mix", w.mix.into()),
                            ("strategy", w.strategy.into()),
                            ("makespan_ns", Value::Num(w.makespan_ns as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `figures tournament` report: the smoke bracket rendered as a
/// makespan table per (network, mix), winners starred.
pub fn tournament_figure() -> crate::FigureReport {
    let t = run(&smoke_bracket());
    let wins: Vec<(String, &'static str, &'static str)> = winners(&t)
        .iter()
        .map(|w| (w.model.clone(), w.mix, w.strategy))
        .collect();
    let mut lines = vec![format!(
        "{:<12} {:<14} {:<16} {:>12} {:>9}",
        "network", "mix", "strategy", "makespan_ms", "speedup"
    )];
    for c in &t.cells {
        let star = if wins
            .iter()
            .any(|(m, x, s)| *m == c.model && *x == c.mix && *s == c.strategy)
        {
            " *"
        } else {
            ""
        };
        lines.push(format!(
            "{:<12} {:<14} {:<16} {:>12.3} {:>8.2}x{star}",
            c.model,
            c.mix,
            c.strategy,
            c.makespan_ns as f64 / 1e6,
            c.speedup,
        ));
    }
    for r in &t.fleet_rows {
        lines.push(format!(
            "fleet {:<12} {:<14} makespan {:>10.3} ms, straggler worker {}",
            r.model,
            r.mix,
            r.fleet_makespan_ns as f64 / 1e6,
            r.straggler
        ));
    }
    lines.push("(*) group winner; every cell is OV-clean, certified at tolerance 0,".into());
    lines.push("and memory-reconciled; full bracket in BENCH_tournament.json".into());
    crate::FigureReport {
        id: "tournament",
        title: "Strategy tournament across networks and device mixes",
        paper: "extension: the zoo generalizes Sec 5's schedulers; OOO strategies win every mix",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tournament_is_deterministic_and_covered() {
        let a = run(&smoke_bracket());
        let b = run(&smoke_bracket());
        assert_eq!(to_json(&a).to_pretty(), to_json(&b).to_pretty());
        // 2 networks x 2 mixes x 6 data-parallel strategies.
        assert_eq!(a.cells.len(), 24);
        assert_eq!(a.fleet_rows.len(), 4);
        // The conventional baseline never beats the whole field.
        for w in winners(&a) {
            assert!(w.speedup >= 1.0);
        }
    }

    #[test]
    fn heterogeneous_mix_is_strictly_slower_per_cell() {
        let model = models::ffnn16(256);
        let mixes = mixes();
        let (homo, _) = run_group(&model, &mixes[0]);
        let (hetero, _) = run_group(&model, &mixes[1]);
        for (h, x) in homo.iter().zip(&hetero) {
            assert_eq!(h.strategy, x.strategy);
            assert!(
                x.makespan_ns > h.makespan_ns,
                "{}: heterogeneous mix must cost more than NVLink-homogeneous",
                h.strategy
            );
        }
    }
}
