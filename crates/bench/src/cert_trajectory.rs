//! The certification trajectory benchmark behind `BENCH_cert.json`.
//!
//! For each seed this runs the full heuristic → tuned → certified
//! pipeline on a seeded random data-parallel instance: the conventional
//! (`k = 0`) realization is the heuristic baseline, the local-search
//! autotuner improves it, and the [`ooo_cert`] branch-and-bound solver
//! then certifies the tuned order — proving it optimal, exhibiting a
//! strictly better witness, or bracketing the optimum when the node
//! budget runs out. Each stage's makespan and wall time is recorded,
//! together with the solver's incremental-evaluation counters, whose
//! `full_equivalent / rescored` ratio is the measured speedup of delta
//! evaluation over full rescoring.

use ooo_core::cost::{LayerCost, TableCost};
use ooo_core::datapar::CommPolicy;
use ooo_core::json::{obj, Value};
use ooo_core::op::LayerId;
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::{SimTime, TrainGraph};
use ooo_tune::order::KFamily;
use ooo_tune::TuneOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One seed's measurements.
#[derive(Debug, Clone)]
pub struct CertRow {
    /// The RNG seed.
    pub seed: u64,
    /// Layer count of the instance.
    pub layers: usize,
    /// Certified makespan of the conventional (`k = 0`) baseline.
    pub heuristic: SimTime,
    /// Predicted makespan of the autotuned order.
    pub tuned: SimTime,
    /// Best makespan the exact solver proved reachable.
    pub certified: SimTime,
    /// Certified lower bound at the root of the search.
    pub lower_bound: SimTime,
    /// Certificate status: `optimal`, `improvable`, or `unknown`.
    pub status: &'static str,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Ops rescored by incremental delta evaluation.
    pub delta_rescored: u64,
    /// Ops a full re-evaluation would have rescored.
    pub delta_full_equivalent: u64,
    /// Measured delta-vs-full speedup ratio.
    pub delta_speedup: f64,
    /// Wall time of the heuristic stage, microseconds.
    pub heuristic_us: f64,
    /// Wall time of the tuning stage, microseconds.
    pub tune_us: f64,
    /// Wall time of the certification stage, microseconds.
    pub cert_us: f64,
}

fn rand_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..8);
        c.output_grad = rng.gen_range(1..8);
        c.weight_grad = rng.gen_range(1..12);
        c.update = rng.gen_range(0..2);
        c.sync_weight = rng.gen_range(1..10);
    }
    cost
}

/// Runs the pipeline for one seed. Instances stay small (3–4 layers)
/// so the exact solver certifies within its default budget.
///
/// # Panics
///
/// Panics when a stage fails on its own output — every order in the
/// pipeline is valid by construction, so a failure is an engine bug
/// the benchmark must not paper over.
pub fn run_seed(seed: u64) -> CertRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let l = 3 + (seed % 2) as usize;
    let graph = TrainGraph::data_parallel(l);
    let cost = rand_cost(l, &mut rng);
    let policy = CommPolicy::PriorityByLayer;

    let t0 = Instant::now();
    let baseline = reverse_first_k(&graph, 0, None::<(u64, &TableCost)>).expect("k=0 order");
    let heuristic =
        ooo_tune::order::certify_order(&graph, &baseline, &cost, policy).expect("baseline runs");
    let heuristic_us = t0.elapsed().as_secs_f64() * 1e6;

    let t1 = Instant::now();
    let tuned = ooo_tune::order::tune_backward_order(
        &graph,
        &baseline,
        Some(0),
        &cost,
        policy,
        KFamily::ReverseFirstK,
        &TuneOptions::default(),
    )
    .expect("tuner runs");
    let tune_us = t1.elapsed().as_secs_f64() * 1e6;

    let t2 = Instant::now();
    let (_, solved) = ooo_cert::certify_order(
        &graph,
        &tuned.order,
        &cost,
        policy,
        &ooo_cert::Budget::default(),
    )
    .expect("certifier runs");
    let cert_us = t2.elapsed().as_secs_f64() * 1e6;

    CertRow {
        seed,
        layers: l,
        heuristic,
        tuned: tuned.predicted,
        certified: solved.certificate.best_makespan(),
        lower_bound: solved.lower_bound,
        status: solved.certificate.status(),
        nodes: solved.nodes,
        delta_rescored: solved.delta_rescored,
        delta_full_equivalent: solved.delta_full_equivalent,
        delta_speedup: solved.delta_speedup(),
        heuristic_us,
        tune_us,
        cert_us,
    }
}

/// Runs seeds 1–10 (the committed `BENCH_cert.json` configuration).
pub fn run_default() -> Vec<CertRow> {
    (1..=10).map(run_seed).collect()
}

/// Renders rows as the `BENCH_cert.json` document.
pub fn to_json(rows: &[CertRow]) -> Value {
    let optimal = rows.iter().filter(|r| r.status == "optimal").count();
    let speedups: Vec<f64> = rows.iter().map(|r| r.delta_speedup).collect();
    let mean_speedup = if speedups.is_empty() {
        1.0
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    let seeds: Vec<Value> = rows
        .iter()
        .map(|r| {
            obj([
                ("seed", Value::Num(r.seed as f64)),
                ("layers", Value::Num(r.layers as f64)),
                ("heuristic_makespan", Value::Num(r.heuristic as f64)),
                ("tuned_makespan", Value::Num(r.tuned as f64)),
                ("certified_makespan", Value::Num(r.certified as f64)),
                ("lower_bound", Value::Num(r.lower_bound as f64)),
                ("status", Value::Str(r.status.to_string())),
                ("nodes", Value::Num(r.nodes as f64)),
                ("delta_rescored", Value::Num(r.delta_rescored as f64)),
                (
                    "delta_full_equivalent",
                    Value::Num(r.delta_full_equivalent as f64),
                ),
                ("delta_speedup", Value::Num(r.delta_speedup)),
                ("heuristic_wall_us", Value::Num(r.heuristic_us)),
                ("tune_wall_us", Value::Num(r.tune_us)),
                ("cert_wall_us", Value::Num(r.cert_us)),
            ])
        })
        .collect();
    obj([
        ("bench", Value::Str("cert_trajectory".to_string())),
        (
            "pipeline",
            Value::Str(
                "heuristic (k=0) -> tuned (local search) -> certified (branch-and-bound)"
                    .to_string(),
            ),
        ),
        ("seeds", Value::Arr(seeds)),
        (
            "summary",
            obj([
                ("instances", Value::Num(rows.len() as f64)),
                ("proven_optimal", Value::Num(optimal as f64)),
                ("mean_delta_speedup", Value::Num(mean_speedup)),
            ]),
        ),
    ])
}

/// The `certgap` figure: one line per seed with the full trajectory
/// and the optimality gap the certificate closes.
pub fn certgap() -> crate::FigureReport {
    let rows = run_default();
    let mut lines = vec![format!(
        "{:<5} {:>2} {:>9} {:>6} {:>9} {:>6} {:>10} {:>6} {:>7}",
        "seed", "l", "heuristic", "tuned", "certified", "lb", "status", "nodes", "dspeed"
    )];
    for r in &rows {
        lines.push(format!(
            "{:<5} {:>2} {:>9} {:>6} {:>9} {:>6} {:>10} {:>6} {:>6.1}x",
            r.seed,
            r.layers,
            r.heuristic,
            r.tuned,
            r.certified,
            r.lower_bound,
            r.status,
            r.nodes,
            r.delta_speedup
        ));
    }
    let optimal = rows.iter().filter(|r| r.status == "optimal").count();
    lines.push(format!(
        "proven optimal: {optimal}/{} instances",
        rows.len()
    ));
    crate::FigureReport {
        id: "certgap",
        title: "Exact certification of tuned schedules (branch-and-bound)",
        paper: "OOO scheduling is a heuristic for an NP-hard problem; this repo adds exact \
                certificates on small instances",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_is_monotone_and_bracketed() {
        // lower bound <= certified <= tuned <= heuristic, on every seed.
        for seed in [1u64, 2, 3] {
            let r = run_seed(seed);
            assert!(r.lower_bound <= r.certified, "seed {seed}: {r:?}");
            assert!(r.certified <= r.tuned, "seed {seed}: {r:?}");
            assert!(r.tuned <= r.heuristic, "seed {seed}: {r:?}");
            assert!(r.delta_speedup >= 1.0, "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn json_document_carries_all_seeds() {
        let rows: Vec<CertRow> = [1u64, 2].iter().map(|&s| run_seed(s)).collect();
        let doc = to_json(&rows);
        let text = doc.to_pretty();
        let parsed = Value::parse(&text).expect("round-trips");
        let Value::Obj(fields) = &parsed else {
            panic!("not an object");
        };
        let seeds = fields
            .iter()
            .find(|(k, _)| k == "seeds")
            .map(|(_, v)| v)
            .expect("seeds field");
        let Value::Arr(items) = seeds else {
            panic!("seeds not an array");
        };
        assert_eq!(items.len(), 2);
    }
}
