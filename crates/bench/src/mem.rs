//! The memory-ledger benchmark behind `BENCH_mem.json` and
//! `figures mem`.
//!
//! Two scenario families over the model zoo, both answered by the exact
//! static ledger of `ooo_verify::mem` (no simulation in the loop):
//!
//! - **early_free** — the `OM401` story: a data-parallel backward
//!   window that hands its synced weight gradients to an unscheduled
//!   update tail retains every `wgrad` to the window end; applying the
//!   advisory's free-after-sync plan measures how much of the peak that
//!   retention costs per model.
//! - **cap** — the memory-capped tuner: starting from a deferred-update
//!   single-GPU layout, tighten [`ooo_tune::TuneOptions::memory_cap`]
//!   stepwise below the layout's own peak and record the achieved peak
//!   and the makespan paid at each step — the exact memory/latency
//!   trade the cap exposes.
//!
//! Peaks, caps, and makespans are deterministic; only wall times vary
//! run to run, and `--smoke` omits them so a double run is
//! byte-identical.

use ooo_core::cost::TableCost;
use ooo_core::json::{obj, Value};
use ooo_core::memory::Buffer;
use ooo_core::op::{LayerId, Op};
use ooo_core::schedule::Schedule;
use ooo_core::{SimTime, TrainGraph};
use ooo_models::cost::to_table_cost;
use ooo_models::gpu::GpuProfile;
use ooo_models::zoo;
use ooo_tune::{tune_schedule, TuneOptions};
use ooo_verify::mem::{ledger_of_spans, spans_of_prediction, FreePlan};
use ooo_verify::predict::predict_makespan;
use std::time::Instant;

/// One model's `OM401` early-free outcome.
#[derive(Debug, Clone)]
pub struct EarlyFreeRow {
    /// Zoo model name.
    pub model: String,
    /// Layer count.
    pub layers: usize,
    /// Ledger peak with every `wgrad` retained to the window end.
    pub retained_peak: u64,
    /// Ledger peak with the free-after-sync plan applied.
    pub early_free_peak: u64,
}

/// One (model, cap) point of the memory-capped tuning sweep.
#[derive(Debug, Clone)]
pub struct CapRow {
    /// Zoo model name.
    pub model: String,
    /// Cap as a percentage of the deferred layout's own peak.
    pub cap_pct: u64,
    /// The cap in bytes.
    pub cap: u64,
    /// Ledger peak of the tuned schedule.
    pub peak: u64,
    /// Peak of the untuned deferred layout.
    pub baseline_peak: u64,
    /// Predicted makespan of the tuned schedule.
    pub makespan: SimTime,
    /// Predicted makespan of the uncapped tune of the same layout.
    pub uncapped_makespan: SimTime,
    /// Wall time of the capped tune, microseconds.
    pub wall_us: f64,
}

/// Scenario sizes; [`smoke_sizes`] keeps the CI run fast.
#[derive(Debug, Clone)]
pub struct Sizes {
    /// Zoo models in the early-free scan (prefix of Table 1).
    pub early_free_models: usize,
    /// Batch size for the zoo cost tables.
    pub batch: usize,
    /// Cap percentages swept per model.
    pub cap_pcts: Vec<u64>,
}

/// Full sizes for the committed `BENCH_mem.json`.
pub fn bench_sizes() -> Sizes {
    Sizes {
        early_free_models: 12,
        batch: 16,
        cap_pcts: vec![100, 95, 90, 85],
    }
}

/// Small sizes for the CI smoke run and the `figures mem` report.
pub fn smoke_sizes() -> Sizes {
    Sizes {
        early_free_models: 4,
        batch: 16,
        cap_pcts: vec![100, 90],
    }
}

/// The deferred-update single-lane layout: eager `dW` run, update tail
/// at the end — every `wgrad` stays resident until its late update.
fn deferred_update_layout(l: usize) -> Schedule {
    let mut ops = vec![Op::Loss];
    for i in (2..=l).rev() {
        ops.push(Op::OutputGrad(LayerId(i)));
    }
    for i in (1..=l).rev() {
        ops.push(Op::WeightGrad(LayerId(i)));
    }
    for i in 1..=l {
        ops.push(Op::Update(LayerId(i)));
    }
    for i in 1..=l {
        ops.push(Op::Forward(LayerId(i)));
    }
    Schedule::single_lane("gpu", ops)
}

fn early_free_row(model: &ooo_models::spec::ModelSpec, batch: usize) -> EarlyFreeRow {
    let cost = to_table_cost(model, batch, &GpuProfile::v100());
    let l = cost.layers();
    let graph = TrainGraph::data_parallel(l);
    // The backward window: updates (and next-iteration forwards) live
    // outside it, so the derived lifetimes retain every wgrad.
    let mut order = graph.conventional_backprop();
    order.retain(|op| !matches!(op, Op::Update(_) | Op::Forward(_)));
    let s = Schedule::single_lane("gpu", order);
    let pred = predict_makespan(&graph, &s, &cost).expect("window executes");
    let spans = spans_of_prediction(&pred);
    let (retained, _) = ledger_of_spans(&graph, &cost, &spans, None);
    let plan = FreePlan {
        frees: (1..=l)
            .map(|i| (Buffer::WeightGrad(i), Op::SyncWeightGrad(LayerId(i))))
            .collect(),
    };
    let (early, _) = ledger_of_spans(&graph, &cost, &spans, Some(&plan));
    EarlyFreeRow {
        model: model.name.clone(),
        layers: l,
        retained_peak: retained.peak,
        early_free_peak: early.peak,
    }
}

fn cap_rows(name: &str, cost: &TableCost, pcts: &[u64]) -> Vec<CapRow> {
    let l = cost.layers();
    let graph = TrainGraph::single_gpu(l);
    let baseline = deferred_update_layout(l);
    let base_peak = ooo_verify::mem::schedule_peak(&graph, &baseline, cost).expect("layout legal");
    let uncapped = tune_schedule(&graph, &baseline, cost, &TuneOptions::default())
        .expect("uncapped tune succeeds");
    pcts.iter()
        .map(|&pct| {
            let cap = base_peak * pct / 100;
            let opts = TuneOptions {
                memory_cap: Some(cap),
                ..TuneOptions::default()
            };
            let t = Instant::now();
            let tuned = tune_schedule(&graph, &baseline, cost, &opts).expect("capped tune runs");
            let wall_us = t.elapsed().as_secs_f64() * 1e6;
            CapRow {
                model: name.to_string(),
                cap_pct: pct,
                cap,
                peak: tuned.peak.expect("cap set implies a reported peak"),
                baseline_peak: base_peak,
                makespan: tuned.predicted,
                uncapped_makespan: uncapped.predicted,
                wall_us,
            }
        })
        .collect()
}

/// Runs both scenario families at the given sizes.
pub fn run_bench(sizes: &Sizes) -> (Vec<EarlyFreeRow>, Vec<CapRow>) {
    let early: Vec<EarlyFreeRow> = zoo::table1()
        .iter()
        .take(sizes.early_free_models)
        .map(|(model, _, _)| early_free_row(model, sizes.batch))
        .collect();
    // The capped-tune sweep runs on the two 16-layer zoo networks: big
    // enough that deferral matters, small enough that full-ledger
    // candidate scoring stays fast.
    let mut caps = Vec::new();
    for (name, model) in [
        ("FFNN-16", zoo::ffnn16(4_096)),
        ("RNN-16", zoo::rnn16(1_024, 50)),
    ] {
        let cost = to_table_cost(&model, sizes.batch, &GpuProfile::v100());
        caps.extend(cap_rows(name, &cost, &sizes.cap_pcts));
        if sizes.cap_pcts.len() <= 2 {
            break; // smoke mode: one model is enough
        }
    }
    (early, caps)
}

fn early_to_json(r: &EarlyFreeRow) -> Value {
    let saved = r.retained_peak.saturating_sub(r.early_free_peak);
    obj([
        ("model", Value::Str(r.model.clone())),
        ("layers", Value::Num(r.layers as f64)),
        ("retained_peak_bytes", Value::Num(r.retained_peak as f64)),
        (
            "early_free_peak_bytes",
            Value::Num(r.early_free_peak as f64),
        ),
        (
            "peak_reduction_pct",
            Value::Num((saved as f64 / r.retained_peak.max(1) as f64 * 1000.0).round() / 10.0),
        ),
    ])
}

fn cap_to_json(r: &CapRow, with_timings: bool) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![
        ("model", Value::Str(r.model.clone())),
        ("cap_pct", Value::Num(r.cap_pct as f64)),
        ("cap_bytes", Value::Num(r.cap as f64)),
        ("peak_bytes", Value::Num(r.peak as f64)),
        ("baseline_peak_bytes", Value::Num(r.baseline_peak as f64)),
        ("cap_met", Value::Bool(r.peak <= r.cap)),
        ("makespan", Value::Num(r.makespan as f64)),
        ("uncapped_makespan", Value::Num(r.uncapped_makespan as f64)),
    ];
    if with_timings {
        fields.push(("wall_us", Value::Num(r.wall_us)));
    }
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders both scenario sets as the `BENCH_mem.json` document. With
/// `with_timings = false` (the `--smoke` mode) only the deterministic
/// fields are emitted, so a double run must produce byte-identical
/// output.
pub fn to_json(early: &[EarlyFreeRow], caps: &[CapRow], with_timings: bool) -> Value {
    obj([
        ("bench", "mem".into()),
        (
            "early_free",
            Value::Arr(early.iter().map(early_to_json).collect()),
        ),
        (
            "capped_tuning",
            Value::Arr(caps.iter().map(|r| cap_to_json(r, with_timings)).collect()),
        ),
    ])
}

/// The `figures mem` report: smoke-size scenarios measured live (the
/// full sweep lives in the committed `BENCH_mem.json` regenerated by
/// `mem-bench`).
pub fn mem_figure() -> crate::FigureReport {
    let (early, caps) = run_bench(&smoke_sizes());
    let mut lines = vec![format!(
        "{:>18} {:>7} {:>16} {:>16} {:>8}",
        "model", "layers", "retained_peak", "early_free_peak", "saved"
    )];
    for r in &early {
        let saved = r.retained_peak.saturating_sub(r.early_free_peak);
        lines.push(format!(
            "{:>18} {:>7} {:>16} {:>16} {:>7.1}%",
            r.model,
            r.layers,
            r.retained_peak,
            r.early_free_peak,
            saved as f64 / r.retained_peak.max(1) as f64 * 100.0
        ));
    }
    lines.push(format!(
        "{:>18} {:>7} {:>16} {:>16} {:>8} {:>12}",
        "model", "cap%", "cap", "peak", "met", "makespan"
    ));
    for r in &caps {
        lines.push(format!(
            "{:>18} {:>7} {:>16} {:>16} {:>8} {:>12}",
            r.model,
            r.cap_pct,
            r.cap,
            r.peak,
            if r.peak <= r.cap { "yes" } else { "NO" },
            r.makespan
        ));
    }
    lines.push("(full sizes: see committed BENCH_mem.json / mem-bench)".into());
    crate::FigureReport {
        id: "mem",
        title: "Static memory ledger: OM401 early-free savings and memory-capped tuning",
        paper: "ooo backprop must not inflate peak memory beyond the device budget (Sec 4)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_is_deterministic_and_caps_are_met() {
        let (ea, ca) = run_bench(&smoke_sizes());
        let (eb, cb) = run_bench(&smoke_sizes());
        assert_eq!(
            to_json(&ea, &ca, false).to_pretty(),
            to_json(&eb, &cb, false).to_pretty(),
            "smoke output must be byte-identical across runs"
        );
        for r in &ea {
            assert!(
                r.early_free_peak <= r.retained_peak,
                "{}: early free cannot raise the peak",
                r.model
            );
        }
        assert!(
            ea.iter().any(|r| r.early_free_peak < r.retained_peak),
            "at least one model must save memory from early frees"
        );
        for r in &ca {
            assert!(
                r.peak <= r.cap,
                "{} at {}%: peak {} over cap {}",
                r.model,
                r.cap_pct,
                r.peak,
                r.cap
            );
            assert!(
                r.makespan >= r.uncapped_makespan,
                "{} at {}%: a cap cannot beat the uncapped makespan",
                r.model,
                r.cap_pct
            );
        }
    }
}
