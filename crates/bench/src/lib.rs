//! # ooo-bench — the figure/table regeneration harness
//!
//! One function per table and figure of the paper's evaluation; each
//! returns a [`FigureReport`] with the measured rows and the paper's
//! claim for side-by-side comparison. The `figures` binary prints them;
//! EXPERIMENTS.md records a snapshot.

#![warn(missing_docs)]

pub mod cert_trajectory;
pub mod figures;
pub mod mem;
pub mod scale;
pub mod serve;
pub mod tournament;

/// A regenerated figure or table.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig7"`.
    pub id: &'static str,
    /// Title matching the paper.
    pub title: &'static str,
    /// The paper's headline claim for this figure.
    pub paper: &'static str,
    /// Measured output lines.
    pub lines: Vec<String>,
}

impl FigureReport {
    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "================ {} — {} ================\n",
            self.id, self.title
        ));
        out.push_str(&format!("paper: {}\n", self.paper));
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// All figure ids in presentation order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11a",
        "fig11b",
        "fig12",
        "fig13a",
        "fig13b",
        "sec6",
        "sec82",
        "sec83",
        "ablations",
        "recompute",
        "tracemetrics",
        "chaosrecovery",
        "perfadvice",
        "tuned",
        "certgap",
        "scale",
        "serve",
        "mem",
        "tournament",
    ]
}

/// Generates the report for one id.
///
/// # Panics
///
/// Panics on unknown ids (the binary validates them first).
pub fn generate(id: &str) -> FigureReport {
    match id {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig1" => figures::fig1(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "fig4" => figures::fig4(),
        "fig5" => figures::fig5(),
        "fig6" => figures::fig6(),
        "fig7" => figures::fig7(),
        "fig8" => figures::fig8(),
        "fig9" => figures::fig9(),
        "fig10" => figures::fig10(),
        "fig11a" => figures::fig11a(),
        "fig11b" => figures::fig11b(),
        "fig12" => figures::fig12(),
        "fig13a" => figures::fig13a(),
        "fig13b" => figures::fig13b(),
        "sec6" => figures::sec6(),
        "sec82" => figures::sec82(),
        "sec83" => figures::sec83(),
        "ablations" => figures::ablations(),
        "recompute" => figures::recompute(),
        "tracemetrics" => figures::tracemetrics(),
        "chaosrecovery" => figures::chaosrecovery(),
        "perfadvice" => figures::perfadvice(),
        "tuned" => figures::tuned(),
        "certgap" => cert_trajectory::certgap(),
        "scale" => scale::scale_figure(),
        "serve" => serve::serve_figure(),
        "mem" => mem::mem_figure(),
        "tournament" => tournament::tournament_figure(),
        other => panic!("unknown figure id {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_generate() {
        let ids = all_ids();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        // Generate the cheap unit-time ones to smoke-test dispatch.
        for id in ["fig3", "fig4", "fig5", "fig6", "fig12", "table1", "table2"] {
            let r = generate(id);
            assert!(!r.lines.is_empty(), "{id} produced no lines");
            assert!(r.render().contains(id));
        }
    }
}
