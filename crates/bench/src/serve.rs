//! The serving-layer benchmark behind `BENCH_serve.json` and
//! `figures serve`.
//!
//! Every scenario drives the in-process daemon ([`ooo_serve::serve`])
//! over an in-memory request stream, so the numbers measure the serving
//! layer itself — admission, queueing, dispatch, caching, response
//! ordering — plus the scheduling work it fronts:
//!
//! - **startup** — an empty stream: pool spawn + teardown overhead,
//!   subtracted from every other scenario.
//! - **throughput** — a burst of distinct heuristic-tier `order`
//!   requests with the cache disabled: the floor the daemon must clear
//!   for interactive use.
//! - **cold / hits** — one full-tier tune served cold, then the same
//!   request replayed many times under fresh ids: the per-hit cost of
//!   the content-addressed cache versus re-running the tuner, which the
//!   committed `BENCH_serve.json` requires to be a ≥ 10× speedup.
//! - **tier_full / tier_greedy / tier_heuristic** — the same instance
//!   at each degradation tier, quantifying what an overloaded daemon
//!   trades away when it sheds work.
//!
//! The request counts, response counts, and cache-hit counts are
//! deterministic; only wall times vary run to run. `--smoke` mode emits
//! the deterministic fields alone so a double run is byte-identical.

use ooo_core::json::{obj, Value};
use ooo_serve::{serve, ServeConfig, ServeSummary};
use std::io::Cursor;
use std::time::Instant;

/// Heuristic-tier requests/second the committed benchmark records as
/// the daemon's floor. Conservative: a heuristic-tier order is
/// microseconds of scheduling work plus JSON framing.
pub const THROUGHPUT_FLOOR_RPS: f64 = 200.0;
/// Required cache-hit speedup over a cold full-tier tune.
pub const CACHE_SPEEDUP_FLOOR: f64 = 10.0;

/// One benchmark scenario's outcome. Wall time in microseconds.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Scenario name (`startup`, `throughput`, `cold`, `hits`,
    /// `tier_*`).
    pub scenario: &'static str,
    /// Request lines fed to the daemon.
    pub requests: usize,
    /// Responses emitted (must equal `requests`).
    pub responses: u64,
    /// Responses with `"status":"ok"`.
    pub ok: u64,
    /// Responses served from the schedule cache.
    pub cache_served: u64,
    /// Wall time of the whole serve run, including pool startup.
    pub wall_us: f64,
}

/// Scenario sizes; [`smoke_sizes`] keeps the CI run under a second.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// Distinct requests in the throughput burst.
    pub burst: usize,
    /// Cache-hit replays of the cold request.
    pub replays: usize,
    /// Requests per degradation tier.
    pub per_tier: usize,
    /// Layer count of the full-tier tune being cached.
    pub tune_layers: usize,
}

/// Full sizes for the committed `BENCH_serve.json`.
pub fn bench_sizes() -> Sizes {
    Sizes {
        burst: 256,
        replays: 64,
        per_tier: 4,
        tune_layers: 9,
    }
}

/// Small sizes for the CI smoke run and the `figures serve` report.
pub fn smoke_sizes() -> Sizes {
    Sizes {
        burst: 24,
        replays: 8,
        per_tier: 2,
        tune_layers: 6,
    }
}

fn run_stream(input: &str, config: &ServeConfig) -> (ServeSummary, f64) {
    let mut out = Vec::new();
    let t = Instant::now();
    let summary = serve(Cursor::new(input.as_bytes()), &mut out, config)
        .expect("in-process serve over a Vec sink cannot fail");
    (summary, t.elapsed().as_secs_f64() * 1e6)
}

fn config(cache: usize) -> ServeConfig {
    ServeConfig {
        workers: 4,
        // Deeper than any scenario's burst: the benchmark measures
        // dispatch throughput, not backpressure (the conformance suite
        // owns overload behavior).
        queue: 4096,
        cache,
        ..ServeConfig::default()
    }
}

fn row(scenario: &'static str, requests: usize, sum: &ServeSummary, wall_us: f64) -> ServeRow {
    ServeRow {
        scenario,
        requests,
        responses: sum.responses,
        ok: sum.ok,
        cache_served: sum.cache_served,
        wall_us,
    }
}

/// Runs every scenario at the given sizes.
pub fn run_bench(sizes: &Sizes) -> Vec<ServeRow> {
    let mut rows = Vec::new();

    // --- startup: empty stream, pure pool overhead ---
    let (sum, wall) = run_stream("", &config(0));
    rows.push(row("startup", 0, &sum, wall));

    // --- throughput: distinct heuristic-tier orders, cache off ---
    let mut burst = String::new();
    for i in 0..sizes.burst {
        burst.push_str(&format!(
            "{{\"id\":{i},\"cmd\":\"order\",\"layers\":{},\"k\":{},\"sync\":{},\"tier\":\"heuristic\"}}\n",
            3 + i % 4,
            i % 3,
            i % 7
        ));
    }
    let (sum, wall) = run_stream(&burst, &config(0));
    rows.push(row("throughput", sizes.burst, &sum, wall));

    // --- cold full-tier tune, then cache-hit replays of it ---
    let tune = format!(
        "{{\"id\":0,\"cmd\":\"order\",\"layers\":{},\"k\":2,\"sync\":3,\"tier\":\"full\"}}",
        sizes.tune_layers
    );
    let (sum, wall) = run_stream(&format!("{tune}\n"), &config(64));
    rows.push(row("cold", 1, &sum, wall));
    let mut replayed = format!("{tune}\n");
    for i in 1..=sizes.replays {
        replayed.push_str(&tune.replacen("\"id\":0", &format!("\"id\":{i}"), 1));
        replayed.push('\n');
    }
    let (sum, wall) = run_stream(&replayed, &config(64));
    rows.push(row("hits", sizes.replays + 1, &sum, wall));

    // --- the same instance at every degradation tier ---
    for tier in ["full", "greedy", "heuristic"] {
        let mut input = String::new();
        for i in 0..sizes.per_tier {
            input.push_str(&format!(
                "{{\"id\":{i},\"cmd\":\"order\",\"layers\":{},\"k\":1,\"sync\":{},\"tier\":\"{tier}\"}}\n",
                sizes.tune_layers,
                1 + i
            ));
        }
        let name = match tier {
            "full" => "tier_full",
            "greedy" => "tier_greedy",
            _ => "tier_heuristic",
        };
        let (sum, wall) = run_stream(&input, &config(0));
        rows.push(row(name, sizes.per_tier, &sum, wall));
    }

    rows
}

fn find<'a>(rows: &'a [ServeRow], scenario: &str) -> &'a ServeRow {
    rows.iter()
        .find(|r| r.scenario == scenario)
        .unwrap_or_else(|| panic!("missing scenario {scenario}"))
}

/// Derived headline metrics: throughput after startup subtraction, the
/// cold-tune cost, the per-hit cost, and their ratio.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// Heuristic-tier requests per second (startup excluded).
    pub throughput_rps: f64,
    /// One cold full-tier tune, microseconds (startup excluded).
    pub cold_tune_us: f64,
    /// One cache hit, microseconds (cold run subtracted, so startup
    /// and the shared cold compute cancel).
    pub cache_hit_us: f64,
    /// `cold_tune_us / cache_hit_us`.
    pub cache_speedup: f64,
}

/// Computes the headline metrics from a full scenario set.
pub fn headline(rows: &[ServeRow]) -> Headline {
    let startup = find(rows, "startup").wall_us;
    let tput = find(rows, "throughput");
    let cold = find(rows, "cold");
    let hits = find(rows, "hits");
    let throughput_rps = tput.requests as f64 / ((tput.wall_us - startup).max(1.0) / 1e6);
    let cold_tune_us = (cold.wall_us - startup).max(1.0);
    let replays = (hits.requests - 1).max(1) as f64;
    let cache_hit_us = ((hits.wall_us - cold.wall_us) / replays).max(0.1);
    Headline {
        throughput_rps,
        cold_tune_us,
        cache_hit_us,
        cache_speedup: cold_tune_us / cache_hit_us,
    }
}

fn row_to_json(r: &ServeRow, with_timings: bool) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![
        ("scenario", Value::Str(r.scenario.to_string())),
        ("requests", Value::Num(r.requests as f64)),
        ("responses", Value::Num(r.responses as f64)),
        ("ok", Value::Num(r.ok as f64)),
        ("cache_served", Value::Num(r.cache_served as f64)),
    ];
    if with_timings {
        fields.push(("wall_us", Value::Num(r.wall_us)));
        if r.requests > 0 {
            fields.push(("per_request_us", Value::Num(r.wall_us / r.requests as f64)));
        }
    }
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders the scenario set as the `BENCH_serve.json` document. With
/// `with_timings = false` (the `--smoke` mode) only the deterministic
/// fields are emitted, so a double run must produce byte-identical
/// output.
pub fn to_json(rows: &[ServeRow], with_timings: bool) -> Value {
    let cfg = config(64);
    let mut fields: Vec<(&str, Value)> = vec![
        ("bench", "serve".into()),
        (
            "config",
            obj([
                ("workers", Value::Num(cfg.workers as f64)),
                ("queue", Value::Num(cfg.queue as f64)),
                ("cache", Value::Num(cfg.cache as f64)),
            ]),
        ),
        (
            "scenarios",
            Value::Arr(rows.iter().map(|r| row_to_json(r, with_timings)).collect()),
        ),
    ];
    if with_timings {
        let h = headline(rows);
        fields.push((
            "headline",
            obj([
                ("throughput_rps", Value::Num(h.throughput_rps)),
                ("throughput_floor_rps", Value::Num(THROUGHPUT_FLOOR_RPS)),
                (
                    "throughput_ok",
                    Value::Bool(h.throughput_rps >= THROUGHPUT_FLOOR_RPS),
                ),
                ("cold_tune_us", Value::Num(h.cold_tune_us)),
                ("cache_hit_us", Value::Num(h.cache_hit_us)),
                ("cache_speedup", Value::Num(h.cache_speedup)),
                ("cache_speedup_floor", Value::Num(CACHE_SPEEDUP_FLOOR)),
                (
                    "cache_speedup_ok",
                    Value::Bool(h.cache_speedup >= CACHE_SPEEDUP_FLOOR),
                ),
            ]),
        ));
    }
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The `figures serve` report: the smoke-size scenarios measured live
/// (the full-size sweep lives in the committed `BENCH_serve.json`
/// regenerated by `serve-bench`).
pub fn serve_figure() -> crate::FigureReport {
    let rows = run_bench(&smoke_sizes());
    let mut lines = vec![format!(
        "{:>15} {:>9} {:>10} {:>13} {:>10}",
        "scenario", "requests", "cached", "wall_ms", "per_req_us"
    )];
    for r in &rows {
        lines.push(format!(
            "{:>15} {:>9} {:>10} {:>13.2} {:>10.1}",
            r.scenario,
            r.requests,
            r.cache_served,
            r.wall_us / 1e3,
            if r.requests > 0 {
                r.wall_us / r.requests as f64
            } else {
                r.wall_us
            },
        ));
    }
    let h = headline(&rows);
    lines.push(format!(
        "throughput {:.0} req/s (floor {:.0}); cache hit {:.1}us vs cold tune {:.0}us = {:.0}x (floor {:.0}x)",
        h.throughput_rps,
        THROUGHPUT_FLOOR_RPS,
        h.cache_hit_us,
        h.cold_tune_us,
        h.cache_speedup,
        CACHE_SPEEDUP_FLOOR,
    ));
    lines.push("(full sizes: see committed BENCH_serve.json / serve-bench)".into());
    crate::FigureReport {
        id: "serve",
        title: "Serving layer: request throughput, degradation tiers, cache-hit latency",
        paper: "scheduling decisions must be cheap enough to make online (Sec 5)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenarios_are_deterministic_and_cache_hits_land() {
        let a = run_bench(&smoke_sizes());
        let b = run_bench(&smoke_sizes());
        let ja = to_json(&a, false).to_pretty();
        let jb = to_json(&b, false).to_pretty();
        assert_eq!(ja, jb, "smoke output must be byte-identical across runs");
        let hits = find(&a, "hits");
        assert_eq!(hits.responses as usize, hits.requests);
        assert_eq!(
            hits.cache_served as usize,
            hits.requests - 1,
            "every replay must be served from the cache"
        );
        for r in &a {
            assert_eq!(r.responses as usize, r.requests, "{}", r.scenario);
            assert_eq!(r.ok as usize, r.requests, "{}", r.scenario);
        }
    }
}
