//! The scale sweep behind `BENCH_scale.json` and `figures scale`.
//!
//! Every hot path that PR "scale" rewrote from a quadratic pending-list
//! scan to a cursor/heap/delta structure is measured here against its
//! frozen pre-refactor reference on the same instance, at 10/100/1000
//! stages × 8/64/512 workers:
//!
//! - **predict** — full makespan prediction of the OOO-Pipe2 op-level
//!   schedule (new path only; the predictor was already linear).
//! - **flows** — [`ooo_netsim::flows::simulate_flows`] (arrival cursor)
//!   vs the `pending.remove(0)` original
//!   ([`ooo_netsim::reference::simulate_flows_naive`]).
//! - **commsim** — [`ooo_netsim::commsim::simulate_queue_recorded`]
//!   (cursor + ready heap) vs the per-chunk filter-and-min original.
//! - **sync plan** — [`ooo_core::datapar::plan_sync_service`] vs the
//!   `pending.retain` original (re-created verbatim below).
//! - **tune scoring** — one windowed in-lane candidate sweep scored by
//!   [`ooo_verify::predict::DeltaEval`] probe-and-revert vs a full
//!   [`predict_makespan`] pass per candidate.
//! - **cert** — [`ooo_tune::certify_schedule`] of the pipeline schedule
//!   (new path only).
//!
//! Every old/new pair is asserted *equal element-for-element* before its
//! wall times are reported, so the emitted speedups double as a
//! differential proof at each size. Flow/request counts are capped (the
//! caps are reported in the rows) so the quadratic references stay
//! measurable at the largest point.

use ooo_core::datapar::{plan_sync_service, CommPolicy};
use ooo_core::json::{obj, Value};
use ooo_core::op::Op;
use ooo_core::pipeline::{op_level_schedule, Strategy};
use ooo_core::schedule::Schedule;
use ooo_core::SimTime;
use ooo_netsim::commsim::{CommRequest, Policy};
use ooo_netsim::flows::{Capacities, Flow};
use ooo_netsim::link::LinkSpec;
use ooo_verify::predict::{predict_makespan, DeltaEval};
use std::time::Instant;

/// Flow-count cap: the `remove(0)` reference moves O(n²) bytes, so the
/// largest sweep point runs it on this many flows instead of the full
/// `stages × workers` (the row records the count actually used).
const FLOW_CAP: usize = 50_000;
/// Request cap for the chunk-queue reference (O(n²) scans).
const COMM_CAP: usize = 20_000;
/// Relocation window for the tune-scoring sweep (the CLI's `--window`).
const WINDOW: usize = 4;

/// The three sweep points: stages × data-parallel workers.
pub fn sweep_points() -> Vec<(usize, usize)> {
    vec![(10, 8), (100, 64), (1000, 512)]
}

/// Small deterministic points for the CI smoke run.
pub fn smoke_points() -> Vec<(usize, usize)> {
    vec![(10, 8), (20, 16)]
}

/// One sweep point's measurements. All wall times in microseconds.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Pipeline stages (layers).
    pub stages: usize,
    /// Data-parallel workers.
    pub workers: usize,
    /// Flows actually simulated (`min(stages × workers, FLOW_CAP)`).
    pub flows: usize,
    /// Queue requests actually simulated.
    pub comm_requests: usize,
    /// Tune-scoring candidates in the windowed sweep.
    pub candidates: usize,
    /// Makespan prediction of the op-level pipeline schedule.
    pub predict_us: f64,
    /// Flow simulation, cursor rewrite.
    pub flows_us: f64,
    /// Flow simulation, `remove(0)` reference.
    pub flows_naive_us: f64,
    /// Chunk queue, cursor + heap rewrite.
    pub commsim_us: f64,
    /// Chunk queue, filter-and-min reference.
    pub commsim_naive_us: f64,
    /// Link sync-service planning, cursor + heap rewrite.
    pub syncplan_us: f64,
    /// Link sync-service planning, `retain` reference.
    pub syncplan_naive_us: f64,
    /// Candidate sweep scored by `DeltaEval` probe-and-revert.
    pub tune_delta_us: f64,
    /// Candidate sweep scored by full `predict_makespan` passes.
    pub tune_full_us: f64,
    /// Schedule certification (predict == simulate).
    pub cert_us: f64,
    /// Order-insensitive digest over every differential output, for the
    /// smoke mode's byte-identity check.
    pub digest: u64,
}

impl ScaleRow {
    /// Wall-clock speedup of the flow-simulation rewrite.
    pub fn flows_speedup(&self) -> f64 {
        self.flows_naive_us / self.flows_us.max(1e-3)
    }
    /// Wall-clock speedup of the chunk-queue rewrite.
    pub fn commsim_speedup(&self) -> f64 {
        self.commsim_naive_us / self.commsim_us.max(1e-3)
    }
    /// Wall-clock speedup of delta-scored over full-scored tuning sweeps.
    pub fn tune_speedup(&self) -> f64 {
        self.tune_full_us / self.tune_delta_us.max(1e-3)
    }
}

fn us(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e6
}

/// FNV-1a over a stream of u64 words.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The pre-refactor link sync-service planner
/// ([`ooo_core::datapar`]'s `pending.retain(|&i| i != pick)` loop),
/// kept verbatim as the differential oracle for
/// [`plan_sync_service`].
fn plan_sync_service_naive(
    dw_finish: &[SimTime],
    policy: CommPolicy,
    mut sync_ns: impl FnMut(usize) -> SimTime,
) -> Vec<(usize, SimTime, SimTime)> {
    let l = dw_finish.len().saturating_sub(1);
    let mut pending: Vec<usize> = (1..=l).collect();
    let mut link_free: SimTime = 0;
    let mut out = Vec::with_capacity(l);
    while !pending.is_empty() {
        let earliest_ready = pending
            .iter()
            .map(|&i| dw_finish[i])
            .min()
            .expect("non-empty");
        let now = link_free.max(earliest_ready);
        let pick = match policy {
            CommPolicy::FifoCompletion => pending
                .iter()
                .copied()
                .filter(|&i| dw_finish[i] <= now)
                .min_by_key(|&i| (dw_finish[i], i))
                .expect("at least the earliest-ready sync qualifies"),
            CommPolicy::PriorityByLayer => pending
                .iter()
                .copied()
                .filter(|&i| dw_finish[i] <= now)
                .min()
                .expect("at least the earliest-ready sync qualifies"),
        };
        pending.retain(|&i| i != pick);
        let start = now;
        let end = start + sync_ns(pick);
        out.push((pick, start, end));
        link_free = end;
    }
    out
}

/// Deterministic pseudo-random stream without an RNG dependency: a
/// splitmix64 step.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// In-lane windowed relocation candidates of every `dW`-class op,
/// mirroring the tuner's in-lane move family (single-op moves).
fn inlane_candidates(schedule: &Schedule) -> Vec<(Op, usize, usize, usize)> {
    let mut out = Vec::new();
    for (li, lane) in schedule.lanes.iter().enumerate() {
        for (pi, &op) in lane.ops.iter().enumerate() {
            if !op.is_weight_grad_class() {
                continue;
            }
            for to in pi.saturating_sub(WINDOW)..=(pi + WINDOW).min(lane.ops.len() - 1) {
                if to != pi {
                    out.push((op, li, pi, to));
                }
            }
        }
    }
    out
}

/// Applies one in-lane relocation to a schedule clone.
fn apply_relocation(schedule: &Schedule, op: Op, lane: usize, to: usize) -> Schedule {
    let mut next = schedule.clone();
    let ops = &mut next.lanes[lane].ops;
    ops.retain(|&o| o != op);
    ops.insert(to.min(ops.len()), op);
    next
}

/// Measures one sweep point.
///
/// # Panics
///
/// Panics when any rewritten path disagrees with its pre-refactor
/// reference — the benchmark is also the differential proof, so a
/// mismatch must fail loudly rather than report a bogus speedup.
pub fn run_point(stages: usize, workers: usize) -> ScaleRow {
    let mut digest = Digest::new();
    let mut seed = (stages as u64) << 32 | workers as u64;

    // --- flows: one staggered all-reduce burst over shared NICs ---
    let n_flows = (stages * workers).min(FLOW_CAP);
    let mut flows = Vec::with_capacity(n_flows);
    for i in 0..n_flows {
        flows.push(Flow {
            id: i,
            src: i % 8,
            dst: 8 + (i % 4),
            bytes: 1_000_000 + (mix(&mut seed) % 97) * 10_000,
            ready_ns: (i as SimTime) * 2_000_000,
        });
    }
    let mut capacities = Capacities::new();
    for r in 0..12 {
        capacities.insert(r, 4e9);
    }
    let t = Instant::now();
    let flows_fast = ooo_netsim::flows::simulate_flows(&flows, &capacities);
    let flows_us = us(t);
    let t = Instant::now();
    let flows_naive = ooo_netsim::reference::simulate_flows_naive(&flows, &capacities);
    let flows_naive_us = us(t);
    assert_eq!(flows_fast, flows_naive, "flow cursor rewrite diverged");
    for &(id, fin) in &flows_fast {
        digest.word(id as u64);
        digest.word(fin);
    }

    // --- commsim: priority chunk queue on one NIC ---
    let n_comm = (stages * workers).min(COMM_CAP);
    let mut requests = Vec::with_capacity(n_comm);
    for i in 0..n_comm {
        requests.push(CommRequest {
            id: i,
            bytes: 200_000 + (mix(&mut seed) % 31) * 10_000,
            ready_ns: (i as SimTime) * 40_000,
            priority: (mix(&mut seed) % 64) as i64,
        });
    }
    let link = LinkSpec::nvlink();
    let t = Instant::now();
    let comm_fast =
        ooo_netsim::commsim::simulate_queue_recorded(&link, 250_000, Policy::Priority, &requests);
    let commsim_us = us(t);
    let t = Instant::now();
    let comm_naive = ooo_netsim::reference::simulate_queue_recorded_naive(
        &link,
        250_000,
        Policy::Priority,
        &requests,
    );
    let commsim_naive_us = us(t);
    assert_eq!(comm_fast, comm_naive, "chunk-queue heap rewrite diverged");
    for c in &comm_fast.0 {
        digest.word(c.id as u64);
        digest.word(c.start_ns);
        digest.word(c.finish_ns);
    }

    // --- link sync-service planning at `stages` layers ---
    let dw_finish: Vec<SimTime> = (0..=stages)
        .map(|i| {
            if i == 0 {
                0
            } else {
                (mix(&mut seed) % (4 * stages as u64 + 1)) as SimTime
            }
        })
        .collect();
    let sync_of = |i: usize| 1 + (i as SimTime % 5);
    let mut plans = Vec::new();
    let mut plans_naive = Vec::new();
    let t = Instant::now();
    for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
        plans.push(plan_sync_service(&dw_finish, policy, sync_of));
    }
    let syncplan_us = us(t);
    let t = Instant::now();
    for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
        plans_naive.push(plan_sync_service_naive(&dw_finish, policy, sync_of));
    }
    let syncplan_naive_us = us(t);
    assert_eq!(plans, plans_naive, "sync-service heap rewrite diverged");
    for plan in &plans {
        for &(pick, start, end) in plan {
            digest.word(pick as u64);
            digest.word(start);
            digest.word(end);
        }
    }

    // --- pipeline prediction, tune scoring, certification ---
    let (graph, schedule) = op_level_schedule(stages, workers.min(stages), Strategy::OooPipe2, 1);
    let cost = ooo_core::cost::UnitCost;
    let t = Instant::now();
    let predicted = predict_makespan(&graph, &schedule, &cost)
        .expect("pipeline schedule predicts")
        .makespan();
    let predict_us = us(t);
    digest.word(predicted as u64);

    let candidates = inlane_candidates(&schedule);
    let t = Instant::now();
    let mut delta_scores: Vec<Option<SimTime>> = Vec::with_capacity(candidates.len());
    let mut de = DeltaEval::new(&graph, &schedule, &cost).expect("incumbent evaluates");
    for &(op, lane, from, to) in &candidates {
        let m = de.relocate_many(&[(op, lane, to)]).ok();
        if m.is_some() {
            de.relocate_many(&[(op, lane, from)])
                .expect("reverting to the incumbent cannot deadlock");
        }
        delta_scores.push(m);
    }
    let tune_delta_us = us(t);
    let t = Instant::now();
    let mut full_scores: Vec<Option<SimTime>> = Vec::with_capacity(candidates.len());
    for &(op, lane, _, to) in &candidates {
        let next = apply_relocation(&schedule, op, lane, to);
        full_scores.push(
            predict_makespan(&graph, &next, &cost)
                .ok()
                .map(|p| p.makespan()),
        );
    }
    let tune_full_us = us(t);
    assert_eq!(delta_scores, full_scores, "delta scoring diverged");
    for m in delta_scores.iter().flatten() {
        digest.word(*m);
    }

    let t = Instant::now();
    let certified =
        ooo_tune::certify_schedule(&graph, &schedule, &cost).expect("pipeline schedule certifies");
    let cert_us = us(t);
    assert_eq!(certified, predicted, "certification disagrees with predict");

    ScaleRow {
        stages,
        workers,
        flows: n_flows,
        comm_requests: n_comm,
        candidates: candidates.len(),
        predict_us,
        flows_us,
        flows_naive_us,
        commsim_us,
        commsim_naive_us,
        syncplan_us,
        syncplan_naive_us,
        tune_delta_us,
        tune_full_us,
        cert_us,
        digest: digest.0,
    }
}

/// Runs a full sweep.
pub fn run_sweep(points: &[(usize, usize)]) -> Vec<ScaleRow> {
    points.iter().map(|&(s, w)| run_point(s, w)).collect()
}

fn row_to_json(r: &ScaleRow, with_timings: bool) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![
        ("stages", Value::Num(r.stages as f64)),
        ("workers", Value::Num(r.workers as f64)),
        ("flows", Value::Num(r.flows as f64)),
        ("comm_requests", Value::Num(r.comm_requests as f64)),
        ("candidates", Value::Num(r.candidates as f64)),
        ("digest", Value::Str(format!("{:016x}", r.digest))),
    ];
    if with_timings {
        fields.extend([
            ("predict_us", Value::Num(r.predict_us)),
            ("flows_us", Value::Num(r.flows_us)),
            ("flows_naive_us", Value::Num(r.flows_naive_us)),
            ("flows_speedup", Value::Num(r.flows_speedup())),
            ("commsim_us", Value::Num(r.commsim_us)),
            ("commsim_naive_us", Value::Num(r.commsim_naive_us)),
            ("commsim_speedup", Value::Num(r.commsim_speedup())),
            ("syncplan_us", Value::Num(r.syncplan_us)),
            ("syncplan_naive_us", Value::Num(r.syncplan_naive_us)),
            ("tune_delta_us", Value::Num(r.tune_delta_us)),
            ("tune_full_us", Value::Num(r.tune_full_us)),
            ("tune_speedup", Value::Num(r.tune_speedup())),
            ("cert_us", Value::Num(r.cert_us)),
        ]);
    }
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders the sweep as the `BENCH_scale.json` document. With
/// `with_timings = false` (the `--smoke` mode) only the deterministic
/// fields are emitted, so a double run must produce byte-identical
/// output.
pub fn to_json(rows: &[ScaleRow], with_timings: bool) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![
        ("bench", "scale".into()),
        (
            "sweep",
            Value::Arr(rows.iter().map(|r| row_to_json(r, with_timings)).collect()),
        ),
    ];
    if with_timings {
        if let Some(last) = rows.last() {
            fields.push((
                "headline",
                obj([
                    ("stages", Value::Num(last.stages as f64)),
                    ("workers", Value::Num(last.workers as f64)),
                    ("flows_speedup", Value::Num(last.flows_speedup())),
                    ("commsim_speedup", Value::Num(last.commsim_speedup())),
                    ("tune_speedup", Value::Num(last.tune_speedup())),
                    (
                        "max_speedup",
                        Value::Num(
                            last.flows_speedup()
                                .max(last.commsim_speedup())
                                .max(last.tune_speedup()),
                        ),
                    ),
                    ("requirement", Value::Num(10.0)),
                ]),
            ));
        }
    }
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The `figures scale` report: the first two sweep points measured
/// live (the 1000-stage point lives in the committed `BENCH_scale.json`
/// regenerated by `scale-bench`).
pub fn scale_figure() -> crate::FigureReport {
    let rows = run_sweep(&sweep_points()[..2]);
    let mut lines = vec![format!(
        "{:>7} {:>8} {:>9} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "stages",
        "workers",
        "flows_ms",
        "flows_old_ms",
        "speedup",
        "tune_ms",
        "tune_full_ms",
        "speedup",
        "cert_ms"
    )];
    for r in &rows {
        lines.push(format!(
            "{:>7} {:>8} {:>9.2} {:>12.2} {:>12.1}x {:>9.2} {:>12.2} {:>12.1}x {:>9.2}",
            r.stages,
            r.workers,
            r.flows_us / 1e3,
            r.flows_naive_us / 1e3,
            r.flows_speedup(),
            r.tune_delta_us / 1e3,
            r.tune_full_us / 1e3,
            r.tune_speedup(),
            r.cert_us / 1e3,
        ));
    }
    lines.push("(1000 stages x 512 workers: see committed BENCH_scale.json / scale-bench)".into());
    crate::FigureReport {
        id: "scale",
        title: "Simulator scaling: rewritten hot paths vs pre-refactor references",
        paper: "scheduling overhead must stay negligible at cluster scale (Sec 5/8)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_points_are_identical_and_deterministic() {
        let a = run_sweep(&smoke_points());
        let b = run_sweep(&smoke_points());
        let ja = to_json(&a, false).to_pretty();
        let jb = to_json(&b, false).to_pretty();
        assert_eq!(ja, jb, "smoke output must be byte-identical across runs");
        assert!(a.iter().all(|r| r.candidates > 0));
    }
}
