//! Generators for every table and figure of the paper's evaluation.
//!
//! Each function reruns the relevant experiment on the simulated
//! substrates and reports the measured rows next to the paper's claim.
//! Absolute throughputs are synthetic; the comparisons (who wins, rough
//! factor, crossover locations) are the reproduction targets.

use crate::FigureReport;
use ooo_cluster::ablation::{modulo_group_sweep, straggler_network, sub_order_ablation};
use ooo_cluster::analysis::{region_anatomy, sync_budget};
use ooo_cluster::datapar::{self, CommSystem};
use ooo_cluster::hybrid::{run_combined, run_combined_best_k};
use ooo_cluster::pipeline as cpipe;
use ooo_cluster::single::{self, Engine};
use ooo_core::cost::{LayerCost, TableCost};
use ooo_core::datapar::{simulate_data_parallel_with_tail, CommPolicy};
use ooo_core::graph::TrainGraph;
use ooo_core::op::LayerId;
use ooo_core::pipeline::{simulate_pipeline, PipelineConfig, Strategy};
use ooo_core::reverse_k::{reverse_first_k, search_optimal_k};
use ooo_models::zoo;
use ooo_models::GpuProfile;
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;

/// Table 1: models, datasets, and evaluation setup.
pub fn table1() -> FigureReport {
    let mut lines = vec![format!(
        "{:<24} {:<12} {:<28} {:>8} {:>12}",
        "model", "dataset", "training method", "layers", "params"
    )];
    for (m, dataset, method) in zoo::table1() {
        lines.push(format!(
            "{:<24} {:<12} {:<28} {:>8} {:>10.1} MB",
            m.name,
            dataset,
            method,
            m.num_layers(),
            m.param_bytes() as f64 / 1e6
        ));
    }
    FigureReport {
        id: "table1",
        title: "Models, datasets, and evaluation setup",
        paper: "twelve networks across vision and NLP, five public datasets",
        lines,
    }
}

/// Table 2: GPU cluster settings.
pub fn table2() -> FigureReport {
    let mut lines = vec![format!(
        "{:<8} {:<10} {:>6} {:>10} {:>12} {:>12}",
        "cluster", "GPU", "nodes", "GPUs/node", "intra", "inter"
    )];
    for (t, gpu) in [
        (ClusterTopology::priv_a(), "TitanXP"),
        (ClusterTopology::priv_b(), "P100"),
        (ClusterTopology::pub_a(), "V100"),
        (ClusterTopology::pub_b(), "V100"),
    ] {
        lines.push(format!(
            "{:<8} {:<10} {:>6} {:>10} {:>12} {:>12}",
            t.name, gpu, t.nodes, t.gpus_per_node, t.intra.name, t.inter.name
        ));
    }
    FigureReport {
        id: "table2",
        title: "GPU cluster settings",
        paper: "Priv-A 8x TitanXP, Priv-B 20x P100, Pub-A 48x V100, Pub-B 40x V100",
        lines,
    }
}

/// Figure 1: kernel issue overhead vs execution time per DenseBlock.
pub fn fig1() -> FigureReport {
    let model = zoo::densenet121(12, 32);
    let gpu = GpuProfile::v100();
    let series = single::issue_analysis(&model, 32, &gpu).expect("issue analysis");
    let mut lines = vec![format!(
        "{:<14} {:>8} {:>14} {:>13} {:>12}",
        "region", "kernels", "mean issue-gap", "mean exec", "gap/exec"
    )];
    for block in ["block1", "block2", "block3", "block4"] {
        let rows: Vec<_> = series
            .iter()
            .filter(|(n, _, _)| n.starts_with(block) && n.contains("conv"))
            .collect();
        if rows.is_empty() {
            continue;
        }
        let gap: f64 = rows.iter().map(|(_, g, _)| *g as f64).sum::<f64>() / rows.len() as f64;
        let exec: f64 = rows.iter().map(|(_, _, e)| *e as f64).sum::<f64>() / rows.len() as f64;
        lines.push(format!(
            "{:<14} {:>8} {:>11.1} us {:>10.1} us {:>12.2}",
            block,
            rows.len(),
            gap / 1e3,
            exec / 1e3,
            gap / exec.max(1.0)
        ));
    }
    FigureReport {
        id: "fig1",
        title: "Kernel issue overhead for DenseNet-121 convolutions",
        paper: "issue overhead up to 4x execution time in DenseBlock-3/4",
        lines,
    }
}

/// Figure 2: the issue-masking timeline of training DenseNet-121.
pub fn fig2() -> FigureReport {
    let model = zoo::densenet121(12, 32);
    let gpu = GpuProfile::v100();
    let series = single::issue_analysis(&model, 32, &gpu).expect("issue analysis");
    let half = series.len() / 2;
    let exposed_first: u64 = series[..half].iter().map(|(_, g, _)| *g).sum();
    let exposed_second: u64 = series[half..].iter().map(|(_, g, _)| *g).sum();
    let exec_total: u64 = series.iter().map(|(_, _, e)| *e).sum();
    let lines = vec![
        format!(
            "total kernel execution           : {:>8.2} ms",
            exec_total as f64 / 1e6
        ),
        format!(
            "exposed issue gaps, first half   : {:>8.2} ms",
            exposed_first as f64 / 1e6
        ),
        format!(
            "exposed issue gaps, second half  : {:>8.2} ms",
            exposed_second as f64 / 1e6
        ),
        format!(
            "second-half share of exposed gaps: {:>8.0} %",
            100.0 * exposed_second as f64 / (exposed_first + exposed_second).max(1) as f64
        ),
    ];
    FigureReport {
        id: "fig2",
        title: "Timeline of training DenseNet-121 (issue masking)",
        paper: "issue overhead masked early, exposed by the end of Block-4",
        lines,
    }
}

/// Figure 3: the dependency structure conventional backprop adds vs what
/// the data actually requires.
pub fn fig3() -> FigureReport {
    let g = TrainGraph::single_gpu(2);
    let mut lines = vec!["true data dependencies (2 layers):".to_string()];
    for &op in g.ops() {
        let deps = g.deps(op).expect("op in graph");
        let deps: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        lines.push(format!("  {:<6} <- {}", op.to_string(), deps.join(", ")));
    }
    lines.push("dW_i feeds only its own update: out-of-order backprop may delay it.".into());
    FigureReport {
        id: "fig3",
        title: "Dependencies of gradient computations",
        paper: "dW is a leaf: only U_i consumes it",
        lines,
    }
}

/// Figure 4: data-parallel unit-time timelines (conventional /
/// prioritized communication / prioritized computation).
///
/// The toy model mirrors the figure: five layers, unit compute, the two
/// last layers carry the bulk of the parameters (as in ResNet), and each
/// synchronization has a pipelined aggregation tail.
pub fn fig4() -> FigureReport {
    let l = 5;
    let tail = 3;
    let graph = TrainGraph::data_parallel(l);
    let mut cost = TableCost::uniform(
        l,
        LayerCost {
            sync_weight: 1,
            ..LayerCost::default()
        },
    );
    cost.layer_mut(LayerId(4)).sync_weight = 4;
    cost.layer_mut(LayerId(5)).sync_weight = 4;
    let order0 = reverse_first_k::<TableCost>(&graph, 0, None).expect("k=0");
    let a =
        simulate_data_parallel_with_tail(&graph, &order0, &cost, CommPolicy::FifoCompletion, tail)
            .expect("fifo")
            .makespan();
    let b =
        simulate_data_parallel_with_tail(&graph, &order0, &cost, CommPolicy::PriorityByLayer, tail)
            .expect("priority")
            .makespan();
    let best_k = search_optimal_k(l, |k| {
        let order = reverse_first_k::<TableCost>(&graph, k, None).expect("k");
        let m = simulate_data_parallel_with_tail(
            &graph,
            &order,
            &cost,
            CommPolicy::PriorityByLayer,
            tail,
        )
        .expect("sim")
        .makespan();
        -(m as f64)
    });
    let orderk = reverse_first_k::<TableCost>(&graph, best_k, None).expect("best k");
    let c =
        simulate_data_parallel_with_tail(&graph, &orderk, &cost, CommPolicy::PriorityByLayer, tail)
            .expect("sim")
            .makespan();
    let lines = vec![
        format!("(a) conventional (FIFO completion)       : {a} units"),
        format!("(b) prioritized communication            : {b} units"),
        format!("(c) + prioritized computation (k = {best_k})    : {c} units"),
        format!(
            "gain of (c): {:.0}% over (a), {:.0}% over (b)",
            100.0 * (a as f64 / c as f64 - 1.0),
            100.0 * (b as f64 / c as f64 - 1.0)
        ),
    ];
    FigureReport {
        id: "fig4",
        title: "Data-parallel training timelines (unit time)",
        paper: "prioritizing computations gains 16% over (a) and 12% over (b)",
        lines,
    }
}

fn pipeline_unit_report(
    id: &'static str,
    title: &'static str,
    paper: &'static str,
    configs: Vec<(&'static str, PipelineConfig)>,
) -> FigureReport {
    let mut lines = Vec::new();
    for (label, cfg) in configs {
        let r = simulate_pipeline(&cfg).expect("pipeline sim");
        lines.push(format!("--- {label}: makespan {} units ---", r.makespan()));
        for row in r.render_ascii().lines() {
            lines.push(row.to_string());
        }
    }
    FigureReport {
        id,
        title,
        paper,
        lines,
    }
}

/// Figure 5: cross-layer model parallelism, 8 layers on 2 GPUs.
pub fn fig5() -> FigureReport {
    pipeline_unit_report(
        "fig5",
        "Cross-layer model parallelism (8 layers, 2 GPUs)",
        "23 units conventional, 19 with fast-forwarding, 16 with modulo allocation",
        vec![
            (
                "(a) conventional",
                PipelineConfig::unit(8, 2, 1, Strategy::ModelParallel),
            ),
            (
                "(b) gradient fast-forwarding",
                PipelineConfig::unit(8, 2, 1, Strategy::OooPipe1),
            ),
            (
                "(c) + modulo allocation",
                PipelineConfig::unit(8, 2, 1, Strategy::OooPipe2),
            ),
        ],
    )
}

/// Figure 6: pipeline parallelism with micro-batches (2 GPUs, 2 micros).
pub fn fig6() -> FigureReport {
    pipeline_unit_report(
        "fig6",
        "Pipeline parallelism with micro-batches (8 layers, 2 GPUs, 2 micro-batches)",
        "fast-forwarding overlaps dW/dO; modulo allocation shrinks the forward stall",
        vec![
            (
                "(a) conventional (GPipe)",
                PipelineConfig::unit(8, 2, 2, Strategy::GPipe),
            ),
            (
                "(b) gradient fast-forwarding",
                PipelineConfig::unit(8, 2, 2, Strategy::OooPipe1),
            ),
            (
                "(c) + modulo allocation",
                PipelineConfig::unit(8, 2, 2, Strategy::OooPipe2),
            ),
        ],
    )
}

/// Figure 7: single-GPU training throughput under the five engines.
pub fn fig7() -> FigureReport {
    let gpu = GpuProfile::v100();
    let mut lines = vec![format!(
        "{:<28} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "batch", "TF", "XLA", "Nimble", "+Opt1", "+Opt1+2"
    )];
    let models = vec![
        zoo::densenet121(12, 32),
        zoo::densenet121(32, 32),
        zoo::densenet169(12, 32),
        zoo::mobilenet_v3_large(0.25),
        zoo::mobilenet_v3_large(1.0),
        zoo::resnet(50),
        zoo::resnet(101),
    ];
    for model in &models {
        for batch in [32usize, 64] {
            let engines = [
                Engine::TensorFlow,
                Engine::Xla,
                Engine::Nimble,
                Engine::OooXlaOpt1,
                Engine::OooXla,
            ];
            let results: Vec<Option<f64>> = engines
                .iter()
                .map(|&e| {
                    single::run(model, batch, &gpu, e)
                        .ok()
                        .map(|r| r.throughput)
                })
                .collect();
            let xla = results[1].unwrap_or(1.0);
            let cells: Vec<String> = engines
                .iter()
                .zip(&results)
                .map(|(&e, r)| match r {
                    None => format!("{:>9}", "N/A"),
                    Some(t) if e == Engine::Xla => format!("{t:>7.0}/s"),
                    Some(t) => format!("{:>8.2}x", t / xla),
                })
                .collect();
            lines.push(format!(
                "{:<28} {:>5} {}",
                model.name,
                batch,
                cells.join(" ")
            ));
        }
    }
    lines.push("(XLA column = absolute samples/s; other columns normalized to XLA)".into());
    FigureReport {
        id: "fig7",
        title: "Single-GPU training throughput (V100)",
        paper: "OOO-XLA 1.03-1.58x over XLA; >= Nimble everywhere; Nimble OOM at 64+",
        lines,
    }
}

/// Figure 8: the main/sub-stream region schedule for DenseNet-121.
pub fn fig8() -> FigureReport {
    let model = zoo::densenet121(12, 32);
    let gpu = GpuProfile::v100();
    let plan = single::region_plan(&model, 32, &gpu).expect("region plan");
    let mut lines = Vec::new();
    for (region, kernels) in &plan {
        let preview: Vec<&str> = kernels.iter().take(3).map(|s| s.as_str()).collect();
        lines.push(format!(
            "{:<22} {} dW kernels{}{}",
            region,
            kernels.len(),
            if kernels.is_empty() { "" } else { ": " },
            preview.join(", ")
        ));
    }
    FigureReport {
        id: "fig8",
        title: "Multi-region schedule of DenseNet-121 (main vs sub stream)",
        paper: "DenseBlock-4's dW kernels are delayed into the next forward pass",
        lines,
    }
}

/// Figure 9: memory over the backward pass, conventional vs ooo.
pub fn fig9() -> FigureReport {
    let model = zoo::densenet121(12, 32);
    let gpu = GpuProfile::v100();
    let (conv, ooo) = single::memory_series(&model, 32, &gpu).expect("memory series");
    let peak = |s: &[(usize, u64)]| s.iter().map(|&(_, m)| m).max().unwrap_or(0);
    let mut lines = vec![format!(
        "peak conventional {:.1} MB, peak ooo {:.1} MB (+{:.2}%)",
        peak(&conv) as f64 / 1e6,
        peak(&ooo) as f64 / 1e6,
        100.0 * (peak(&ooo) as f64 / peak(&conv) as f64 - 1.0)
    )];
    lines.push(format!(
        "{:>8} {:>16} {:>16}",
        "layer", "conventional MB", "ooo MB"
    ));
    for i in (0..conv.len()).step_by(conv.len() / 12 + 1) {
        let (l, c) = conv[i];
        let o = ooo
            .iter()
            .find(|&&(ol, _)| ol == l)
            .map(|&(_, m)| m)
            .unwrap_or(0);
        lines.push(format!(
            "{:>8} {:>16.1} {:>16.1}",
            l,
            c as f64 / 1e6,
            o as f64 / 1e6
        ));
    }
    FigureReport {
        id: "fig9",
        title: "Memory overhead of the backward pass, DenseNet-121",
        paper: "up to 200 MB more mid-pass but peak only +0.1% (10 MB)",
        lines,
    }
}

/// Figure 10: data-parallel throughput on the three clusters.
pub fn fig10() -> FigureReport {
    let mut lines = Vec::new();
    let sweeps: Vec<(&str, ClusterTopology, GpuProfile, Vec<usize>, usize)> = vec![
        (
            "Priv-A/TitanXP",
            ClusterTopology::priv_a(),
            GpuProfile::titan_xp(),
            vec![1, 2, 4, 8],
            64,
        ),
        (
            "Priv-B/P100",
            ClusterTopology::priv_b(),
            GpuProfile::p100(),
            vec![1, 4, 8, 20],
            64,
        ),
        (
            "Pub-A/V100",
            ClusterTopology::pub_a(),
            GpuProfile::v100(),
            vec![1, 8, 16, 32, 48],
            128,
        ),
    ];
    for model in [zoo::resnet(50), zoo::resnet(101)] {
        for (name, topo, gpu, gpu_counts, batch) in &sweeps {
            lines.push(format!(
                "--- {} on {name} (batch {batch}/GPU) ---",
                model.name
            ));
            lines.push(format!(
                "{:>6} {:>12} {:>12} {:>12} {:>8} {:>10}",
                "GPUs", "Horovod/s", "BytePS/s", "OOO/s", "k", "OOO/BytePS"
            ));
            for &gpus in gpu_counts {
                let h = datapar::run(&model, *batch, gpu, topo, gpus, CommSystem::Horovod)
                    .expect("horovod");
                let b = datapar::run(&model, *batch, gpu, topo, gpus, CommSystem::BytePS)
                    .expect("byteps");
                let o = datapar::run(&model, *batch, gpu, topo, gpus, CommSystem::OooBytePS)
                    .expect("ooo");
                lines.push(format!(
                    "{:>6} {:>12.0} {:>12.0} {:>12.0} {:>8} {:>9.2}x",
                    gpus,
                    h.throughput,
                    b.throughput,
                    o.throughput,
                    o.k,
                    o.throughput / b.throughput
                ));
            }
        }
    }
    FigureReport {
        id: "fig10",
        title: "Data-parallel training throughput",
        paper: "OOO-BytePS 1.10-1.27x over BytePS at 16-48 GPUs; Horovod far behind",
        lines,
    }
}

/// Figure 11a: pipeline fine-tuning on 4 V100s (RNN, BERT-24, FFNN).
pub fn fig11a() -> FigureReport {
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let mut lines = vec![format!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "model", "model-par", "GPipe", "OOO-Pipe1", "OOO-Pipe2", "Pipe2/GPipe"
    )];
    let cases: Vec<(&str, ooo_models::ModelSpec, usize, usize)> = vec![
        ("RNN-16", zoo::rnn16(1_024, 50), 1_024, 1),
        ("BERT-24", zoo::bert(24, 128), 96, 4),
        ("FFNN-16", zoo::ffnn16(4_096), 1_024, 4),
    ];
    for (name, model, batch, micros) in cases {
        let mp = cpipe::run(
            &model,
            batch,
            1,
            &gpu,
            &nv,
            4,
            Strategy::ModelParallel,
            1,
            4,
        )
        .expect("mp")
        .throughput;
        let gp = cpipe::run(&model, batch, micros, &gpu, &nv, 4, Strategy::GPipe, 1, 4)
            .expect("gpipe")
            .throughput;
        let p1 = cpipe::run(
            &model,
            batch,
            micros,
            &gpu,
            &nv,
            4,
            Strategy::OooPipe1,
            1,
            4,
        )
        .expect("p1")
        .throughput;
        let p2 = cpipe::run(
            &model,
            batch,
            micros,
            &gpu,
            &nv,
            4,
            Strategy::OooPipe2,
            1,
            4,
        )
        .expect("p2")
        .throughput;
        lines.push(format!(
            "{name:<10} {mp:>10.1} {gp:>10.1} {p1:>10.1} {p2:>10.1} {:>11.2}x",
            p2 / gp
        ));
    }
    FigureReport {
        id: "fig11a",
        title: "Pipeline fine-tuning throughput on 4x V100 (seqs/s)",
        paper: "OOO-Pipe2: 1.99x GPipe on RNN, 1.59x on BERT, 1.5x on FFNN",
        lines,
    }
}

/// Figure 11b: BERT-24 across NVLink / PCIe / 10 GbE.
pub fn fig11b() -> FigureReport {
    let model = zoo::bert(24, 128);
    let gpu = GpuProfile::v100();
    let mut lines = vec![format!(
        "{:<22} {:>9} {:>11} {:>11} {:>12}",
        "interconnect", "GPipe", "PipeDream", "OOO-Pipe2", "Pipe2/GPipe"
    )];
    for (name, link, group) in [
        ("NVLink", LinkSpec::nvlink(), 1usize),
        ("PCIe 3.0", LinkSpec::pcie3(), 1),
        ("10GbE (per-layer)", LinkSpec::ethernet_10g(), 1),
        ("10GbE (grouped x2)", LinkSpec::ethernet_10g(), 2),
    ] {
        let gp = cpipe::run(&model, 96, 4, &gpu, &link, 4, Strategy::GPipe, 1, 5)
            .expect("gpipe")
            .throughput;
        let pd = cpipe::run(&model, 96, 4, &gpu, &link, 4, Strategy::PipeDream, 1, 5)
            .expect("pd")
            .throughput;
        let p2 = cpipe::run(&model, 96, 4, &gpu, &link, 4, Strategy::OooPipe2, group, 5)
            .expect("p2")
            .throughput;
        lines.push(format!(
            "{name:<22} {gp:>9.1} {pd:>11.1} {p2:>11.1} {:>11.2}x",
            p2 / gp
        ));
    }
    FigureReport {
        id: "fig11b",
        title: "BERT-24 pipeline training across interconnects (seqs/s)",
        paper: "+70% NVLink, +58% PCIe, +48% Ethernet (with 2x transformer grouping)",
        lines,
    }
}

/// Figure 12: the GPipe / OOO-Pipe1 / OOO-Pipe2 schedules of an 8-layer
/// FFNN on 4 GPUs.
pub fn fig12() -> FigureReport {
    pipeline_unit_report(
        "fig12",
        "Pipeline schedules of an 8-layer FFNN (4 GPUs, 2 micro-batches)",
        "fast-forwarding 1.22x and with modulo allocation 1.62x over GPipe (16-layer analysis)",
        vec![
            ("(a) GPipe", PipelineConfig::unit(8, 4, 2, Strategy::GPipe)),
            (
                "(b) OOO-Pipe1",
                PipelineConfig::unit(8, 4, 2, Strategy::OooPipe1),
            ),
            (
                "(c) OOO-Pipe2",
                PipelineConfig::unit(8, 4, 2, Strategy::OooPipe2),
            ),
        ],
    )
}

/// Figure 13a: weak scaling of BERT pre-training.
pub fn fig13a() -> FigureReport {
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let mut lines = vec![format!(
        "{:>6} {:<10} {:>10} {:>11} {:>11} {:>12}",
        "GPUs", "model", "GPipe", "PipeDream", "OOO-Pipe2", "Pipe2/GPipe"
    )];
    for (gpus, layers, batch) in [(8usize, 12usize, 512usize), (16, 24, 512), (32, 48, 1_024)] {
        let model = zoo::bert(layers, 128);
        // Pre-training uses enough micro-batches to keep deep pipelines
        // full (the paper picks batch sizes "that give the maximum
        // performance for each system").
        let micros = (2 * gpus).min(batch);
        let gp = cpipe::run(
            &model,
            batch,
            micros,
            &gpu,
            &nv,
            gpus,
            Strategy::GPipe,
            1,
            4,
        )
        .expect("gpipe")
        .throughput;
        let pd = cpipe::run(
            &model,
            batch,
            micros,
            &gpu,
            &nv,
            gpus,
            Strategy::PipeDream,
            1,
            4,
        )
        .expect("pd")
        .throughput;
        let p2 = cpipe::run(
            &model,
            batch,
            micros,
            &gpu,
            &nv,
            gpus,
            Strategy::OooPipe2,
            1,
            4,
        )
        .expect("p2")
        .throughput;
        lines.push(format!(
            "{gpus:>6} {:<10} {gp:>10.0} {pd:>11.0} {p2:>11.0} {:>11.2}x",
            model.name,
            p2 / gp
        ));
    }
    FigureReport {
        id: "fig13a",
        title: "Weak scaling of BERT pre-training (seqs/s)",
        paper: "1.73x over GPipe at 8 GPUs; 1.41-1.45x at 16-32; gain does not shrink",
        lines,
    }
}

/// Figure 13b: strong scaling of BERT-24/48 and GPT-3, plus the DAPPLE
/// and Megatron reference points.
pub fn fig13b() -> FigureReport {
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let mut lines = vec![format!(
        "{:<14} {:>6} {:>12} {:>14} {:>12}",
        "model", "GPUs", "OOO-Pipe2/s", "vs DAPPLE", "vs Megatron"
    )];
    for (model, per_micro, gpus_list) in [
        (zoo::bert(24, 128), 32usize, vec![8usize, 16, 24]),
        (zoo::bert(48, 128), 32, vec![8, 16, 24]),
        (zoo::gpt3_medium(), 8, vec![8, 13, 26]),
    ] {
        for &gpus in &gpus_list {
            if gpus > model.num_layers() {
                continue;
            }
            let micros = 2 * gpus;
            let batch = micros * per_micro;
            let p2 = cpipe::run(
                &model,
                batch,
                micros,
                &gpu,
                &nv,
                gpus,
                Strategy::OooPipe2,
                1,
                4,
            )
            .expect("p2")
            .throughput;
            let dapple = cpipe::run(
                &model,
                batch,
                micros,
                &gpu,
                &nv,
                gpus,
                Strategy::Dapple,
                1,
                4,
            )
            .expect("dapple")
            .throughput;
            let mega = cpipe::run(
                &model,
                batch,
                micros,
                &gpu,
                &nv,
                gpus,
                Strategy::MegatronInterleaved { chunks: 2 },
                1,
                4,
            )
            .expect("megatron")
            .throughput;
            lines.push(format!(
                "{:<14} {gpus:>6} {p2:>12.0} {:>13.2}x {:>11.2}x",
                model.name,
                p2 / dapple,
                p2 / mega
            ));
        }
    }
    lines.push("(GPT-3 rows use 13/26 pipeline GPUs standing in for the paper's".into());
    lines.push(" 12+4/24+4 split with dedicated embedding GPUs)".into());
    FigureReport {
        id: "fig13b",
        title: "Strong scaling and DAPPLE/Megatron comparison",
        paper: "1.29-1.47x over DAPPLE; 1.14-1.29x over Megatron 2",
        lines,
    }
}

/// Section 6: combined reverse-first-k + fast-forwarding.
pub fn sec6() -> FigureReport {
    let model = zoo::bert(12, 128);
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let eth = LinkSpec::ethernet_10g();
    let base = run_combined(&model, 96, 4, &gpu, &nv, &eth, 4, 4, 0, 4).expect("base");
    let best = run_combined_best_k(&model, 96, 4, &gpu, &nv, &eth, 4, 4, 4).expect("best");
    let lines = vec![
        format!(
            "hybrid 4x(4-GPU pipeline), no sync reordering : {:>9.1} seqs/s",
            base.throughput
        ),
        format!(
            "hybrid with reverse first-k (k = {:>2})           : {:>9.1} seqs/s (+{:.1}%)",
            best.k,
            best.throughput,
            100.0 * (best.throughput / base.throughput - 1.0)
        ),
    ];
    FigureReport {
        id: "sec6",
        title: "Combining reverse first-k with gradient fast-forwarding",
        paper: "the two compose; optimal split left as future work",
        lines,
    }
}

/// Section 6's second half: reverse first-k composed with checkpointing
/// and re-computation (extension figure).
pub fn recompute() -> FigureReport {
    use ooo_core::memory::memory_profile;
    use ooo_core::recompute::{checkpointed_memory_profile, RecomputePlan};
    use ooo_models::cost::to_table_cost;

    let model = zoo::resnet(50);
    let gpu = GpuProfile::v100();
    let cost = to_table_cost(&model, 64, &gpu);
    let l = model.num_layers();
    let graph = TrainGraph::data_parallel(l);
    let plan = RecomputePlan::sqrt_heuristic(l);
    let conv = reverse_first_k::<TableCost>(&graph, 0, None).expect("k=0");
    let full = memory_profile(&graph, &conv, &cost).expect("profile").peak;
    let (ckpt_conv, _) = checkpointed_memory_profile(&graph, &plan, &conv, &cost).expect("ckpt");
    // The paper: "we have some amount of available memory to re-order
    // those k (or maybe fewer) weight gradient computations" — find the
    // largest k whose peak stays within 1.1x of the checkpointed
    // conventional peak.
    let budget = ckpt_conv + ckpt_conv / 10;
    let peak_at = |k: usize| -> u64 {
        let order = reverse_first_k::<TableCost>(&graph, k, None).expect("order");
        checkpointed_memory_profile(&graph, &plan, &order, &cost)
            .expect("profile")
            .0
    };
    let max_k = (0..=l).rev().find(|&k| peak_at(k) <= budget).unwrap_or(0);
    let extra = plan.extra_forward_ns(&cost);
    let lines = vec![
        format!("activations, no checkpointing            : {:>8.2} GB peak", full as f64 / 1e9),
        format!(
            "sqrt(L) checkpointing, conventional      : {:>8.2} GB peak",
            ckpt_conv as f64 / 1e9
        ),
        format!(
            "largest k within the 1.1x envelope       : k = {max_k} ({:>6.2} GB peak)",
            peak_at(max_k) as f64 / 1e9
        ),
        format!(
            "for reference, unclamped reverse first-45: {:>8.2} GB peak (early ResNet activations are the big ones)",
            peak_at(45) as f64 / 1e9
        ),
        format!("re-computation overhead                  : {:>8.2} ms extra forward", extra as f64 / 1e6),
    ];
    FigureReport {
        id: "recompute",
        title: "Checkpointing + reverse first-k (ResNet-50, batch 64)",
        paper: "Sec 6: the reordering fits the checkpointing memory envelope",
        lines,
    }
}

/// Ablations: each mechanism's contribution and trade-off crossovers
/// (extensions beyond the paper's own tables).
pub fn ablations() -> FigureReport {
    let gpu = GpuProfile::v100();
    let mut lines = Vec::new();

    let a = sub_order_ablation(&zoo::densenet121(12, 32), 32, &gpu).expect("sub order");
    lines.push("--- sub-stream ordering, DenseNet-121 (k=12, batch 32) ---".to_string());
    lines.push(format!(
        "  Opt1 only (no sub-stream)        : {:>9.0} samples/s",
        a.opt1_only
    ));
    lines.push(format!(
        "  eager order (no joint scheduling): {:>9.0} samples/s ({:+.1}%)",
        a.eager,
        100.0 * (a.eager / a.opt1_only - 1.0)
    ));
    lines.push(format!(
        "  Algorithm 1                      : {:>9.0} samples/s ({:+.1}%)",
        a.algorithm1,
        100.0 * (a.algorithm1 / a.opt1_only - 1.0)
    ));

    lines.push("--- modulo group size, BERT-24 on 4 GPUs ---".to_string());
    for (link_name, link) in [
        ("NVLink", LinkSpec::nvlink()),
        ("10GbE", LinkSpec::ethernet_10g()),
    ] {
        let sweep =
            modulo_group_sweep(&zoo::bert(24, 128), 96, 4, &gpu, &link, 4, &[1, 2, 4, 6], 4)
                .expect("sweep");
        let row: Vec<String> = sweep
            .iter()
            .map(|(g, t)| format!("g={g}: {t:.0}"))
            .collect();
        lines.push(format!("  {link_name:<8} {}", row.join("  ")));
    }

    lines.push("--- k sweep, ResNet-50, 16x V100 (concavity) ---".to_string());
    let ks = [0usize, 10, 20, 40, 80, 160];
    let sweep = crate::figures::k_sweep_rows(&ks, &gpu);
    lines.push(format!("  {}", sweep.join("  ")));

    lines.push("--- straggler network (inter-node bandwidth / N) ---".to_string());
    for factor in [1.0f64, 2.0, 4.0] {
        let s = straggler_network(
            &zoo::resnet(50),
            128,
            &gpu,
            &ClusterTopology::pub_a(),
            16,
            factor,
        )
        .expect("straggler");
        lines.push(format!(
            "  /{factor:.0}: BytePS {:>7.0}  OOO {:>7.0}  gain {:.2}x  k={}",
            s.byteps,
            s.ooo_byteps,
            s.ooo_byteps / s.byteps,
            s.chosen_k
        ));
    }
    FigureReport {
        id: "ablations",
        title: "Mechanism ablations (extension)",
        paper: "multi-stream w/o re-ordering 1.39x vs 1.54x full (Sec 8.2); grouping on Ethernet (Sec 8.4)",
        lines,
    }
}

/// Helper for the k-sweep rows.
fn k_sweep_rows(ks: &[usize], gpu: &GpuProfile) -> Vec<String> {
    let m = zoo::resnet(50);
    let topo = ClusterTopology::pub_a();
    ks.iter()
        .map(|&k| {
            let t = ooo_cluster::datapar::run_with_fixed_k(&m, 128, gpu, &topo, 16, k)
                .map(|r| r.throughput)
                .unwrap_or(0.0);
            format!("k={k}: {t:.0}")
        })
        .collect()
}

/// Section 8.2 discussion: R2 vs R5 anatomy.
pub fn sec82() -> FigureReport {
    let model = zoo::densenet121(12, 32);
    let gpu = GpuProfile::v100();
    let rows = region_anatomy(&model, 32, &gpu);
    let mut lines = vec![format!(
        "{:<22} {:>8} {:>12} {:>10}",
        "region", "kernels", "saturated", "headroom"
    )];
    for r in rows {
        lines.push(format!(
            "{:<22} {:>8} {:>11.0}% {:>9.0}%",
            r.name,
            r.kernels,
            r.saturated_fraction * 100.0,
            r.mean_headroom * 100.0
        ));
    }
    FigureReport {
        id: "sec82",
        title: "Per-region SM saturation of DenseNet-121's backward pass",
        paper: "R2's dO kernels saturate the SMs (6% gain); R5 leaves headroom (10%)",
        lines,
    }
}

/// Section 8.3 discussion: the ResNet-50 synchronization budget.
pub fn sec83() -> FigureReport {
    let model = zoo::resnet(50);
    let gpu = GpuProfile::v100();
    let topo = ClusterTopology::pub_a();
    let b = sync_budget(&model, 128, &gpu, &topo, 16, 45).expect("budget");
    let base = datapar::run(&model, 128, &gpu, &topo, 16, CommSystem::BytePS).expect("byteps");
    let ooo = datapar::run(&model, 128, &gpu, &topo, 16, CommSystem::OooBytePS).expect("ooo");
    let lines = vec![
        format!(
            "backward compute                    : {:>8.0} ms",
            b.backward_ns as f64 / 1e6
        ),
        format!(
            "dW_1 advanced by reverse first-45   : {:>8.0} ms",
            b.dw1_advanced_ns as f64 / 1e6
        ),
        format!(
            "exposed sync, BytePS                : {:>8.0} ms",
            base.exposed_sync_ns as f64 / 1e6
        ),
        format!(
            "exposed sync, OOO-BytePS (k = {:>3})   : {:>8.0} ms",
            ooo.k,
            ooo.exposed_sync_ns as f64 / 1e6
        ),
        format!(
            "overall speedup                     : {:>8.2}x",
            ooo.throughput / base.throughput
        ),
    ];
    FigureReport {
        id: "sec83",
        title: "ResNet-50 on 16 V100s: where the 27% comes from",
        paper: "350 ms of synchronization reduced to 200 ms; 27% overall",
        lines,
    }
}

/// Trace metrics: the headline observability numbers derived from the
/// unified timelines (`ooo_core::trace`) — SM occupancy and per-stream
/// stall time on the single GPU, link utilization under data parallelism,
/// and the pipeline bubble fraction.
pub fn tracemetrics() -> FigureReport {
    let gpu = GpuProfile::v100();
    let mut lines = vec![format!(
        "{:<34} {:<10} {:>10} {:>7} {:>7}",
        "configuration", "lane", "busy ms", "stall%", "util%"
    )];
    let mut add = |cfg: &str, tl: &ooo_core::trace::Timeline| {
        let s = tl.summarize();
        let horizon = s.horizon_ns.max(1) as f64;
        for l in &s.lanes {
            lines.push(format!(
                "{:<34} {:<10} {:>10.1} {:>6.1}% {:>6.1}%",
                cfg,
                l.lane,
                l.busy_ns as f64 / 1e6,
                l.stall_ns as f64 / horizon * 100.0,
                l.utilization * 100.0
            ));
        }
        for c in &s.counters {
            if let Some(f) = c.mean_fraction {
                lines.push(format!(
                    "{:<34} {:<10} {:>10} {:>7} {:>6.1}%  (mean occupancy)",
                    cfg,
                    c.counter,
                    "",
                    "",
                    f * 100.0
                ));
            }
        }
    };
    let (_, tl) = single::run_traced(&zoo::resnet(50), 64, &gpu, Engine::OooXla).expect("single");
    add("ResNet-50 b64 OOO-XLA", &tl);
    let (_, tl) = datapar::run_traced(
        &zoo::resnet(50),
        128,
        &gpu,
        &ClusterTopology::pub_a(),
        16,
        CommSystem::OooBytePS,
    )
    .expect("datapar");
    add("ResNet-50 b128 OOO-BytePS x16", &tl);
    for strategy in [Strategy::GPipe, Strategy::OooPipe2] {
        let r = cpipe::run(
            &zoo::bert(24, 128),
            96,
            4,
            &gpu,
            &LinkSpec::nvlink(),
            4,
            strategy,
            1,
            2,
        )
        .expect("pipeline");
        let tl = r.result.to_timeline("pipeline");
        add(&format!("BERT-24 b96 {strategy:?} 4dev"), &tl);
    }
    FigureReport {
        id: "tracemetrics",
        title: "Trace-derived occupancy, stall, and utilization metrics",
        paper: "timelines explain the gains: stalls shrink where OOO scheduling applies",
        lines,
    }
}

/// Chaos campaign: iteration-time inflation of each recovery policy vs
/// the no-recovery baseline under the identical seeded fault trace.
pub fn chaosrecovery() -> FigureReport {
    let report = ooo_faults::run_campaign(42, 5).expect("chaos campaign");
    let mut lines = vec![format!(
        "{:<20} {:<36} {:<20} {:>8} {:>10} {:>6}",
        "fault", "magnitudes", "policy", "no-rec", "recovered", "ok"
    )];
    for o in &report.outcomes {
        lines.push(format!(
            "{:<20} {:<36} {:<20} {:>7.2}x {:>9.2}x {:>6}",
            o.family,
            o.detail,
            o.policy,
            o.no_recovery_inflation(),
            o.recovered_inflation(),
            if o.invariants_ok() { "pass" } else { "FAIL" },
        ));
    }
    lines.push(format!(
        "baseline iteration {:.1} ms (k = {}), seed {}",
        report.baseline_iter_ns as f64 / 1e6,
        report.stale_k,
        report.seed,
    ));
    FigureReport {
        id: "chaosrecovery",
        title: "Fault injection: recovery policies vs no recovery",
        paper: "robustness extension: every matched policy strictly beats no-recovery",
        lines,
    }
}

/// Static analysis vs simulation: the `ooo-advise` makespan predictor
/// evaluated against the list-scheduling simulator on every pipeline
/// strategy's op-level schedule, with the advisories each strategy earns.
pub fn perfadvice() -> FigureReport {
    use ooo_core::cost::UnitCost;
    use ooo_core::list_scheduling::simulate;
    use ooo_core::pipeline::op_level_schedule;
    use ooo_verify::perf::advise_pipeline;

    let (layers, devices, group) = (8, 2, 1);
    let mut lines = vec![format!(
        "{:<22} {:>9} {:>9} {:>6} {:>8}  advisories",
        "strategy", "predicted", "simulated", "gap", "bubble"
    )];
    for (name, strategy) in [
        ("model-parallel", Strategy::ModelParallel),
        ("gpipe", Strategy::GPipe),
        ("ooo-pipe1", Strategy::OooPipe1),
        ("ooo-pipe2", Strategy::OooPipe2),
    ] {
        let (graph, schedule) = op_level_schedule(layers, devices, strategy, group);
        let simulated = simulate(&graph, &schedule, &UnitCost)
            .expect("op-level schedule simulates")
            .makespan();
        let report = advise_pipeline(layers, devices, strategy, group).expect("advisor runs");
        assert_eq!(
            report.predicted_makespan, simulated,
            "{name}: the static predictor must match the simulator exactly"
        );
        let bubble = report.prediction.idle_fraction(|n| n.starts_with("gpu"));
        let codes: Vec<&str> = report
            .advice
            .iter()
            .map(|a| a.diagnostic.rule.code())
            .collect();
        lines.push(format!(
            "{:<22} {:>9} {:>9} {:>6} {:>7.1}%  {}",
            name,
            report.predicted_makespan,
            simulated,
            report
                .optimality_gap
                .map_or_else(|| "n/a".to_string(), |g| format!("{g:.3}")),
            bubble * 100.0,
            if codes.is_empty() {
                "none".to_string()
            } else {
                codes.join(" ")
            },
        ));
    }
    FigureReport {
        id: "perfadvice",
        title: "Static makespan prediction vs simulation (8 layers, 2 devices)",
        paper: "analyzer extension: prediction is exact; only non-OOO strategies draw advisories",
        lines,
    }
}

/// Heuristic vs predictor-guided tuned makespans per seed, across the
/// four engine shapes the `ooo-tune` autotuner targets. Every tuned
/// schedule is certified inline: the static prediction must equal the
/// simulated makespan exactly, and tuning never regresses.
pub fn tuned() -> FigureReport {
    use ooo_core::combined::{choose_split_k, combined_backward_order};
    use ooo_core::cost::UnitCost;
    use ooo_core::datapar::{simulate_data_parallel, CommPolicy};
    use ooo_core::multi_region::{backward_regions, multi_region_joint_schedule, ConstantProfile};
    use ooo_tune::order::{certify_order, tune_backward_order, KFamily};
    use ooo_tune::pipeline::tune_pipeline;
    use ooo_tune::{certify_schedule, tune_schedule, TuneOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let rand_cost = |l: usize, rng: &mut StdRng, spiky: bool| {
        let mut cost = TableCost::uniform(l, LayerCost::default());
        for i in 1..=l {
            let c = cost.layer_mut(LayerId(i));
            if spiky {
                c.forward = rng.gen_range(1..12);
                c.output_grad = rng.gen_range(1..12);
                c.weight_grad = rng.gen_range(1..20);
                c.update = rng.gen_range(1..4);
                c.sync_weight = rng.gen_range(0..40);
            } else {
                c.forward = rng.gen_range(1..6);
                c.output_grad = rng.gen_range(1..6);
                c.weight_grad = rng.gen_range(1..6);
                c.update = rng.gen_range(1..4);
                c.sync_weight = rng.gen_range(1..8);
            }
        }
        cost
    };

    let mut lines = vec![format!(
        "{:<5} {:>16} {:>16} {:>16} {:>16}",
        "seed", "single h->t", "datapar h->t", "pipeline h->t", "hybrid h->t"
    )];
    let mut improved = [0usize; 4];
    for seed in 1u64..=10 {
        // Single-GPU engine: tune the multi-region joint schedule.
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(4usize..12);
        let graph = TrainGraph::single_gpu(l);
        let cost = rand_cost(l, &mut rng, false);
        let (regions, subs) = backward_regions(&graph, &cost, rng.gen_range(1usize..=3));
        let profile = ConstantProfile {
            speedup: 1.0 + rng.gen_range(0..5) as f64 / 10.0,
            sub_time: rng.gen_range(1..5),
        };
        let mrs =
            multi_region_joint_schedule(&graph, &regions, &subs, &profile).expect("joint schedule");
        let opts = TuneOptions {
            require_complete: false,
            ..TuneOptions::default()
        };
        let s =
            tune_schedule(&graph, &mrs.to_schedule(&regions), &cost, &opts).expect("single tunes");
        assert_eq!(
            certify_schedule(&graph, &s.schedule, &cost).expect("certifies"),
            s.predicted
        );

        // Data-parallel engine: tune from the search_optimal_k baseline.
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(4usize..12);
        let dgraph = TrainGraph::data_parallel(l);
        let dcost = rand_cost(l, &mut rng, true);
        let policy = CommPolicy::PriorityByLayer;
        let sim_k = |k: usize| {
            let order = reverse_first_k(&dgraph, k, None::<(u64, &TableCost)>).unwrap();
            simulate_data_parallel(&dgraph, &order, &dcost, policy)
                .unwrap()
                .makespan()
        };
        let k = search_optimal_k(l, |k| 1.0 / sim_k(k) as f64);
        let baseline = reverse_first_k(&dgraph, k, None::<(u64, &TableCost)>).unwrap();
        let d = tune_backward_order(
            &dgraph,
            &baseline,
            Some(k),
            &dcost,
            policy,
            KFamily::ReverseFirstK,
            &TuneOptions::default(),
        )
        .expect("datapar tunes");
        assert_eq!(
            certify_order(&dgraph, &d.order, &dcost, policy).expect("certifies"),
            d.predicted
        );

        // Pipeline engine: tune GPipe's eager op-level schedule.
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = rng.gen_range(4usize..10);
        let devices = rng.gen_range(2usize..=4);
        let p = tune_pipeline(
            layers,
            devices,
            Strategy::GPipe,
            1,
            &UnitCost,
            &TuneOptions::default(),
        )
        .expect("pipeline tunes");
        assert_eq!(
            certify_schedule(&p.graph, &p.schedule, &UnitCost).expect("certifies"),
            p.predicted
        );

        // Hybrid engine: tune the combined order from choose_split_k.
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(4usize..12);
        let hgraph = TrainGraph::data_parallel(l);
        let hcost = rand_cost(l, &mut rng, true);
        let sim_c = |k: usize| {
            let order = combined_backward_order(&hgraph, k).unwrap();
            simulate_data_parallel(&hgraph, &order, &hcost, policy)
                .unwrap()
                .makespan()
        };
        let ck = choose_split_k(l, |k| 1.0 / sim_c(k) as f64);
        let cbase = combined_backward_order(&hgraph, ck).unwrap();
        let h = tune_backward_order(
            &hgraph,
            &cbase,
            Some(ck),
            &hcost,
            policy,
            KFamily::Combined,
            &TuneOptions::default(),
        )
        .expect("hybrid tunes");
        assert_eq!(
            certify_order(&hgraph, &h.order, &hcost, policy).expect("certifies"),
            h.predicted
        );

        for (i, (b, t)) in [
            (s.baseline, s.predicted),
            (d.baseline, d.predicted),
            (p.baseline, p.predicted),
            (h.baseline, h.predicted),
        ]
        .into_iter()
        .enumerate()
        {
            assert!(t <= b, "seed {seed} engine {i}: tuned {t} worse than {b}");
            improved[i] += usize::from(t < b);
        }
        lines.push(format!(
            "{:<5} {:>16} {:>16} {:>16} {:>16}",
            seed,
            format!("{} -> {}", s.baseline, s.predicted),
            format!("{} -> {}", d.baseline, d.predicted),
            format!("{} -> {}", p.baseline, p.predicted),
            format!("{} -> {}", h.baseline, h.predicted),
        ));
    }
    lines.push(format!(
        "seeds improved: single {}/10, datapar {}/10, pipeline {}/10, hybrid {}/10",
        improved[0], improved[1], improved[2], improved[3],
    ));
    FigureReport {
        id: "tuned",
        title: "Heuristic vs tuned makespan per seed (all four engines)",
        paper: "tuner extension: predictor-guided moves never regress and certify exactly",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_time_figures_match_paper_exactly() {
        let f5 = fig5();
        let text = f5.render();
        assert!(text.contains("makespan 23 units"));
        assert!(text.contains("makespan 19 units"));
        assert!(text.contains("makespan 16 units"));
    }

    #[test]
    fn fig4_shows_ordering() {
        let f = fig4();
        assert!(f.lines.iter().any(|l| l.contains("gain of (c)")));
    }

    #[test]
    fn table_reports_render() {
        assert!(table1().render().contains("BERT-48"));
        assert!(table2().render().contains("Pub-A"));
    }
}
