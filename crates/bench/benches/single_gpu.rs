//! Figure 7 backend: end-to-end single-GPU engine simulations. Each
//! measurement regenerates one bar of the figure (throughput is printed
//! by the `figures` binary; this bench tracks the cost of producing it).

use criterion::{criterion_group, criterion_main, Criterion};
use ooo_cluster::single::{run, Engine};
use ooo_models::zoo::{densenet121, mobilenet_v3_large, resnet};
use ooo_models::GpuProfile;

fn bench_engines(c: &mut Criterion) {
    let gpu = GpuProfile::v100();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    let dense = densenet121(12, 32);
    for engine in [Engine::Xla, Engine::OooXlaOpt1, Engine::OooXla] {
        group.bench_function(format!("densenet121_b32/{}", engine.name()), |b| {
            b.iter(|| run(&dense, 32, &gpu, engine).unwrap())
        });
    }
    let mobile = mobilenet_v3_large(0.5);
    group.bench_function("mobilenet_a0.5_b32/OOO-XLA", |b| {
        b.iter(|| run(&mobile, 32, &gpu, Engine::OooXla).unwrap())
    });
    let rn = resnet(50);
    group.bench_function("resnet50_b64/OOO-XLA", |b| {
        b.iter(|| run(&rn, 64, &gpu, Engine::OooXla).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
