//! Ablation benches: each measurement regenerates one ablation row
//! (sub-stream ordering policies, modulo group sizes, k-sweep points).

use criterion::{criterion_group, criterion_main, Criterion};
use ooo_cluster::ablation::{modulo_group_sweep, straggler_network, sub_order_ablation};
use ooo_cluster::datapar::run_with_fixed_k;
use ooo_models::zoo::{bert, densenet121, resnet};
use ooo_models::GpuProfile;
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;

fn bench_ablations(c: &mut Criterion) {
    let gpu = GpuProfile::v100();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("sub_order/densenet121", |b| {
        let m = densenet121(12, 32);
        b.iter(|| sub_order_ablation(&m, 32, &gpu).unwrap())
    });
    group.bench_function("modulo_groups/bert24_eth", |b| {
        let m = bert(24, 128);
        let eth = LinkSpec::ethernet_10g();
        b.iter(|| modulo_group_sweep(&m, 96, 4, &gpu, &eth, 4, &[1, 2, 4], 3).unwrap())
    });
    group.bench_function("k_point/resnet50_16gpu_k40", |b| {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        b.iter(|| run_with_fixed_k(&m, 128, &gpu, &topo, 16, 40).unwrap())
    });
    group.bench_function("straggler/resnet50_16gpu_3x", |b| {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        b.iter(|| straggler_network(&m, 128, &gpu, &topo, 16, 3.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
