//! Substrate benchmarks: the tensor kernels underlying the numeric
//! training stack, including the split dO/dW convolution kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ooo_tensor::conv::{conv2d, conv2d_input_grad, conv2d_weight_grad, Conv2dParams};
use ooo_tensor::init::xavier;
use ooo_tensor::ops::{matmul, matmul_nt, matmul_tn, softmax_cross_entropy};
use ooo_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = xavier(&mut rng, &[128, 256], 128, 256);
    let b = xavier(&mut rng, &[256, 128], 256, 128);
    let bt = xavier(&mut rng, &[128, 256], 256, 128);
    c.bench_function("tensor/matmul_128x256x128", |bch| {
        bch.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("tensor/matmul_nt_128x256x128", |bch| {
        bch.iter(|| matmul_nt(black_box(&a), black_box(&bt)).unwrap())
    });
    c.bench_function("tensor/matmul_tn_256x128x128", |bch| {
        bch.iter(|| matmul_tn(black_box(&a), black_box(&a)).unwrap())
    });
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = xavier(&mut rng, &[4, 8, 16, 16], 8, 8);
    let w = xavier(&mut rng, &[16, 8, 3, 3], 72, 16);
    let p = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    let y = conv2d(&x, &w, &p).unwrap();
    let dy = Tensor::ones(y.dims());
    c.bench_function("tensor/conv2d_forward", |b| {
        b.iter(|| conv2d(black_box(&x), black_box(&w), &p).unwrap())
    });
    c.bench_function("tensor/conv2d_dO", |b| {
        b.iter(|| conv2d_input_grad(black_box(&dy), black_box(&w), (16, 16), &p).unwrap())
    });
    c.bench_function("tensor/conv2d_dW", |b| {
        b.iter(|| conv2d_weight_grad(black_box(&x), black_box(&dy), (3, 3), &p).unwrap())
    });
}

fn bench_loss(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let logits = xavier(&mut rng, &[256, 100], 256, 100);
    let labels: Vec<usize> = (0..256).map(|i| i % 100).collect();
    c.bench_function("tensor/softmax_cross_entropy_256x100", |b| {
        b.iter(|| softmax_cross_entropy(black_box(&logits), black_box(&labels)).unwrap())
    });
}

criterion_group!(benches, bench_matmul, bench_conv_kernels, bench_loss);
criterion_main!(benches);
