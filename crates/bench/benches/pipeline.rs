//! Figures 5/6/11/12/13 backend: pipeline-parallel schedule simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use ooo_cluster::pipeline::run;
use ooo_core::pipeline::{simulate_pipeline, PipelineConfig, Strategy};
use ooo_models::zoo::bert;
use ooo_models::GpuProfile;
use ooo_netsim::link::LinkSpec;

fn bench_unit_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fig12_unit");
    for (name, cfg) in [
        (
            "fig5_modelpar",
            PipelineConfig::unit(8, 2, 1, Strategy::ModelParallel),
        ),
        (
            "fig5_ooopipe2",
            PipelineConfig::unit(8, 2, 1, Strategy::OooPipe2),
        ),
        (
            "fig12_gpipe",
            PipelineConfig::unit(8, 4, 2, Strategy::GPipe),
        ),
        (
            "fig12_ooopipe2",
            PipelineConfig::unit(8, 4, 2, Strategy::OooPipe2),
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| simulate_pipeline(&cfg).unwrap()));
    }
    group.finish();
}

fn bench_bert_pipelines(c: &mut Criterion) {
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let model = bert(24, 128);
    let mut group = c.benchmark_group("fig11_fig13");
    group.sample_size(10);
    for (name, strategy) in [
        ("bert24_4gpu/gpipe", Strategy::GPipe),
        ("bert24_4gpu/pipedream", Strategy::PipeDream),
        ("bert24_4gpu/ooopipe2", Strategy::OooPipe2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run(&model, 96, 4, &gpu, &nv, 4, strategy, 1, 4).unwrap())
        });
    }
    let big = bert(48, 128);
    group.bench_function("bert48_32gpu/ooopipe2", |b| {
        b.iter(|| run(&big, 512, 8, &gpu, &nv, 32, Strategy::OooPipe2, 1, 3).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_unit_schedules, bench_bert_pipelines);
criterion_main!(benches);
