//! Benchmarks of the scheduling algorithms themselves: the cost of
//! *planning* must stay negligible next to a training iteration, which is
//! the paper's implicit requirement for doing the scheduling online.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ooo_core::cost::UnitCost;
use ooo_core::graph::TrainGraph;
use ooo_core::list_scheduling::{list_schedule, LaneSpec};
use ooo_core::multi_region::{backward_regions, multi_region_joint_schedule, ConstantProfile};
use ooo_core::reverse_k::{reverse_first_k, search_optimal_k};
use ooo_core::schedule::validate_order;

fn bench_graph_build(c: &mut Criterion) {
    c.bench_function("graph/build_120_layers", |b| {
        b.iter(|| TrainGraph::data_parallel(black_box(120)))
    });
}

fn bench_validate(c: &mut Criterion) {
    let g = TrainGraph::data_parallel(120);
    let order = g.conventional_backprop();
    c.bench_function("graph/validate_order_120_layers", |b| {
        b.iter(|| validate_order(&g, black_box(&order)).unwrap())
    });
}

fn bench_reverse_k(c: &mut Criterion) {
    let g = TrainGraph::data_parallel(160);
    c.bench_function("algo2/reverse_first_k_160_layers", |b| {
        b.iter(|| reverse_first_k::<UnitCost>(&g, black_box(45), None).unwrap())
    });
    c.bench_function("algo2/k_search_160_layers", |b| {
        b.iter(|| search_optimal_k(160, |k| -((k as f64 - 45.0).powi(2))))
    });
}

fn bench_multi_region(c: &mut Criterion) {
    // DenseNet-121-sized input: 120 layers, 8 regions.
    let g = TrainGraph::single_gpu(120);
    let (regions, subs) = backward_regions(&g, &UnitCost, 15);
    let profile = ConstantProfile {
        speedup: 1.2,
        sub_time: 1,
    };
    c.bench_function("algo1/multi_region_120_layers_8_regions", |b| {
        b.iter(|| multi_region_joint_schedule(&g, &regions, black_box(&subs), &profile).unwrap())
    });
}

fn bench_list_scheduling(c: &mut Criterion) {
    let g = TrainGraph::data_parallel(120);
    c.bench_function("list_schedule/120_layers_2_lanes", |b| {
        b.iter(|| {
            let lanes = [LaneSpec::compute("gpu"), LaneSpec::link("nic")];
            list_schedule(&g, &UnitCost, &lanes, |_| 0).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_validate,
    bench_reverse_k,
    bench_multi_region,
    bench_list_scheduling
);
criterion_main!(benches);
