//! Full numeric training steps under different backward schedules: on a
//! single CPU the wall-clock is schedule-independent (same kernels, same
//! order class), confirming the reorderings carry no hidden cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ooo_core::cost::UnitCost;
use ooo_core::reverse_k::reverse_first_k;
use ooo_nn::data::synthetic_classification;
use ooo_nn::layers::{Dense, Relu};
use ooo_nn::optim::Sgd;
use ooo_nn::Sequential;

fn mlp() -> Sequential {
    let mut net = Sequential::new();
    net.push(Dense::seeded(64, 256, 1));
    net.push(Relu::new());
    net.push(Dense::seeded(256, 128, 2));
    net.push(Relu::new());
    net.push(Dense::seeded(128, 10, 3));
    net
}

fn bench_schedules(c: &mut Criterion) {
    let (x, y) = synthetic_classification(9, 64, 64, 10);
    let mut group = c.benchmark_group("train_step");
    let net = mlp();
    let graph = net.train_graph();
    let orders = vec![
        ("conventional", graph.conventional_backprop()),
        ("fast_forward", graph.fast_forward_backprop()),
        (
            "reverse_k3",
            reverse_first_k::<UnitCost>(&graph, 3, None).unwrap(),
        ),
    ];
    for (name, order) in orders {
        group.bench_function(name, |b| {
            let mut net = mlp();
            let mut opt = Sgd::new(0.01);
            b.iter(|| net.train_step(&x, &y, &order, &mut opt).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
