//! Figure 10 backend: data-parallel iteration simulations including the
//! k-search of OOO-BytePS.

use criterion::{criterion_group, criterion_main, Criterion};
use ooo_cluster::datapar::{run, CommSystem};
use ooo_models::zoo::resnet;
use ooo_models::GpuProfile;
use ooo_netsim::topology::ClusterTopology;

fn bench_datapar(c: &mut Criterion) {
    let gpu = GpuProfile::v100();
    let topo = ClusterTopology::pub_a();
    let model = resnet(50);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for system in [
        CommSystem::Horovod,
        CommSystem::BytePS,
        CommSystem::OooBytePS,
    ] {
        group.bench_function(format!("resnet50_16gpu/{}", system.name()), |b| {
            b.iter(|| run(&model, 128, &gpu, &topo, 16, system).unwrap())
        });
    }
    group.bench_function("resnet101_48gpu/OOO-BytePS", |b| {
        let m = resnet(101);
        b.iter(|| run(&m, 96, &gpu, &topo, 48, CommSystem::OooBytePS).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_datapar);
criterion_main!(benches);
