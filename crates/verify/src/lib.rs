//! # ooo-verify — static schedule-safety analyzer for out-of-order backprop
//!
//! Out-of-order backprop buys its speedups by deviating from the
//! conventional execution order, which makes "is this schedule actually
//! safe to run?" a real question: a hand-tuned or search-produced
//! schedule can race on a gradient buffer, deadlock across pipeline
//! stages, blow the memory budget, or reorder an operation the technique
//! is *not* allowed to move. This crate answers that question statically,
//! lint-style: a [`Verifier`] consumes a [`TrainGraph`] and a
//! [`Schedule`] and produces a [`Report`] of structured [`Diagnostic`]s,
//! each tagged with a stable [`RuleId`] and [`Severity`].
//!
//! The crate also answers the companion question — "is this schedule
//! actually *fast*?" — statically: [`predict`] evaluates any schedule's
//! makespan by cost-model list evaluation (no discrete-event
//! simulation), and [`perf`] turns the prediction into the advisory
//! `OP`-series lints below, each carrying an applicable fix suggestion
//! where one exists.
//!
//! ## Rule catalog
//!
//! The table below is generated from [`RuleId::summary`]; a unit test
//! asserts it stays in sync with the README copy.
//!
//! | Rule | Severity | Meaning |
//! |------|----------|---------|
//! | `OV001` | error | schedule references an op outside the graph |
//! | `OV002` | error | op assigned to more than one lane/position |
//! | `OV003` | error | graph op missing from a complete schedule |
//! | `OV101` | error | op scheduled before its own dependency on one lane |
//! | `OV102` | error | cross-lane wait cycle (deadlock) |
//! | `OV201` | error | unsynchronized conflicting accesses to one buffer |
//! | `OV301` | error | peak memory exceeds the configured budget |
//! | `OV401` | warning | non-`dW`-class ops deviate from conventional order |
//! | `OP101` | advice | deferrable dW op sits on the predicted critical path |
//! | `OP201` | advice | sync op on a compute lane stalls independent work |
//! | `OP301` | advice | reverse first-k depth is off the concave-model optimum |
//! | `OP401` | advice | pipeline bubble fraction exceeds the modulo-allocation bound |
//! | `OP501` | advice | deferring a dW op would shrink the peak-memory high-water mark |
//! | `OM101` | error | op accesses a buffer outside its static residency interval |
//! | `OM201` | error | free plan double-frees or misattributes a buffer lifetime |
//! | `OM301` | error | ledger peak exceeds the budget (exact witness interval) |
//! | `OM401` | advice | buffer retained past its last use; a validated early free lowers peak |
//! | `OM501` | advice | ooo reordering inflates peak vs in-order; a validated deferral restores it |
//!
//! ## Analyses
//!
//! 1. **Happens-before** ([`hb`]): program order per lane unioned with
//!    the dependency edges between scheduled ops, materialized as a
//!    transitive closure for O(1) ordering queries.
//! 2. **Race detection** (`OV201`): conflicting accesses (same buffer,
//!    at least one write, different lanes) with no happens-before path,
//!    using the buffer model of [`access`].
//! 3. **Deadlock detection** (`OV101`/`OV102`): a cycle in the union
//!    graph means no execution can make progress; same-lane dependency
//!    inversions are reported precisely, genuine cross-lane wait cycles
//!    are reported with the full cycle.
//! 4. **Memory liveness** (`OV301`): interval-based peak estimation over
//!    the merged linearization via [`ooo_core::memory::memory_profile`],
//!    checked against a configurable budget.
//! 5. **OOO legality** (`OV401`): the paper's central claim is that only
//!    `dW_i` (and its private consumers `S[dW_i]`, `U_i`) may move
//!    relative to the conventional order; any other same-lane reordering
//!    is flagged.
//!
//! ## Example
//!
//! ```
//! use ooo_core::TrainGraph;
//! use ooo_verify::Verifier;
//!
//! let graph = TrainGraph::single_gpu(4);
//! let report = Verifier::new(&graph).verify_order(&graph.fast_forward_backprop());
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod hb;
pub mod mem;
pub mod perf;
pub mod predict;

use access::{accesses, AccessKind, BufferId};
use ooo_core::cost::{CostModel, UnitCost};
use ooo_core::export::DiagnosticRecord;
use ooo_core::memory::memory_profile;
use ooo_core::schedule::{merge_lanes, Schedule};
use ooo_core::{Op, TrainGraph};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Performance advisory: the schedule is safe but measurably slower
    /// (or heavier) than an available alternative.
    Advice,
    /// Suspicious but not necessarily unsafe.
    Warning,
    /// The schedule is unsafe or malformed.
    Error,
}

impl Severity {
    /// Lower-case name used in the JSON diagnostics format.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of one analyzer rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `OV001`: an op in the schedule is not part of the graph.
    UnknownOp,
    /// `OV002`: an op appears more than once across the lanes.
    DuplicateOp,
    /// `OV003`: a graph op is absent from a schedule required to be
    /// complete.
    MissingOp,
    /// `OV101`: an op precedes one of its dependencies on the same lane.
    DependencyInversion,
    /// `OV102`: the lanes wait on each other in a cycle.
    CrossLaneDeadlock,
    /// `OV201`: two conflicting buffer accesses lack a happens-before
    /// path.
    BufferRace,
    /// `OV301`: peak memory of the merged order exceeds the budget.
    MemoryBudgetExceeded,
    /// `OV401`: non-`dW`-class ops were reordered relative to the
    /// conventional execution order.
    NonWeightGradReorder,
    /// `OP101`: a `dW` op on the predicted critical path could legally
    /// run later, shortening the makespan (missed ooo opportunity).
    MissedOooOpportunity,
    /// `OP201`: a synchronization op placed on a compute lane serializes
    /// work that does not depend on it (avoidable stall).
    AvoidableBarrierStall,
    /// `OP301`: the order's reverse first-k depth is not the optimum of
    /// the concave-makespan model.
    SuboptimalReverseK,
    /// `OP401`: the pipeline schedule's bubble fraction exceeds what
    /// gradient fast-forwarding with modulo allocation achieves.
    ExcessPipelineBubble,
    /// `OP501`: a `dW` op executed early keeps its gradient buffer live
    /// across the peak; deferring it would shrink the high-water mark.
    PeakMemoryHotspot,
    /// `OM101`: a scheduled op accesses a buffer before it is defined or
    /// after its last keeper freed it.
    UseOfFreedBuffer,
    /// `OM201`: an explicit free plan frees one buffer twice, frees a
    /// never-resident buffer, or attributes a free to an unscheduled op.
    DoubleFree,
    /// `OM301`: the exact ledger peak exceeds the memory budget; the
    /// finding carries the witness interval and the resident set.
    PeakOverBudget,
    /// `OM401`: a buffer is retained to the window end by an unscheduled
    /// consumer although freeing it after its last scheduled use is
    /// clean and strictly lowers the peak.
    RetainedPastLastUse,
    /// `OM501`: out-of-order reordering inflates the peak over the
    /// in-order baseline and a single validated `dW` deferral restores
    /// the target.
    ReorderInflatesPeak,
}

/// Every analyzer rule, in rule-code order — the single source the
/// documentation tables are generated from.
pub const RULES: &[RuleId] = &[
    RuleId::UnknownOp,
    RuleId::DuplicateOp,
    RuleId::MissingOp,
    RuleId::DependencyInversion,
    RuleId::CrossLaneDeadlock,
    RuleId::BufferRace,
    RuleId::MemoryBudgetExceeded,
    RuleId::NonWeightGradReorder,
    RuleId::MissedOooOpportunity,
    RuleId::AvoidableBarrierStall,
    RuleId::SuboptimalReverseK,
    RuleId::ExcessPipelineBubble,
    RuleId::PeakMemoryHotspot,
    RuleId::UseOfFreedBuffer,
    RuleId::DoubleFree,
    RuleId::PeakOverBudget,
    RuleId::RetainedPastLastUse,
    RuleId::ReorderInflatesPeak,
];

impl RuleId {
    /// The stable rule code (e.g. `"OV201"`).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::UnknownOp => "OV001",
            RuleId::DuplicateOp => "OV002",
            RuleId::MissingOp => "OV003",
            RuleId::DependencyInversion => "OV101",
            RuleId::CrossLaneDeadlock => "OV102",
            RuleId::BufferRace => "OV201",
            RuleId::MemoryBudgetExceeded => "OV301",
            RuleId::NonWeightGradReorder => "OV401",
            RuleId::MissedOooOpportunity => "OP101",
            RuleId::AvoidableBarrierStall => "OP201",
            RuleId::SuboptimalReverseK => "OP301",
            RuleId::ExcessPipelineBubble => "OP401",
            RuleId::PeakMemoryHotspot => "OP501",
            RuleId::UseOfFreedBuffer => "OM101",
            RuleId::DoubleFree => "OM201",
            RuleId::PeakOverBudget => "OM301",
            RuleId::RetainedPastLastUse => "OM401",
            RuleId::ReorderInflatesPeak => "OM501",
        }
    }

    /// The severity this rule reports at.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::NonWeightGradReorder => Severity::Warning,
            RuleId::MissedOooOpportunity
            | RuleId::AvoidableBarrierStall
            | RuleId::SuboptimalReverseK
            | RuleId::ExcessPipelineBubble
            | RuleId::PeakMemoryHotspot
            | RuleId::RetainedPastLastUse
            | RuleId::ReorderInflatesPeak => Severity::Advice,
            _ => Severity::Error,
        }
    }

    /// One-line meaning, as shown in the documentation rule tables.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::UnknownOp => "schedule references an op outside the graph",
            RuleId::DuplicateOp => "op assigned to more than one lane/position",
            RuleId::MissingOp => "graph op missing from a complete schedule",
            RuleId::DependencyInversion => "op scheduled before its own dependency on one lane",
            RuleId::CrossLaneDeadlock => "cross-lane wait cycle (deadlock)",
            RuleId::BufferRace => "unsynchronized conflicting accesses to one buffer",
            RuleId::MemoryBudgetExceeded => "peak memory exceeds the configured budget",
            RuleId::NonWeightGradReorder => "non-`dW`-class ops deviate from conventional order",
            RuleId::MissedOooOpportunity => "deferrable dW op sits on the predicted critical path",
            RuleId::AvoidableBarrierStall => "sync op on a compute lane stalls independent work",
            RuleId::SuboptimalReverseK => "reverse first-k depth is off the concave-model optimum",
            RuleId::ExcessPipelineBubble => {
                "pipeline bubble fraction exceeds the modulo-allocation bound"
            }
            RuleId::PeakMemoryHotspot => {
                "deferring a dW op would shrink the peak-memory high-water mark"
            }
            RuleId::UseOfFreedBuffer => {
                "op accesses a buffer outside its static residency interval"
            }
            RuleId::DoubleFree => "free plan double-frees or misattributes a buffer lifetime",
            RuleId::PeakOverBudget => "ledger peak exceeds the budget (exact witness interval)",
            RuleId::RetainedPastLastUse => {
                "buffer retained past its last use; a validated early free lowers peak"
            }
            RuleId::ReorderInflatesPeak => {
                "ooo reordering inflates peak vs in-order; a validated deferral restores it"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Operations involved in the finding.
    pub ops: Vec<Op>,
    /// Names of the lanes involved (empty when not lane-specific).
    pub lanes: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Severity of the finding (derived from the rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }

    /// Converts the finding into the machine-readable interchange record
    /// of [`ooo_core::export`].
    pub fn to_record(&self) -> DiagnosticRecord {
        DiagnosticRecord {
            rule: self.rule.code().to_string(),
            severity: self.severity().as_str().to_string(),
            ops: self.ops.clone(),
            lanes: self.lanes.clone(),
            message: self.message.clone(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.rule, self.severity(), self.message)
    }
}

/// The outcome of one verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in analysis order (structural, deadlock, race,
    /// memory, legality).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `true` when no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one error-severity rule fired.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// The findings of one rule.
    pub fn by_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// The distinct rule codes that fired.
    pub fn rule_codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.rule.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Converts every finding into the interchange format, ready for
    /// [`ooo_core::export::diagnostics_to_json`].
    pub fn to_records(&self) -> Vec<DiagnosticRecord> {
        self.diagnostics.iter().map(Diagnostic::to_record).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Configuration of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Require every graph op to be scheduled (`OV003`). Disable for
    /// partial schedules such as the backward-only orders of
    /// reverse first-k scheduling.
    pub require_complete: bool,
    /// Peak-memory budget in bytes for `OV301`; `None` disables the
    /// memory-liveness analysis.
    pub memory_budget: Option<u64>,
    /// Run the ooo-legality lint (`OV401`).
    pub check_legality: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            require_complete: true,
            memory_budget: None,
            check_legality: true,
        }
    }
}

/// The analyzer. Borrows the dependency graph; one instance can verify
/// any number of schedules for that graph.
#[derive(Debug)]
pub struct Verifier<'g, C = UnitCost> {
    graph: &'g TrainGraph,
    cost: C,
    config: VerifyConfig,
}

impl<'g> Verifier<'g, UnitCost> {
    /// A verifier with default configuration and unit buffer sizes.
    pub fn new(graph: &'g TrainGraph) -> Self {
        Verifier {
            graph,
            cost: UnitCost,
            config: VerifyConfig::default(),
        }
    }
}

impl<'g, C: CostModel> Verifier<'g, C> {
    /// Replaces the configuration.
    pub fn with_config(mut self, config: VerifyConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the cost model used by the memory-liveness analysis.
    pub fn with_cost<D: CostModel>(self, cost: D) -> Verifier<'g, D> {
        Verifier {
            graph: self.graph,
            cost,
            config: self.config,
        }
    }

    /// Verifies a flat execution order (a single-lane schedule).
    pub fn verify_order(&self, order: &[Op]) -> Report {
        self.verify(&Schedule::single_lane("order", order.to_vec()))
    }

    /// Runs all analyses over `schedule` and returns the findings.
    pub fn verify(&self, schedule: &Schedule) -> Report {
        let mut diags = Vec::new();

        // --- Structural rules (OV001/OV002/OV003). A schedule that fails
        // OV001/OV002 has no well-defined event set, so the deeper
        // analyses are skipped.
        let mut seen: HashSet<Op> = HashSet::new();
        let mut structural_broken = false;
        for lane in &schedule.lanes {
            for &op in &lane.ops {
                if !self.graph.contains(op) {
                    diags.push(Diagnostic {
                        rule: RuleId::UnknownOp,
                        ops: vec![op],
                        lanes: vec![lane.name.clone()],
                        message: format!("{op} (lane {}) is not part of the graph", lane.name),
                    });
                    structural_broken = true;
                } else if !seen.insert(op) {
                    let lanes: Vec<String> = schedule
                        .lanes
                        .iter()
                        .filter(|l| l.ops.contains(&op))
                        .map(|l| l.name.clone())
                        .collect();
                    diags.push(Diagnostic {
                        rule: RuleId::DuplicateOp,
                        ops: vec![op],
                        message: format!(
                            "{op} is assigned more than once (lanes: {}); its output buffer \
                             would be produced twice",
                            lanes.join(", ")
                        ),
                        lanes,
                    });
                    structural_broken = true;
                }
            }
        }
        if structural_broken {
            return Report { diagnostics: diags };
        }
        if self.config.require_complete {
            let missing: Vec<Op> = self
                .graph
                .ops()
                .iter()
                .copied()
                .filter(|op| !seen.contains(op))
                .collect();
            if !missing.is_empty() {
                let shown: Vec<String> = missing.iter().map(|op| op.to_string()).collect();
                diags.push(Diagnostic {
                    rule: RuleId::MissingOp,
                    ops: missing,
                    lanes: Vec::new(),
                    message: format!(
                        "schedule is missing {} graph operation(s): {}",
                        shown.len(),
                        shown.join(", ")
                    ),
                });
            }
        }

        // --- OOO legality (OV401): purely positional, so it works even
        // when the schedule deadlocks.
        if self.config.check_legality {
            self.check_legality(schedule, &mut diags);
        }

        // --- Happens-before; on a cycle, report the deadlock and stop
        // (races and memory are undefined without a feasible execution).
        let relation = match hb::build(self.graph, schedule) {
            hb::HbResult::Cycle(cycle) => {
                self.report_cycle(schedule, cycle, &mut diags);
                return Report { diagnostics: diags };
            }
            hb::HbResult::Relation(r) => r,
        };

        // --- Race detection (OV201).
        self.check_races(schedule, &relation, &mut diags);

        // --- Memory liveness (OV301).
        if let Some(budget) = self.config.memory_budget {
            self.check_memory(schedule, budget, &mut diags);
        }

        Report { diagnostics: diags }
    }

    /// Same-lane pairs of non-`dW`-class ops whose relative order deviates
    /// from conventional backprop. Cross-lane deviations of non-`dW` ops
    /// need no separate rule: the forward chain transitively depends on
    /// the whole backward chain, so any such inversion already manifests
    /// as a dependency cycle (`OV101`/`OV102`).
    fn check_legality(&self, schedule: &Schedule, diags: &mut Vec<Diagnostic>) {
        let conv_pos: HashMap<Op, usize> = self
            .graph
            .conventional_backprop()
            .into_iter()
            .zip(0..)
            .collect();
        for lane in &schedule.lanes {
            let fixed: Vec<Op> = lane
                .ops
                .iter()
                .copied()
                .filter(|op| !op.is_weight_grad_class())
                .collect();
            for (i, &a) in fixed.iter().enumerate() {
                for &b in &fixed[i + 1..] {
                    if conv_pos[&a] > conv_pos[&b] {
                        diags.push(Diagnostic {
                            rule: RuleId::NonWeightGradReorder,
                            ops: vec![a, b],
                            lanes: vec![lane.name.clone()],
                            message: format!(
                                "{a} runs before {b} on lane {}, inverting their conventional \
                                 order; out-of-order backprop may only move dW-class ops \
                                 (dW/S[dW]/U)",
                                lane.name
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Classifies a union-graph cycle: same-lane dependency inversions
    /// are the precise cause when they exist (`OV101`), otherwise the
    /// lanes genuinely deadlock against each other (`OV102`).
    fn report_cycle(&self, schedule: &Schedule, cycle: Vec<Op>, diags: &mut Vec<Diagnostic>) {
        let mut found_inversion = false;
        for lane in &schedule.lanes {
            let lane_pos: HashMap<Op, usize> = lane.ops.iter().copied().zip(0..).collect();
            for (i, &op) in lane.ops.iter().enumerate() {
                for dep in self.graph.deps(op).expect("structurally checked") {
                    if lane_pos.get(&dep).is_some_and(|&j| j > i) {
                        found_inversion = true;
                        diags.push(Diagnostic {
                            rule: RuleId::DependencyInversion,
                            ops: vec![op, dep],
                            lanes: vec![lane.name.clone()],
                            message: format!(
                                "{op} is scheduled before its dependency {dep} on lane {}",
                                lane.name
                            ),
                        });
                    }
                }
            }
        }
        if !found_inversion {
            let mut lanes: Vec<String> = cycle
                .iter()
                .filter_map(|&op| schedule.lane_of(op))
                .map(|r| schedule.lanes[r.0].name.clone())
                .collect();
            lanes.sort();
            lanes.dedup();
            let chain: Vec<String> = cycle.iter().map(|op| op.to_string()).collect();
            diags.push(Diagnostic {
                rule: RuleId::CrossLaneDeadlock,
                ops: cycle,
                lanes,
                message: format!(
                    "cross-lane wait cycle: {} -> (back to start); no lane can make progress",
                    chain.join(" -> ")
                ),
            });
        }
    }

    /// Conflicting buffer accesses with no happens-before path (`OV201`).
    fn check_races(
        &self,
        schedule: &Schedule,
        relation: &hb::HbRelation,
        diags: &mut Vec<Diagnostic>,
    ) {
        let layers = self.graph.layers();
        let mut by_buffer: HashMap<BufferId, Vec<(Op, usize, AccessKind)>> = HashMap::new();
        for (lane_idx, lane) in schedule.lanes.iter().enumerate() {
            for &op in &lane.ops {
                for (buf, kind) in accesses(op, layers) {
                    by_buffer.entry(buf).or_default().push((op, lane_idx, kind));
                }
            }
        }
        let mut buffers: Vec<BufferId> = by_buffer.keys().copied().collect();
        buffers.sort_unstable();
        for buf in buffers {
            let accs = &by_buffer[&buf];
            for (i, &(a, la, ka)) in accs.iter().enumerate() {
                for &(b, lb, kb) in &accs[i + 1..] {
                    let conflicting =
                        la != lb && (ka == AccessKind::Write || kb == AccessKind::Write);
                    if conflicting && !relation.ordered(a, b) {
                        diags.push(Diagnostic {
                            rule: RuleId::BufferRace,
                            ops: vec![a, b],
                            lanes: vec![
                                schedule.lanes[la].name.clone(),
                                schedule.lanes[lb].name.clone(),
                            ],
                            message: format!(
                                "unsynchronized accesses to {buf}: {a} ({ka}, lane {}) and \
                                 {b} ({kb}, lane {}) have no happens-before path",
                                schedule.lanes[la].name, schedule.lanes[lb].name
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Peak memory of the merged linearization against the budget
    /// (`OV301`).
    fn check_memory(&self, schedule: &Schedule, budget: u64, diags: &mut Vec<Diagnostic>) {
        // The union graph is acyclic here (the deadlock analysis passed),
        // so the merge over the same edge set cannot fail.
        let merged = match merge_lanes(self.graph, schedule) {
            Ok(m) => m,
            Err(_) => return,
        };
        let profile = match memory_profile(self.graph, &merged, &self.cost) {
            Ok(p) => p,
            Err(_) => return,
        };
        if profile.peak > budget {
            // The op whose sample is highest marks where the peak region
            // lies (the exact peak may occur transiently inside an op).
            let at = profile
                .samples
                .iter()
                .max_by_key(|&&(_, m)| m)
                .map(|&(op, _)| op);
            diags.push(Diagnostic {
                rule: RuleId::MemoryBudgetExceeded,
                ops: at.into_iter().collect(),
                lanes: Vec::new(),
                message: format!(
                    "peak memory {} bytes exceeds the budget of {budget} bytes \
                     (resident at backward start: {} bytes)",
                    profile.peak, profile.initial
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::memory::memory_profile;
    use ooo_core::op::LayerId;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.rule_codes()
    }

    #[test]
    fn rule_tables_are_generated_from_summaries() {
        // One source of truth: the crate-docs table, the README table,
        // and the DESIGN §16 OM table must all carry exactly the row
        // `RuleId::summary` renders for every rule, so none drift apart.
        let lib = include_str!("lib.rs");
        let readme = include_str!("../../../README.md");
        let design = include_str!("../../../DESIGN.md");
        for &rule in RULES {
            let row = format!(
                "| `{}` | {} | {} |",
                rule.code(),
                rule.severity().as_str(),
                rule.summary()
            );
            assert!(lib.contains(&row), "crate docs missing row: {row}");
            assert!(readme.contains(&row), "README missing row: {row}");
            if rule.code().starts_with("OM") {
                assert!(design.contains(&row), "DESIGN missing row: {row}");
            }
        }
    }

    #[test]
    fn conventional_and_fast_forward_are_clean() {
        for graph in [
            TrainGraph::single_gpu(6),
            TrainGraph::data_parallel(6),
            TrainGraph::pipeline_parallel(6),
        ] {
            let v = Verifier::new(&graph);
            assert!(v.verify_order(&graph.conventional_backprop()).is_clean());
            assert!(v.verify_order(&graph.fast_forward_backprop()).is_clean());
        }
    }

    #[test]
    fn unknown_op_is_ov001() {
        let graph = TrainGraph::single_gpu(3);
        let mut order = graph.conventional_backprop();
        order.push(Op::Forward(LayerId(99)));
        let report = Verifier::new(&graph).verify_order(&order);
        assert_eq!(codes(&report), vec!["OV001"]);
        assert!(report.has_errors());
    }

    #[test]
    fn double_assigned_op_is_ov002() {
        let graph = TrainGraph::single_gpu(3);
        let mut s = Schedule::new();
        s.add_lane("main", graph.conventional_backprop());
        // dW3's buffer produced a second time on another lane.
        s.add_lane("sub", vec![Op::WeightGrad(LayerId(3))]);
        let report = Verifier::new(&graph).verify(&s);
        assert_eq!(codes(&report), vec!["OV002"]);
        let d = &report.by_rule(RuleId::DuplicateOp)[0];
        assert_eq!(d.ops, vec![Op::WeightGrad(LayerId(3))]);
        assert_eq!(d.lanes, vec!["main".to_string(), "sub".to_string()]);
    }

    #[test]
    fn missing_op_is_ov003_and_only_with_require_complete() {
        let graph = TrainGraph::single_gpu(3);
        let mut order = graph.conventional_backprop();
        let dropped = order.pop().unwrap();
        let report = Verifier::new(&graph).verify_order(&order);
        assert_eq!(codes(&report), vec!["OV003"]);
        assert_eq!(report.by_rule(RuleId::MissingOp)[0].ops, vec![dropped]);

        let partial = Verifier::new(&graph)
            .with_config(VerifyConfig {
                require_complete: false,
                ..VerifyConfig::default()
            })
            .verify_order(&order);
        assert!(partial.is_clean());
    }

    #[test]
    fn dependency_inversion_of_do_pair_is_ov101_plus_ov401() {
        let graph = TrainGraph::single_gpu(4);
        let mut order = graph.conventional_backprop();
        let p3 = order
            .iter()
            .position(|&o| o == Op::OutputGrad(LayerId(3)))
            .unwrap();
        let p2 = order
            .iter()
            .position(|&o| o == Op::OutputGrad(LayerId(2)))
            .unwrap();
        order.swap(p3, p2);
        let report = Verifier::new(&graph).verify_order(&order);
        assert_eq!(codes(&report), vec!["OV101", "OV401"]);
        let inv = &report.by_rule(RuleId::DependencyInversion)[0];
        assert_eq!(
            inv.ops,
            vec![Op::OutputGrad(LayerId(2)), Op::OutputGrad(LayerId(3))]
        );
    }

    #[test]
    fn weight_grad_class_inversion_is_ov101_without_ov401() {
        let graph = TrainGraph::single_gpu(4);
        let mut order = graph.conventional_backprop();
        let pw = order
            .iter()
            .position(|&o| o == Op::WeightGrad(LayerId(4)))
            .unwrap();
        let pu = order
            .iter()
            .position(|&o| o == Op::Update(LayerId(4)))
            .unwrap();
        order.swap(pw, pu);
        let report = Verifier::new(&graph).verify_order(&order);
        assert_eq!(codes(&report), vec!["OV101"]);
    }

    #[test]
    fn dropped_sync_op_races_on_the_gradient_buffer() {
        // Pipeline training: dO3 on gpu1 produces grad[2]; dW2 on gpu0
        // consumes it. With S[dO3] dropped from the schedule there is no
        // happens-before path between them.
        let graph = TrainGraph::pipeline_parallel(3);
        let mut s = Schedule::new();
        s.add_lane("gpu1", vec![Op::Loss, Op::OutputGrad(LayerId(3))]);
        s.add_lane("gpu0", vec![Op::WeightGrad(LayerId(2))]);
        let report = Verifier::new(&graph)
            .with_config(VerifyConfig {
                require_complete: false,
                ..VerifyConfig::default()
            })
            .verify(&s);
        assert_eq!(codes(&report), vec!["OV201"]);
        let race = &report.by_rule(RuleId::BufferRace)[0];
        assert!(race.message.contains("grad[2]"), "{}", race.message);

        // Restoring the sync op on a link lane removes the race.
        let mut fixed = Schedule::new();
        fixed.add_lane("gpu1", vec![Op::Loss, Op::OutputGrad(LayerId(3))]);
        fixed.add_lane("gpu0", vec![Op::WeightGrad(LayerId(2))]);
        fixed.add_lane("link", vec![Op::SyncOutputGrad(LayerId(3))]);
        let report = Verifier::new(&graph)
            .with_config(VerifyConfig {
                require_complete: false,
                ..VerifyConfig::default()
            })
            .verify(&fixed);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn cross_lane_wait_cycle_is_ov102() {
        // Three lanes of a 4-layer pipeline wait on each other: the
        // compute lane "a" wants dW1 (needs S[dO2]) before it produces
        // dO4, but S[dO2] transitively needs dO4.
        let graph = TrainGraph::pipeline_parallel(4);
        let mut s = Schedule::new();
        s.add_lane(
            "a",
            vec![Op::WeightGrad(LayerId(1)), Op::OutputGrad(LayerId(4))],
        );
        s.add_lane(
            "b",
            vec![
                Op::Loss,
                Op::OutputGrad(LayerId(3)),
                Op::OutputGrad(LayerId(2)),
            ],
        );
        s.add_lane(
            "c",
            vec![
                Op::SyncOutputGrad(LayerId(4)),
                Op::SyncOutputGrad(LayerId(3)),
                Op::SyncOutputGrad(LayerId(2)),
            ],
        );
        let report = Verifier::new(&graph)
            .with_config(VerifyConfig {
                require_complete: false,
                ..VerifyConfig::default()
            })
            .verify(&s);
        assert_eq!(codes(&report), vec!["OV102"]);
        let d = &report.by_rule(RuleId::CrossLaneDeadlock)[0];
        assert!(d.ops.len() >= 2);
        assert!(d.lanes.len() >= 2, "cycle spans lanes: {:?}", d.lanes);
    }

    #[test]
    fn memory_budget_violation_is_ov301() {
        let graph = TrainGraph::single_gpu(6);
        let conv = memory_profile(&graph, &graph.conventional_backprop(), &UnitCost).unwrap();
        let ooo = memory_profile(&graph, &graph.fast_forward_backprop(), &UnitCost).unwrap();
        assert!(ooo.peak > conv.peak, "test premise");

        let v = Verifier::new(&graph).with_config(VerifyConfig {
            memory_budget: Some(conv.peak),
            ..VerifyConfig::default()
        });
        // The conventional order fits the budget...
        assert!(v.verify_order(&graph.conventional_backprop()).is_clean());
        // ...but delaying every dW to the end does not.
        let report = v.verify_order(&graph.fast_forward_backprop());
        assert_eq!(codes(&report), vec!["OV301"]);
        assert!(report.by_rule(RuleId::MemoryBudgetExceeded)[0]
            .message
            .contains("exceeds the budget"));
    }

    #[test]
    fn report_display_and_records() {
        let graph = TrainGraph::single_gpu(3);
        let mut order = graph.conventional_backprop();
        order.pop();
        let report = Verifier::new(&graph).verify_order(&order);
        let shown = report.to_string();
        assert!(shown.contains("OV003"), "{shown}");
        let records = report.to_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].rule, "OV003");
        assert_eq!(records[0].severity, "error");
        assert!(Verifier::new(&graph)
            .verify_order(&graph.conventional_backprop())
            .to_string()
            .contains("clean"));
    }
}
