//! The buffer-access model behind the race detector.
//!
//! Race detection needs to know which memory each operation touches. The
//! model here mirrors the buffer-lifetime model of
//! [`ooo_core::memory`] and extends it with the weight and
//! next-iteration-activation buffers that the backward-only memory
//! accounting does not track:
//!
//! - `act[i]` — layer `i`'s input activation from the previous forward
//!   pass. Read by `dO_i` and `dW_i`; written by nobody inside the
//!   iteration (its producer ran last iteration).
//! - `grad[i]` — the gradient flowing *into* layer `i` (the paper's
//!   `dO_{i+1}` output). Written by the producer (`Loss` for `i = L`,
//!   else `dO_{i+1}`) and by the transfer `S[dO_{i+1}]` when pipeline
//!   synchronization exists; read by `dO_i` and `dW_i`.
//! - `wgrad[i]` — `dW_i`'s result. Written by `dW_i`, re-written
//!   (all-reduced in place) by `S[dW_i]`, read by `U_i`.
//! - `weights[i]` — layer `i`'s parameters. Written by `U_i`, read by
//!   `F_i`.
//! - `next_act[i]` — layer `i`'s output in the *next* iteration's forward
//!   pass. Written by `F_i`, read by `F_{i+1}`.
//!
//! Under this model every dependency-valid schedule is race-free: each
//! writer/reader pair of the same buffer is connected by a dependency
//! path of the [`ooo_core::TrainGraph`]. Conversely, dropping a
//! synchronization op from a schedule removes the only happens-before
//! path between a cross-lane producer and consumer, which is exactly the
//! hazard rule `OV201` reports.

use ooo_core::op::{LayerId, Op};

/// A logical buffer of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BufferId {
    /// Layer `i`'s input activation (previous forward pass).
    Activation(usize),
    /// Gradient flowing into layer `i` (output of `dO_{i+1}` / `Loss`).
    OutGrad(usize),
    /// Weight-gradient buffer of layer `i`.
    WeightGrad(usize),
    /// Parameter buffer of layer `i`.
    Weights(usize),
    /// Layer `i`'s output activation in the next iteration's forward pass.
    NextActivation(usize),
}

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferId::Activation(i) => write!(f, "act[{i}]"),
            BufferId::OutGrad(i) => write!(f, "grad[{i}]"),
            BufferId::WeightGrad(i) => write!(f, "wgrad[{i}]"),
            BufferId::Weights(i) => write!(f, "weights[{i}]"),
            BufferId::NextActivation(i) => write!(f, "next_act[{i}]"),
        }
    }
}

/// How an operation touches a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The operation only observes the buffer.
    Read,
    /// The operation produces or mutates the buffer (an in-place
    /// all-reduce counts as a write).
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// The buffer accesses of `op` in a graph with `layers` layers.
pub fn accesses(op: Op, layers: usize) -> Vec<(BufferId, AccessKind)> {
    use AccessKind::{Read, Write};
    match op {
        Op::Loss => vec![(BufferId::OutGrad(layers), Write)],
        Op::OutputGrad(LayerId(i)) => {
            let mut a = vec![
                (BufferId::OutGrad(i), Read),
                (BufferId::Activation(i), Read),
            ];
            if i > 1 {
                a.push((BufferId::OutGrad(i - 1), Write));
            }
            a
        }
        Op::WeightGrad(LayerId(i)) => vec![
            (BufferId::OutGrad(i), Read),
            (BufferId::Activation(i), Read),
            (BufferId::WeightGrad(i), Write),
        ],
        // The activation-gradient transfer moves dO_i's output (the
        // gradient into layer i-1) across the device boundary.
        Op::SyncOutputGrad(LayerId(i)) => {
            if i > 1 {
                vec![(BufferId::OutGrad(i - 1), Write)]
            } else {
                Vec::new()
            }
        }
        Op::SyncWeightGrad(LayerId(i)) => vec![(BufferId::WeightGrad(i), Write)],
        Op::Update(LayerId(i)) => vec![
            (BufferId::WeightGrad(i), Read),
            (BufferId::Weights(i), Write),
        ],
        Op::Forward(LayerId(i)) => {
            let mut a = vec![
                (BufferId::Weights(i), Read),
                (BufferId::NextActivation(i), Write),
            ];
            if i > 1 {
                a.push((BufferId::NextActivation(i - 1), Read));
            }
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_writes_last_layer_gradient() {
        assert_eq!(
            accesses(Op::Loss, 4),
            vec![(BufferId::OutGrad(4), AccessKind::Write)]
        );
    }

    #[test]
    fn first_layer_output_grad_writes_nothing() {
        let a = accesses(Op::OutputGrad(LayerId(1)), 4);
        assert!(a.iter().all(|&(_, k)| k == AccessKind::Read));
        let a = accesses(Op::SyncOutputGrad(LayerId(1)), 4);
        assert!(a.is_empty());
    }

    #[test]
    fn every_pair_on_a_shared_buffer_is_dependency_connected() {
        // The soundness argument for OV201: in a full graph, any two ops
        // touching the same buffer with at least one write are ordered by
        // a dependency path. Verified here by brute force over the three
        // graph families.
        use ooo_core::TrainGraph;
        for graph in [
            TrainGraph::single_gpu(5),
            TrainGraph::data_parallel(5),
            TrainGraph::pipeline_parallel(5),
        ] {
            // Transitive closure by DFS per op (tiny graphs).
            let reachable = |from: Op, to: Op| -> bool {
                let mut stack = vec![from];
                let mut seen = std::collections::HashSet::new();
                while let Some(x) = stack.pop() {
                    if x == to {
                        return true;
                    }
                    if seen.insert(x) {
                        stack.extend(graph.dependents(x).unwrap());
                    }
                }
                false
            };
            for &a in graph.ops() {
                for &b in graph.ops() {
                    if a >= b {
                        continue;
                    }
                    let aa = accesses(a, 5);
                    let ab = accesses(b, 5);
                    let conflict = aa.iter().any(|&(buf, ka)| {
                        ab.iter().any(|&(buf2, kb)| {
                            buf == buf2 && (ka == AccessKind::Write || kb == AccessKind::Write)
                        })
                    });
                    if conflict {
                        assert!(
                            reachable(a, b) || reachable(b, a),
                            "{a} and {b} conflict but are unordered"
                        );
                    }
                }
            }
        }
    }
}
