//! Static memory-lifetime analysis: the exact multi-lane ledger and the
//! `OM`-series rules behind `ooo-memcheck`.
//!
//! The ledger assigns every tracked buffer one residency interval
//! `[alloc, free)` computed *statically* from a schedule's predicted op
//! intervals (see [`crate::predict`], which matches the simulators at
//! tolerance 0):
//!
//! - **Activations** `act[i]` are carried in from the previous forward
//!   pass: resident from the window start until their last scheduled
//!   keeper (`dO_i`/`dW_i`) finishes. Under pipeline schedules these are
//!   the activation stashes — the interval simply stretches across the
//!   stage that holds them.
//! - **Output gradients** `grad[i]` are defined when their producer
//!   (`Loss` or `dO_{i+1}`) starts and freed when `dO_i` and `dW_i` have
//!   both finished.
//! - **Weight gradients** `wgrad[i]` are defined when `dW_i` starts and
//!   freed when every scheduled consumer — the data-parallel `S[dW_i]`
//!   and the update `U_i` — has finished.
//!
//! A buffer whose producer is outside the window but that a scheduled op
//! accesses is treated as carried in (resident from the start); a buffer
//! with an unscheduled graph consumer is retained to the window end. At
//! equal timestamps allocations are applied before frees, on both the
//! static sweep and the instrumented counter, so the two agree exactly.
//!
//! [`instrument_timeline`] is the differential twin: an independent
//! event-driven counter over a *simulated* [`Timeline`] that maintains
//! per-buffer keeper countdowns instead of explicit intervals. The
//! conformance suite proves `ledger == counter` at tolerance 0 for every
//! engine.
//!
//! ## The OM rule family
//!
//! - `OM101` use-of-freed (or not-yet-defined) buffer — an op's access
//!   interval falls outside the buffer's residency interval.
//! - `OM201` double-free / conflicting lifetime attribution in an
//!   explicit [`FreePlan`].
//! - `OM301` peak over budget, with the exact witness interval and the
//!   resident set at the peak.
//! - `OM401` retained past last use: a buffer kept to the window end by
//!   an unscheduled consumer, where freeing it after its last scheduled
//!   use is `OM`-clean and strictly lowers the peak (mutation-validated).
//! - `OM501` out-of-order reordering inflates the peak over the in-order
//!   baseline, and a minimal single-`dW` deferral restores the target
//!   (mutation-validated, `OV`-clean).

use crate::access::{accesses, BufferId};
use crate::predict::{predict_makespan, Prediction};
use crate::{Diagnostic, RuleId, Verifier, VerifyConfig};
use ooo_core::cost::CostModel;
use ooo_core::list_scheduling::Timeline;
use ooo_core::memory::{buffer_bytes, buffer_consumers, op_allocations, Buffer};
use ooo_core::op::LayerId;
use ooo_core::schedule::Schedule;
use ooo_core::{Error, Op, SimTime, TrainGraph};
use std::collections::HashMap;

/// One scheduled operation with its (predicted or simulated) interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// The operation.
    pub op: Op,
    /// Start time (ns).
    pub start: SimTime,
    /// Finish time (ns).
    pub end: SimTime,
}

/// The spans of a static prediction, in lane-major schedule order.
pub fn spans_of_prediction(prediction: &Prediction) -> Vec<OpSpan> {
    prediction
        .ops()
        .iter()
        .map(|p| OpSpan {
            op: p.op,
            start: p.start,
            end: p.end,
        })
        .collect()
}

/// The spans of a simulated timeline, in timeline order.
pub fn spans_of_timeline(timeline: &Timeline) -> Vec<OpSpan> {
    timeline
        .entries
        .iter()
        .map(|e| OpSpan {
            op: e.op,
            start: e.start,
            end: e.end,
        })
        .collect()
}

/// An explicit lifetime attribution: free each listed buffer when the
/// paired op finishes, overriding the derived (last-keeper) free point.
///
/// Used to apply `OM401` suggestions and to inject violations in the
/// mutation tests; an inconsistent plan draws `OM201`.
#[derive(Debug, Clone, Default)]
pub struct FreePlan {
    /// `(buffer, op)` pairs: free `buffer` after `op` finishes.
    pub frees: Vec<(Buffer, Op)>,
}

/// One buffer's residency interval in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The buffer.
    pub buf: Buffer,
    /// Its size in bytes.
    pub bytes: u64,
    /// Time the buffer becomes resident.
    pub alloc: SimTime,
    /// Time it is freed; `None` = retained to the window end.
    pub free: Option<SimTime>,
    /// The scheduled op that defines it; `None` = carried in from before
    /// the window.
    pub defined_by: Option<Op>,
}

/// The exact live/peak ledger of one schedule window.
#[derive(Debug, Clone)]
pub struct MemLedger {
    /// Residency intervals, in buffer order.
    pub intervals: Vec<Interval>,
    /// Bytes resident at the window start (carried-in buffers).
    pub initial: u64,
    /// Peak residency over the window.
    pub peak: u64,
    /// First time the peak is attained.
    pub peak_at: SimTime,
    /// End of the witness interval: the next event after `peak_at` (the
    /// resident set below holds throughout `[peak_at, peak_until)`).
    pub peak_until: SimTime,
    /// Buffers resident at the peak, in buffer order.
    pub resident_at_peak: Vec<Buffer>,
    /// Bytes still resident after every scheduled op finished.
    pub final_usage: u64,
    /// Latest finish time across the window.
    pub window_end: SimTime,
    index: HashMap<Buffer, usize>,
}

impl MemLedger {
    /// The residency interval of `buf`, if it is ever resident.
    pub fn interval_of(&self, buf: Buffer) -> Option<&Interval> {
        self.index.get(&buf).map(|&i| &self.intervals[i])
    }
}

/// The outcome of the instrumented per-op memory counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCounter {
    /// Bytes resident at the window start.
    pub initial: u64,
    /// Peak residency over the window.
    pub peak: u64,
    /// Bytes still resident after the last event.
    pub final_usage: u64,
}

/// The `act[i]`/`grad[i]`/`wgrad[i]` notation shared with [`crate::access`].
pub fn buffer_name(buf: Buffer) -> String {
    match buf {
        Buffer::Activation(i) => format!("act[{i}]"),
        Buffer::OutGrad(i) => format!("grad[{i}]"),
        Buffer::WeightGrad(i) => format!("wgrad[{i}]"),
    }
}

/// Maps an access-model buffer onto a ledger buffer. Weights and
/// next-iteration activations are persistent (not iteration-temporary),
/// so the ledger does not track them.
fn as_ledger_buffer(buf: BufferId) -> Option<Buffer> {
    match buf {
        BufferId::Activation(i) => Some(Buffer::Activation(i)),
        BufferId::OutGrad(i) => Some(Buffer::OutGrad(i)),
        BufferId::WeightGrad(i) => Some(Buffer::WeightGrad(i)),
        BufferId::Weights(_) | BufferId::NextActivation(_) => None,
    }
}

/// The op that defines `buf` inside a window, if any.
fn producer_of(graph: &TrainGraph, buf: Buffer) -> Option<Op> {
    let op = match buf {
        Buffer::Activation(_) => return None,
        Buffer::OutGrad(i) if i == graph.layers() => Op::Loss,
        Buffer::OutGrad(i) => Op::OutputGrad(LayerId(i + 1)),
        Buffer::WeightGrad(i) => Op::WeightGrad(LayerId(i)),
    };
    graph.contains(op).then_some(op)
}

/// Every buffer of the graph, in buffer order.
fn all_buffers(graph: &TrainGraph) -> Vec<Buffer> {
    let l = graph.layers();
    let mut bufs = Vec::with_capacity(3 * l);
    for i in 1..=l {
        bufs.push(Buffer::Activation(i));
    }
    for i in 1..=l {
        bufs.push(Buffer::OutGrad(i));
    }
    for i in 1..=l {
        bufs.push(Buffer::WeightGrad(i));
    }
    bufs
}

/// Scheduled accessors of every buffer, in span order.
fn accessor_map(graph: &TrainGraph, spans: &[OpSpan]) -> HashMap<Buffer, Vec<OpSpan>> {
    let layers = graph.layers();
    let mut map: HashMap<Buffer, Vec<OpSpan>> = HashMap::new();
    for &span in spans {
        for (buf, _) in accesses(span.op, layers) {
            if let Some(b) = as_ledger_buffer(buf) {
                let entry = map.entry(b).or_default();
                if !entry.iter().any(|s| s.op == span.op) {
                    entry.push(span);
                }
            }
        }
    }
    map
}

/// Builds the exact ledger of a window given its op spans. Returns the
/// ledger plus any `OM201` findings the free plan drew.
pub fn ledger_of_spans<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    spans: &[OpSpan],
    plan: Option<&FreePlan>,
) -> (MemLedger, Vec<Diagnostic>) {
    let mut scheduled: HashMap<Op, OpSpan> = HashMap::new();
    for &span in spans {
        scheduled.entry(span.op).or_insert(span);
    }
    let window_end = spans.iter().map(|s| s.end).max().unwrap_or(0);
    let accessors = accessor_map(graph, spans);

    // Residency intervals: alloc at the scheduled producer's start, or at
    // the window start for carried-in buffers; free when the last
    // scheduled keeper finishes, provided every graph keeper is
    // scheduled, else retained.
    let mut intervals: Vec<Interval> = Vec::new();
    let mut index: HashMap<Buffer, usize> = HashMap::new();
    for buf in all_buffers(graph) {
        let producer = producer_of(graph, buf);
        let (alloc, defined_by) = match producer.and_then(|p| scheduled.get(&p)) {
            Some(span) => (span.start, Some(span.op)),
            None => {
                let carried = matches!(buf, Buffer::Activation(_))
                    || accessors.get(&buf).is_some_and(|a| !a.is_empty());
                if !carried {
                    continue;
                }
                (0, None)
            }
        };
        let keepers = buffer_consumers(graph, buf);
        let keeper_spans: Vec<&OpSpan> =
            keepers.iter().filter_map(|op| scheduled.get(op)).collect();
        let free = if !keepers.is_empty() && keeper_spans.len() == keepers.len() {
            // All keepers scheduled: free at the latest keeper finish,
            // clamped to the definition time (a keeper that finished
            // before the definition makes the buffer transient).
            Some(
                keeper_spans
                    .iter()
                    .map(|s| s.end)
                    .max()
                    .unwrap_or(alloc)
                    .max(alloc),
            )
        } else {
            None
        };
        index.insert(buf, intervals.len());
        intervals.push(Interval {
            buf,
            bytes: buffer_bytes(cost, buf),
            alloc,
            free,
            defined_by,
        });
    }

    // Apply the explicit free plan, collecting OM201 findings for
    // inconsistent attributions.
    let mut om201: Vec<Diagnostic> = Vec::new();
    if let Some(plan) = plan {
        let mut planned: HashMap<Buffer, Op> = HashMap::new();
        for &(buf, op) in &plan.frees {
            let name = buffer_name(buf);
            if let Some(&prev) = planned.get(&buf) {
                om201.push(Diagnostic {
                    rule: RuleId::DoubleFree,
                    ops: vec![prev, op],
                    lanes: Vec::new(),
                    message: format!(
                        "{name} is freed twice: after {prev} and again after {op}; \
                         conflicting lifetime attribution"
                    ),
                });
                continue;
            }
            let Some(&idx) = index.get(&buf) else {
                om201.push(Diagnostic {
                    rule: RuleId::DoubleFree,
                    ops: vec![op],
                    lanes: Vec::new(),
                    message: format!(
                        "{name} is freed after {op} but is never resident in this window"
                    ),
                });
                continue;
            };
            let Some(span) = scheduled.get(&op) else {
                om201.push(Diagnostic {
                    rule: RuleId::DoubleFree,
                    ops: vec![op],
                    lanes: Vec::new(),
                    message: format!(
                        "{name} is freed after {op}, which is not scheduled in this window"
                    ),
                });
                continue;
            };
            planned.insert(buf, op);
            intervals[idx].free = Some(span.end.max(intervals[idx].alloc));
        }
    }

    // Event sweep. At equal timestamps frees of previously-resident
    // buffers apply before allocations (a buffer whose last keeper
    // finishes exactly when the next op starts is released first, the
    // convention of the sequential `memory_profile`); zero-width
    // residencies (freed the instant they are defined) count momentarily
    // and release after the timestamp's allocations. The instrumented
    // counter mirrors the same three phases, so both sides agree exactly.
    let mut events: Vec<(SimTime, u8, usize)> = Vec::with_capacity(2 * intervals.len());
    for (i, iv) in intervals.iter().enumerate() {
        events.push((iv.alloc, 1, i));
        if let Some(f) = iv.free {
            let phase = if f == iv.alloc { 2 } else { 0 };
            events.push((f, phase, i));
        }
    }
    events.sort_unstable_by_key(|&(t, phase, i)| (t, phase, i));

    let mut usage: u64 = 0;
    let mut peak: u64 = 0;
    for &(_, phase, i) in &events {
        if phase == 1 {
            usage += intervals[i].bytes;
            peak = peak.max(usage);
        } else {
            usage -= intervals[i].bytes;
        }
    }
    let final_usage = usage;

    // Second pass: locate the first attainment of the peak and snapshot
    // the resident set plus the witness interval.
    let mut usage: u64 = 0;
    let mut live: Vec<bool> = vec![false; intervals.len()];
    let mut peak_at: SimTime = 0;
    let mut peak_until: SimTime = window_end;
    let mut resident_at_peak: Vec<Buffer> = Vec::new();
    let mut found = false;
    for (pos, &(t, phase, i)) in events.iter().enumerate() {
        if phase == 1 {
            usage += intervals[i].bytes;
            live[i] = true;
        } else {
            usage -= intervals[i].bytes;
            live[i] = false;
        }
        if !found && phase == 1 && usage == peak {
            found = true;
            peak_at = t;
            peak_until = events
                .get(pos + 1)
                .map(|&(t2, _, _)| t2)
                .unwrap_or(window_end);
            resident_at_peak = intervals
                .iter()
                .enumerate()
                .filter(|&(j, _)| live[j])
                .map(|(_, iv)| iv.buf)
                .collect();
            resident_at_peak.sort_unstable();
        }
    }

    let initial = intervals
        .iter()
        .filter(|iv| iv.defined_by.is_none())
        .map(|iv| iv.bytes)
        .sum();
    (
        MemLedger {
            intervals,
            initial,
            peak,
            peak_at,
            peak_until,
            resident_at_peak,
            final_usage,
            window_end,
            index,
        },
        om201,
    )
}

/// Predicts `schedule` and builds its (plan-free) ledger.
///
/// # Errors
///
/// Mirrors [`predict_makespan`] for malformed or deadlocking schedules.
pub fn ledger_of_schedule<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<MemLedger, Error> {
    let pred = predict_makespan(graph, schedule, cost)?;
    let spans = spans_of_prediction(&pred);
    Ok(ledger_of_spans(graph, cost, &spans, None).0)
}

/// The static ledger peak of `schedule` — the quantity the memory-capped
/// tuner objective constrains.
///
/// # Errors
///
/// Mirrors [`predict_makespan`].
pub fn schedule_peak<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<u64, Error> {
    ledger_of_schedule(graph, schedule, cost).map(|l| l.peak)
}

/// The instrumented per-op memory counter: an independent event-driven
/// sweep over a simulated timeline, maintaining keeper countdowns per
/// buffer instead of explicit intervals. Agrees with
/// [`ledger_of_spans`] at tolerance 0 on the same window.
pub fn instrument_timeline<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    timeline: &Timeline,
) -> MemCounter {
    let spans = spans_of_timeline(timeline);
    let mut scheduled: HashMap<Op, OpSpan> = HashMap::new();
    for &span in &spans {
        scheduled.entry(span.op).or_insert(span);
    }
    let accessors = accessor_map(graph, &spans);

    // Per-buffer bookkeeping: remaining scheduled keepers, whether the
    // buffer is freeable at all (every graph keeper scheduled), and the
    // carried-in set.
    let mut bytes: HashMap<Buffer, u64> = HashMap::new();
    let mut remaining: HashMap<Buffer, usize> = HashMap::new();
    let mut freeable: HashMap<Buffer, bool> = HashMap::new();
    let mut kept_by: HashMap<Op, Vec<Buffer>> = HashMap::new();
    let mut usage: u64 = 0;
    let mut live: HashMap<Buffer, bool> = HashMap::new();
    for buf in all_buffers(graph) {
        let keepers = buffer_consumers(graph, buf);
        let scheduled_keepers = keepers
            .iter()
            .filter(|op| scheduled.contains_key(op))
            .count();
        bytes.insert(buf, buffer_bytes(cost, buf));
        remaining.insert(buf, scheduled_keepers);
        freeable.insert(
            buf,
            !keepers.is_empty() && scheduled_keepers == keepers.len(),
        );
        for op in keepers {
            kept_by.entry(op).or_default().push(buf);
        }
        let carried = producer_of(graph, buf).is_none_or(|p| !scheduled.contains_key(&p))
            && (matches!(buf, Buffer::Activation(_))
                || accessors.get(&buf).is_some_and(|a| !a.is_empty()));
        if carried {
            usage += bytes[&buf];
            live.insert(buf, true);
        }
    }
    let initial = usage;
    let mut peak = usage;
    let mut alloc_time: HashMap<Buffer, SimTime> = HashMap::new();
    for (&buf, &is_live) in &live {
        if is_live {
            alloc_time.insert(buf, 0);
        }
    }

    // Chronological sweep with the ledger's timestamp convention: per
    // timestamp, (1) frees of buffers resident since before it, (2)
    // allocations (measuring the peak), (3) frees of zero-width
    // residencies defined at this very timestamp.
    let mut events: Vec<(SimTime, u8, Op)> = Vec::with_capacity(2 * spans.len());
    for (op, span) in &scheduled {
        events.push((span.end, 0, *op));
        events.push((span.start, 1, *op));
    }
    events.sort_unstable_by_key(|&(t, phase, op)| (t, phase, op));

    let mut pos = 0;
    while pos < events.len() {
        let t = events[pos].0;
        let mut end_of_group = pos;
        while end_of_group < events.len() && events[end_of_group].0 == t {
            end_of_group += 1;
        }
        // Phase 1: keeper completions; buffers defined at this very
        // timestamp release after the allocations instead.
        let mut deferred: Vec<Buffer> = Vec::new();
        for &(_, phase, op) in &events[pos..end_of_group] {
            if phase != 0 {
                continue;
            }
            for buf in kept_by.get(&op).cloned().unwrap_or_default() {
                let r = remaining.get_mut(&buf).expect("known buffer");
                if *r > 0 {
                    *r -= 1;
                    if *r == 0 && freeable[&buf] && live.get(&buf).copied().unwrap_or(false) {
                        if alloc_time.get(&buf).copied().unwrap_or(0) == t {
                            deferred.push(buf);
                        } else {
                            usage -= bytes[&buf];
                            live.insert(buf, false);
                        }
                    }
                }
            }
        }
        // Phase 2: allocations.
        for &(_, phase, op) in &events[pos..end_of_group] {
            if phase != 1 {
                continue;
            }
            for buf in op_allocations(graph, op) {
                usage += bytes[&buf];
                peak = peak.max(usage);
                alloc_time.insert(buf, t);
                if remaining[&buf] == 0 && freeable[&buf] {
                    // Every keeper already finished: transient residency,
                    // released in phase 3.
                    deferred.push(buf);
                } else {
                    live.insert(buf, true);
                }
            }
        }
        // Phase 3: zero-width releases.
        for buf in deferred {
            usage -= bytes[&buf];
            live.insert(buf, false);
        }
        pos = end_of_group;
    }

    MemCounter {
        initial,
        peak,
        final_usage: usage,
    }
}

/// `OM101`: every access of every scheduled op must fall inside the
/// accessed buffer's residency interval.
fn check_om101(graph: &TrainGraph, spans: &[OpSpan], ledger: &MemLedger) -> Vec<Diagnostic> {
    let layers = graph.layers();
    let mut diags = Vec::new();
    let mut seen: HashMap<Op, ()> = HashMap::new();
    for &span in spans {
        if seen.insert(span.op, ()).is_some() {
            continue;
        }
        for (buf, kind) in accesses(span.op, layers) {
            let Some(b) = as_ledger_buffer(buf) else {
                continue;
            };
            let Some(iv) = ledger.interval_of(b) else {
                diags.push(Diagnostic {
                    rule: RuleId::UseOfFreedBuffer,
                    ops: vec![span.op],
                    lanes: Vec::new(),
                    message: format!(
                        "{} {kind}s {} but the buffer is never resident in this window",
                        span.op,
                        buffer_name(b)
                    ),
                });
                continue;
            };
            if iv.defined_by == Some(span.op) {
                continue;
            }
            let free = iv.free.unwrap_or(ledger.window_end);
            if span.start < iv.alloc || span.end > free {
                let origin = match iv.defined_by {
                    Some(p) => format!("defined by {p}"),
                    None => "carried in".to_string(),
                };
                diags.push(Diagnostic {
                    rule: RuleId::UseOfFreedBuffer,
                    ops: iv.defined_by.into_iter().chain([span.op]).collect(),
                    lanes: Vec::new(),
                    message: format!(
                        "{} {kind}s {} during [{}, {}) but the buffer is live only during \
                         [{}, {}) ({origin})",
                        span.op,
                        buffer_name(b),
                        span.start,
                        span.end,
                        iv.alloc,
                        free,
                    ),
                });
            }
        }
    }
    diags
}

/// `OM301`: the ledger peak against an explicit budget, with the witness
/// interval and the resident set at the peak.
fn check_om301(ledger: &MemLedger, budget: u64) -> Vec<Diagnostic> {
    if ledger.peak <= budget {
        return Vec::new();
    }
    let resident: Vec<String> = ledger
        .resident_at_peak
        .iter()
        .map(|&b| {
            let bytes = ledger.interval_of(b).map(|iv| iv.bytes).unwrap_or(0);
            format!("{} ({bytes})", buffer_name(b))
        })
        .collect();
    vec![Diagnostic {
        rule: RuleId::PeakOverBudget,
        ops: Vec::new(),
        lanes: Vec::new(),
        message: format!(
            "peak memory {} bytes exceeds the budget of {budget} bytes during [{}, {}); \
             resident at the peak: {}",
            ledger.peak,
            ledger.peak_at,
            ledger.peak_until,
            resident.join(", ")
        ),
    }]
}

/// `OM401`: buffers retained to the window end by an unscheduled
/// consumer, where freeing after the last scheduled use is clean and
/// strictly lowers the peak.
fn check_om401<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    spans: &[OpSpan],
    ledger: &MemLedger,
) -> Vec<Diagnostic> {
    let scheduled: HashMap<Op, ()> = spans.iter().map(|s| (s.op, ())).collect();
    let accessors = accessor_map(graph, spans);
    let mut diags = Vec::new();
    for iv in &ledger.intervals {
        if iv.free.is_some() {
            continue;
        }
        let keepers = buffer_consumers(graph, iv.buf);
        let (on_window, missing): (Vec<Op>, Vec<Op>) = keepers
            .into_iter()
            .partition(|op| scheduled.contains_key(op));
        // Partially consumed: at least one keeper ran, at least one is
        // outside the window (a fully unconsumed buffer has no "last
        // use" worth freeing after).
        if on_window.is_empty() || missing.is_empty() {
            continue;
        }
        let Some(last) = accessors.get(&iv.buf).and_then(|accs| {
            accs.iter()
                .max_by(|a, b| a.end.cmp(&b.end).then(b.op.cmp(&a.op)))
                .copied()
        }) else {
            continue;
        };
        if last.end >= ledger.window_end {
            continue;
        }
        // Mutation-validate: the applied free must be OM-clean and must
        // strictly lower the peak.
        let plan = FreePlan {
            frees: vec![(iv.buf, last.op)],
        };
        let (mutated, om201) = ledger_of_spans(graph, cost, spans, Some(&plan));
        if !om201.is_empty()
            || !check_om101(graph, spans, &mutated).is_empty()
            || mutated.peak >= ledger.peak
        {
            continue;
        }
        let shown: Vec<String> = missing.iter().map(|op| op.to_string()).collect();
        diags.push(Diagnostic {
            rule: RuleId::RetainedPastLastUse,
            ops: vec![last.op],
            lanes: Vec::new(),
            message: format!(
                "{} is retained to the window end (consumer(s) {} not scheduled) but last \
                 used by {} finishing at {}; freeing it there lowers the peak from {} to \
                 {} bytes",
                buffer_name(iv.buf),
                shown.join(", "),
                last.op,
                last.end,
                ledger.peak,
                mutated.peak
            ),
        });
    }
    diags
}

/// `OM501`: the schedule's peak against the in-order baseline, with a
/// minimal validated single-`dW` deferral restoring the target.
fn check_om501<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
    ledger: &MemLedger,
    budget: Option<u64>,
) -> Vec<Diagnostic> {
    // In-order baseline: the conventional order restricted to the
    // scheduled ops, executed sequentially.
    let scheduled: HashMap<Op, ()> = schedule.iter_ops().map(|(_, op)| (op, ())).collect();
    let baseline_order: Vec<Op> = graph
        .conventional_backprop()
        .into_iter()
        .filter(|op| scheduled.contains_key(op))
        .collect();
    let mut t: SimTime = 0;
    let baseline_spans: Vec<OpSpan> = baseline_order
        .iter()
        .map(|&op| {
            let start = t;
            t += cost.duration(op);
            OpSpan { op, start, end: t }
        })
        .collect();
    let baseline = ledger_of_spans(graph, cost, &baseline_spans, None).0;
    let target = budget.unwrap_or(baseline.peak);
    if ledger.peak <= baseline.peak || ledger.peak <= target {
        return Vec::new();
    }

    // Minimal deferral: move one dW later on its own lane (to just
    // before its first same-lane consumer, or to the lane end), keep the
    // move only when it is OV-clean and restores the target.
    let mut best: Option<(u64, usize, usize, usize, Op, u64)> = None;
    for (li, lane) in schedule.lanes.iter().enumerate() {
        for (pos, &op) in lane.ops.iter().enumerate() {
            let Op::WeightGrad(LayerId(layer)) = op else {
                continue;
            };
            let consumer_pos = lane.ops[pos + 1..].iter().position(|o| {
                matches!(o, Op::SyncWeightGrad(LayerId(j)) | Op::Update(LayerId(j)) if *j == layer)
            });
            // Target index after removing `op` from the lane.
            let to = match consumer_pos {
                Some(rel) => pos + rel,
                None => lane.ops.len() - 1,
            };
            if to <= pos {
                continue;
            }
            let mut mutated = schedule.clone();
            let moved = mutated.lanes[li].ops.remove(pos);
            mutated.lanes[li].ops.insert(to, moved);
            let Ok(m_ledger) = ledger_of_schedule(graph, &mutated, cost) else {
                continue;
            };
            if m_ledger.peak > target || m_ledger.peak >= ledger.peak {
                continue;
            }
            let report = Verifier::new(graph)
                .with_config(VerifyConfig {
                    require_complete: false,
                    memory_budget: None,
                    check_legality: true,
                })
                .verify(&mutated);
            if report.has_errors() {
                continue;
            }
            let reduction = ledger.peak - m_ledger.peak;
            let key = (reduction, layer, li);
            let better = match best {
                None => true,
                Some((r, l2, li2, ..)) => {
                    (key.0, std::cmp::Reverse(key.1), std::cmp::Reverse(key.2))
                        > (r, std::cmp::Reverse(l2), std::cmp::Reverse(li2))
                }
            };
            if better {
                best = Some((reduction, layer, li, to, op, m_ledger.peak));
            }
        }
    }
    let Some((_, _, li, to, op, new_peak)) = best else {
        return Vec::new();
    };
    vec![Diagnostic {
        rule: RuleId::ReorderInflatesPeak,
        ops: vec![op],
        lanes: vec![schedule.lanes[li].name.clone()],
        message: format!(
            "out-of-order execution raises peak memory to {} bytes vs {} for the in-order \
             baseline; deferring {op} to position {to} on lane {} restores it to {new_peak} \
             bytes (target {target})",
            ledger.peak, baseline.peak, schedule.lanes[li].name
        ),
    }]
}

/// Options of one [`check_schedule`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemCheckOptions<'a> {
    /// Peak-memory budget for `OM301`/`OM501`; `None` disables `OM301`.
    pub budget: Option<u64>,
    /// Explicit lifetime attributions (validated by `OM201`).
    pub plan: Option<&'a FreePlan>,
    /// Run the in-order baseline comparison (`OM501`).
    pub baseline: bool,
}

/// One full memory analysis: the ledger plus every OM finding.
#[derive(Debug, Clone)]
pub struct MemAnalysis {
    /// The exact ledger of the analyzed window.
    pub ledger: MemLedger,
    /// OM-series findings, in rule-code order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs the full OM-series analysis over `schedule`.
///
/// # Errors
///
/// Mirrors [`predict_makespan`] for malformed or deadlocking schedules.
pub fn check_schedule<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
    opts: &MemCheckOptions<'_>,
) -> Result<MemAnalysis, Error> {
    let spans = match predict_makespan(graph, schedule, cost) {
        Ok(pred) => spans_of_prediction(&pred),
        Err(Error::DependencyViolation { .. }) => {
            // The schedule cannot execute as ordered (an op precedes its
            // producer). Fall back to naive per-lane sequential timing so
            // the lifetime rules can still attribute the violation: the
            // premature access then falls before the producer's interval
            // and OM101 reports it instead of a bare prediction error.
            let mut spans = Vec::new();
            for lane in &schedule.lanes {
                let mut t: SimTime = 0;
                for &op in &lane.ops {
                    let start = t;
                    t += cost.duration(op);
                    spans.push(OpSpan { op, start, end: t });
                }
            }
            spans
        }
        Err(e) => return Err(e),
    };
    let (ledger, om201) = ledger_of_spans(graph, cost, &spans, opts.plan);
    let mut diagnostics = check_om101(graph, &spans, &ledger);
    diagnostics.extend(om201);
    if let Some(budget) = opts.budget {
        diagnostics.extend(check_om301(&ledger, budget));
    }
    diagnostics.extend(check_om401(graph, cost, &spans, &ledger));
    if opts.baseline {
        diagnostics.extend(check_om501(graph, schedule, cost, &ledger, opts.budget));
    }
    Ok(MemAnalysis {
        ledger,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::{LayerCost, TableCost, UnitCost};
    use ooo_core::datapar::{simulate_data_parallel, CommPolicy};
    use ooo_core::memory::memory_profile;
    use ooo_core::reverse_k::reverse_first_k;

    fn om_codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn sequential_ledger_matches_memory_profile_peak() {
        // On a strictly sequential single-lane schedule the event ledger
        // and the sequential alloc/free accounting see the same live set
        // at every instant, so the peaks must agree.
        for graph in [TrainGraph::single_gpu(6), TrainGraph::data_parallel(5)] {
            for order in [graph.conventional_backprop(), graph.fast_forward_backprop()] {
                let profile = memory_profile(&graph, &order, &UnitCost).unwrap();
                let s = Schedule::single_lane("gpu", order);
                let ledger = ledger_of_schedule(&graph, &s, &UnitCost).unwrap();
                assert_eq!(ledger.peak, profile.peak);
                assert_eq!(ledger.initial, profile.initial);
                assert_eq!(ledger.final_usage, profile.samples.last().unwrap().1);
            }
        }
    }

    #[test]
    fn ledger_matches_instrumented_counter_on_datapar() {
        let graph = TrainGraph::data_parallel(7);
        let mut cost = TableCost::uniform(
            7,
            LayerCost {
                sync_weight: 3,
                weight_bytes: 2,
                activation_bytes: 4,
                out_grad_bytes: 3,
                ..LayerCost::default()
            },
        );
        cost.layer_mut(LayerId(1)).sync_weight = 9;
        for k in [0, 3, 7] {
            let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
            let timeline =
                simulate_data_parallel(&graph, &order, &cost, CommPolicy::FifoCompletion).unwrap();
            let spans = spans_of_timeline(&timeline);
            let ledger = ledger_of_spans(&graph, &cost, &spans, None).0;
            let counter = instrument_timeline(&graph, &cost, &timeline);
            assert_eq!(ledger.peak, counter.peak, "k={k}");
            assert_eq!(ledger.initial, counter.initial, "k={k}");
            assert_eq!(ledger.final_usage, counter.final_usage, "k={k}");
        }
    }

    #[test]
    fn use_before_definition_is_om101() {
        // dW2 consumes grad[2] before its producer dO3 runs.
        let graph = TrainGraph::single_gpu(3);
        let s = Schedule::single_lane(
            "gpu",
            vec![
                Op::Loss,
                Op::WeightGrad(LayerId(2)),
                Op::OutputGrad(LayerId(3)),
            ],
        );
        let analysis = check_schedule(&graph, &s, &UnitCost, &MemCheckOptions::default()).unwrap();
        assert!(
            om_codes(&analysis.diagnostics).contains(&"OM101"),
            "{:?}",
            analysis.diagnostics
        );
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::UseOfFreedBuffer)
            .unwrap();
        assert!(d.message.contains("grad[2]"), "{}", d.message);
    }

    #[test]
    fn use_after_injected_free_is_om101_and_double_free_is_om201() {
        let graph = TrainGraph::single_gpu(4);
        let s = Schedule::single_lane("gpu", graph.conventional_backprop());
        // Free act[3] after the loss: dO3/dW3 then read a freed buffer.
        let early = FreePlan {
            frees: vec![(Buffer::Activation(3), Op::Loss)],
        };
        let analysis = check_schedule(
            &graph,
            &s,
            &UnitCost,
            &MemCheckOptions {
                plan: Some(&early),
                ..MemCheckOptions::default()
            },
        )
        .unwrap();
        assert!(om_codes(&analysis.diagnostics).contains(&"OM101"));

        let double = FreePlan {
            frees: vec![
                (Buffer::Activation(3), Op::OutputGrad(LayerId(3))),
                (Buffer::Activation(3), Op::WeightGrad(LayerId(3))),
            ],
        };
        let analysis = check_schedule(
            &graph,
            &s,
            &UnitCost,
            &MemCheckOptions {
                plan: Some(&double),
                ..MemCheckOptions::default()
            },
        )
        .unwrap();
        assert!(om_codes(&analysis.diagnostics).contains(&"OM201"));

        // The untouched schedule is OM-clean.
        let clean = check_schedule(&graph, &s, &UnitCost, &MemCheckOptions::default()).unwrap();
        assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
    }

    #[test]
    fn peak_over_budget_is_om301_with_witness() {
        let graph = TrainGraph::single_gpu(6);
        let s = Schedule::single_lane("gpu", graph.fast_forward_backprop());
        let ledger = ledger_of_schedule(&graph, &s, &UnitCost).unwrap();
        let analysis = check_schedule(
            &graph,
            &s,
            &UnitCost,
            &MemCheckOptions {
                budget: Some(ledger.peak - 1),
                baseline: false,
                ..MemCheckOptions::default()
            },
        )
        .unwrap();
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::PeakOverBudget)
            .expect("OM301 fires");
        assert!(d.message.contains("resident at the peak"), "{}", d.message);
        assert!(
            d.message.contains(&format!("during [{}, ", ledger.peak_at)),
            "{}",
            d.message
        );
        // Budget met: no OM301.
        let ok = check_schedule(
            &graph,
            &s,
            &UnitCost,
            &MemCheckOptions {
                budget: Some(ledger.peak),
                baseline: false,
                ..MemCheckOptions::default()
            },
        )
        .unwrap();
        assert!(ok.diagnostics.is_empty(), "{:?}", ok.diagnostics);
    }

    #[test]
    fn retained_weight_grad_is_om401() {
        // Data-parallel window with S[dW] scheduled but U outside the
        // window: wgrad is retained past its last use. Heavy weight
        // gradients make the retained tail the peak, so the early free
        // strictly lowers it.
        let graph = TrainGraph::data_parallel(4);
        let cost = TableCost::uniform(
            4,
            LayerCost {
                weight_bytes: 10,
                ..LayerCost::default()
            },
        );
        let mut order = graph.conventional_backprop();
        order.retain(|op| !matches!(op, Op::Update(_) | Op::Forward(_)));
        let s = Schedule::single_lane("gpu", order);
        let analysis = check_schedule(&graph, &s, &cost, &MemCheckOptions::default()).unwrap();
        let om401: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::RetainedPastLastUse)
            .collect();
        assert!(!om401.is_empty(), "{:?}", analysis.diagnostics);
        assert!(om401[0].message.contains("wgrad["), "{}", om401[0].message);
        assert!(
            om401[0].message.contains("lowers the peak"),
            "{}",
            om401[0].message
        );
    }

    #[test]
    fn reorder_inflating_peak_is_om501_with_validated_deferral() {
        // A heavy dW1 executed as early as legality allows, with its
        // sync at the very end of the lane: wgrad[1] spans most of the
        // backward pass. In the conventional baseline S[dW1] directly
        // follows dW1, so the buffer is brief there; deferring dW1 to
        // just before its sync restores the in-order peak.
        let graph = TrainGraph::data_parallel(5);
        let mut cost = TableCost::uniform(5, LayerCost::default());
        cost.layer_mut(LayerId(1)).weight_bytes = 50;
        let mut order = vec![Op::Loss];
        for i in (2..=5).rev() {
            order.push(Op::OutputGrad(LayerId(i)));
        }
        order.push(Op::WeightGrad(LayerId(1)));
        for i in (2..=5).rev() {
            order.push(Op::WeightGrad(LayerId(i)));
            order.push(Op::SyncWeightGrad(LayerId(i)));
            order.push(Op::Update(LayerId(i)));
        }
        order.push(Op::SyncWeightGrad(LayerId(1)));
        order.push(Op::Update(LayerId(1)));
        for i in 1..=5 {
            order.push(Op::Forward(LayerId(i)));
        }
        let s = Schedule::single_lane("gpu", order);
        let analysis = check_schedule(
            &graph,
            &s,
            &cost,
            &MemCheckOptions {
                baseline: true,
                ..MemCheckOptions::default()
            },
        )
        .unwrap();
        let om501: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::ReorderInflatesPeak)
            .collect();
        assert_eq!(om501.len(), 1, "{:?}", analysis.diagnostics);
        assert!(
            om501[0].message.contains("deferring dW1"),
            "{}",
            om501[0].message
        );
    }

    #[test]
    fn conventional_schedules_are_om_clean_across_families() {
        for graph in [
            TrainGraph::single_gpu(5),
            TrainGraph::data_parallel(5),
            TrainGraph::pipeline_parallel(5),
        ] {
            let s = Schedule::single_lane("gpu", graph.conventional_backprop());
            let analysis = check_schedule(
                &graph,
                &s,
                &UnitCost,
                &MemCheckOptions {
                    baseline: true,
                    ..MemCheckOptions::default()
                },
            )
            .unwrap();
            assert!(
                analysis.diagnostics.is_empty(),
                "{:?}",
                analysis.diagnostics
            );
        }
    }

    #[test]
    fn malformed_schedule_is_an_error_not_a_panic() {
        let graph = TrainGraph::single_gpu(3);
        let s = Schedule::single_lane("gpu", vec![Op::Forward(LayerId(9))]);
        assert!(check_schedule(&graph, &s, &UnitCost, &MemCheckOptions::default()).is_err());
    }
}
