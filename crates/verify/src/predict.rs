//! Static makespan prediction by cost-model list evaluation.
//!
//! [`predict_makespan`] derives exact start/finish times for every op of
//! a fixed multi-lane [`Schedule`] without running a discrete-event
//! simulation: the union graph (per-lane program order plus the
//! dependency edges between scheduled ops) is evaluated once in
//! topological order with the recurrence
//!
//! ```text
//! start(op) = max(finish(lane predecessor), max over deps finish(dep))
//! finish(op) = start(op) + cost.duration(op)
//! ```
//!
//! which is the same recurrence [`ooo_core::list_scheduling::simulate`]
//! resolves event by event — so for any fixed schedule the prediction
//! matches the simulated timeline **exactly** (tolerance 0). Dependencies
//! outside the schedule are treated as finished at time zero, supporting
//! the partial schedules of reverse first-k scheduling.
//!
//! [`datapar_schedule`] statically reconstructs the two-lane schedule
//! realized by [`ooo_core::datapar::simulate_data_parallel`] for a given
//! backward order and communication policy; predicting it reproduces the
//! data-parallel simulator's makespan exactly (zero latency tail).

use ooo_core::cost::CostModel;
use ooo_core::datapar::CommPolicy;
use ooo_core::op::LayerId;
use ooo_core::schedule::Schedule;
use ooo_core::{Error, Op, SimTime, TrainGraph};
use std::collections::HashMap;

/// One scheduled operation with its predicted interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictedOp {
    /// The operation.
    pub op: Op,
    /// Index of the lane it is placed on.
    pub lane: usize,
    /// Position within the lane.
    pub index: usize,
    /// Predicted start time (ns).
    pub start: SimTime,
    /// Predicted finish time (ns).
    pub end: SimTime,
}

/// The outcome of statically evaluating one schedule.
#[derive(Debug, Clone)]
pub struct Prediction {
    lane_names: Vec<String>,
    ops: Vec<PredictedOp>,
    index: HashMap<Op, usize>,
    /// For each op (by node index), the node whose finish bound its start
    /// (`None` for ops starting at time zero).
    binding: Vec<Option<usize>>,
    makespan: SimTime,
}

impl Prediction {
    /// The predicted makespan: latest finish across all lanes.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Every op with its predicted interval, in lane-major schedule
    /// order.
    pub fn ops(&self) -> &[PredictedOp] {
        &self.ops
    }

    /// The lane names, in schedule order.
    pub fn lane_names(&self) -> &[String] {
        &self.lane_names
    }

    /// Predicted start time of `op`, if scheduled.
    pub fn start_of(&self, op: Op) -> Option<SimTime> {
        self.index.get(&op).map(|&i| self.ops[i].start)
    }

    /// Predicted finish time of `op`, if scheduled.
    pub fn finish_of(&self, op: Op) -> Option<SimTime> {
        self.index.get(&op).map(|&i| self.ops[i].end)
    }

    /// Total predicted busy time of lane `lane`.
    pub fn lane_busy(&self, lane: usize) -> SimTime {
        self.ops
            .iter()
            .filter(|p| p.lane == lane)
            .map(|p| p.end - p.start)
            .sum()
    }

    /// The idle (bubble) fraction across the lanes selected by `select`,
    /// over the full `[0, makespan]` window: `1 - busy / (lanes * makespan)`.
    pub fn idle_fraction(&self, select: impl Fn(&str) -> bool) -> f64 {
        let lanes: Vec<usize> = (0..self.lane_names.len())
            .filter(|&i| select(&self.lane_names[i]))
            .collect();
        if lanes.is_empty() || self.makespan == 0 {
            return 0.0;
        }
        let busy: SimTime = lanes.iter().map(|&i| self.lane_busy(i)).sum();
        1.0 - busy as f64 / (lanes.len() as SimTime * self.makespan) as f64
    }

    /// One predicted critical path: a chain of ops, each starting exactly
    /// when its binding predecessor finishes, ending at the makespan.
    /// Deterministic (ties resolve to the smallest node index).
    pub fn critical_ops(&self) -> Vec<Op> {
        let Some(last) = self
            .ops
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.end.cmp(&b.end).then(ib.cmp(ia)))
            .map(|(i, _)| i)
        else {
            return Vec::new();
        };
        let mut chain = Vec::new();
        let mut cur = Some(last);
        while let Some(i) = cur {
            chain.push(self.ops[i].op);
            cur = self.binding[i];
        }
        chain.reverse();
        chain
    }
}

/// Statically evaluates `schedule` under `cost`: a single topological
/// pass over the union of lane program order and dependency edges.
///
/// # Errors
///
/// Mirrors [`ooo_core::list_scheduling::simulate`]:
/// [`Error::UnknownOp`] / [`Error::DuplicateOp`] for malformed schedules
/// and [`Error::DependencyViolation`] when the lanes deadlock.
pub fn predict_makespan<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<Prediction, Error> {
    let mut index: HashMap<Op, usize> = HashMap::new();
    let mut nodes: Vec<PredictedOp> = Vec::new();
    for (li, lane) in schedule.lanes.iter().enumerate() {
        for (pos, &op) in lane.ops.iter().enumerate() {
            if !graph.contains(op) {
                return Err(Error::UnknownOp(op));
            }
            if index.insert(op, nodes.len()).is_some() {
                return Err(Error::DuplicateOp(op));
            }
            nodes.push(PredictedOp {
                op,
                lane: li,
                index: pos,
                start: 0,
                end: 0,
            });
        }
    }

    // Union-graph predecessors: the lane predecessor plus every
    // *scheduled* dependency (outside deps are complete at time zero).
    let n = nodes.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        if node.index > 0 {
            preds[i].push(i - 1);
        }
        for dep in graph.deps(node.op)? {
            if let Some(&d) = index.get(&dep) {
                preds[i].push(d);
            }
        }
    }
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(i);
        }
    }

    let mut binding: Vec<Option<usize>> = vec![None; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = queue.pop() {
        done += 1;
        let mut start: SimTime = 0;
        for &p in &preds[i] {
            // The first predecessor reaching the maximum finish becomes
            // the binding one (preds order is deterministic: lane
            // predecessor first, then deps in graph order).
            let f = nodes[p].end;
            if f > start {
                start = f;
                binding[i] = Some(p);
            }
        }
        nodes[i].start = start;
        nodes[i].end = start + cost.duration(nodes[i].op);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if done < n {
        // The union graph has a cycle: the lanes deadlock. Report one
        // blocked op with a scheduled-but-unfinished dependency, the way
        // the simulator does.
        let blocked = (0..n).find(|&i| indeg[i] > 0).expect("cycle exists");
        let op = nodes[blocked].op;
        let missing = graph
            .deps(op)?
            .into_iter()
            .find(|d| index.get(d).is_some_and(|&di| indeg[di] > 0))
            .unwrap_or(op);
        return Err(Error::DependencyViolation {
            op,
            missing_dep: missing,
        });
    }

    let makespan = nodes.iter().map(|p| p.end).max().unwrap_or(0);
    Ok(Prediction {
        lane_names: schedule.lanes.iter().map(|l| l.name.clone()).collect(),
        ops: nodes,
        index,
        binding,
        makespan,
    })
}

/// Statically reconstructs the two-lane schedule the data-parallel
/// simulator realizes for `backward` under `policy`: the compute lane
/// runs the backward order followed by `U_i`/`F_i` in layer order, the
/// link lane serves each `S[dW_i]` in the order the policy would pick it
/// given the sequential backward finish times.
///
/// Predicting the returned schedule reproduces
/// [`ooo_core::datapar::simulate_data_parallel`]'s timeline exactly
/// (zero latency tail).
///
/// # Errors
///
/// Propagates validation errors when `backward` is not a valid partial
/// order of `graph`.
pub fn datapar_schedule<C: CostModel>(
    graph: &TrainGraph,
    backward: &[Op],
    cost: &C,
    policy: CommPolicy,
) -> Result<Schedule, Error> {
    ooo_core::schedule::validate_partial_order(graph, backward)?;
    let l = graph.layers();

    // Sequential backward finish times drive the policy's pick order.
    let mut t: SimTime = 0;
    let mut dw_finish: Vec<SimTime> = vec![0; l + 1];
    for &op in backward {
        t += cost.duration(op);
        if let Op::WeightGrad(LayerId(i)) = op {
            dw_finish[i] = t;
        }
    }

    let mut compute: Vec<Op> = backward.to_vec();
    for i in 1..=l {
        let u = Op::Update(LayerId(i));
        if graph.contains(u) {
            compute.push(u);
        }
        compute.push(Op::Forward(LayerId(i)));
    }
    let mut schedule = Schedule::new();
    schedule.add_lane("gpu", compute);

    if graph.contains(Op::SyncWeightGrad(LayerId(1))) {
        // Service order from the shared O(L log L) planner — the pick
        // sequence is provably identical to the old scan-and-retain loop
        // (see `ooo_core::datapar::plan_sync_service`).
        let link: Vec<Op> = ooo_core::datapar::plan_sync_service(&dw_finish, policy, |i| {
            cost.duration(Op::SyncWeightGrad(LayerId(i)))
        })
        .into_iter()
        .map(|(pick, _, _)| Op::SyncWeightGrad(LayerId(pick)))
        .collect();
        schedule.add_lane("link", link);
    }
    Ok(schedule)
}

/// Per-op placement and timing state inside a [`DeltaEval`], indexed by
/// the op's dense graph index.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    scheduled: bool,
    lane: usize,
    pos: usize,
    start: SimTime,
    end: SimTime,
}

const UNPLACED: NodeState = NodeState {
    scheduled: false,
    lane: 0,
    pos: 0,
    start: 0,
    end: 0,
};

/// Incremental (delta) makespan evaluator over the union graph.
///
/// Maintains the exact [`predict_makespan`] timing state for a mutable
/// multi-lane schedule, but after each edit — [`DeltaEval::place`] or
/// [`DeltaEval::relocate_many`] — re-scores **only the affected cone**:
/// the union-graph descendants of the ops whose predecessor set changed,
/// instead of running a full topological pass. For every reachable state
/// the times equal a fresh `predict_makespan` of [`DeltaEval::to_schedule`]
/// at tolerance 0 (the recurrence is identical; only the evaluation
/// order differs, and the recurrence is confluent).
///
/// Edits are all-or-nothing: an edit that would deadlock the lanes
/// (create a union-graph cycle) is rolled back structurally and timing-
/// wise, and reported as [`Error::DependencyViolation`].
///
/// The evaluator keeps two work counters — [`DeltaEval::rescored`]
/// (nodes actually re-scored) and [`DeltaEval::full_equivalent`] (nodes
/// a full re-evaluation would have scored per edit) — whose ratio is the
/// delta-evaluation speedup reported by the bench layer.
#[derive(Debug, Clone)]
pub struct DeltaEval<'g> {
    graph: &'g TrainGraph,
    dur: Vec<SimTime>,
    lane_names: Vec<String>,
    /// Dense op indices per lane, in program order.
    lanes: Vec<Vec<usize>>,
    nodes: Vec<NodeState>,
    scheduled: usize,
    makespan: SimTime,
    rescored: u64,
    full_equivalent: u64,
}

impl<'g> DeltaEval<'g> {
    /// An evaluator over `graph` with the given (empty) lanes.
    pub fn empty<C: CostModel>(
        graph: &'g TrainGraph,
        lane_names: impl IntoIterator<Item = impl Into<String>>,
        cost: &C,
    ) -> Self {
        let n = graph.len();
        let names: Vec<String> = lane_names.into_iter().map(Into::into).collect();
        DeltaEval {
            graph,
            dur: graph.ops().iter().map(|&op| cost.duration(op)).collect(),
            lanes: vec![Vec::new(); names.len()],
            lane_names: names,
            nodes: vec![UNPLACED; n],
            scheduled: 0,
            makespan: 0,
            rescored: 0,
            full_equivalent: 0,
        }
    }

    /// An evaluator seeded from an existing (possibly partial) schedule.
    ///
    /// # Errors
    ///
    /// Mirrors [`predict_makespan`]: [`Error::UnknownOp`] /
    /// [`Error::DuplicateOp`] for malformed schedules and
    /// [`Error::DependencyViolation`] when the lanes deadlock.
    pub fn new<C: CostModel>(
        graph: &'g TrainGraph,
        schedule: &Schedule,
        cost: &C,
    ) -> Result<Self, Error> {
        let mut de = Self::empty(graph, schedule.lanes.iter().map(|l| l.name.clone()), cost);
        for (li, lane) in schedule.lanes.iter().enumerate() {
            for &op in &lane.ops {
                let v = graph.op_index(op).ok_or(Error::UnknownOp(op))?;
                if de.nodes[v].scheduled {
                    return Err(Error::DuplicateOp(op));
                }
                de.nodes[v] = NodeState {
                    scheduled: true,
                    lane: li,
                    pos: de.lanes[li].len(),
                    start: 0,
                    end: 0,
                };
                de.lanes[li].push(v);
                de.scheduled += 1;
            }
        }
        let seeds: Vec<usize> = de
            .lanes
            .iter()
            .flatten()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        de.full_equivalent += de.scheduled as u64;
        if let Err(blocked) = de.recompute_cone(&seeds) {
            return Err(de.deadlock_error(blocked));
        }
        Ok(de)
    }

    /// The current makespan: latest finish across all lanes.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Number of scheduled ops.
    pub fn num_scheduled(&self) -> usize {
        self.scheduled
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of ops currently on lane `lane`.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lanes[lane].len()
    }

    /// Time lane `lane` becomes available: the finish of its last op
    /// (lane times are monotone along program order), `0` when empty.
    pub fn lane_available(&self, lane: usize) -> SimTime {
        self.lanes[lane]
            .last()
            .map(|&v| self.nodes[v].end)
            .unwrap_or(0)
    }

    /// Current `(lane, position)` of `op`, if scheduled.
    pub fn position_of(&self, op: Op) -> Option<(usize, usize)> {
        let v = self.graph.op_index(op)?;
        let st = self.nodes[v];
        st.scheduled.then_some((st.lane, st.pos))
    }

    /// Current start time of `op`, if scheduled.
    pub fn start_of(&self, op: Op) -> Option<SimTime> {
        let v = self.graph.op_index(op)?;
        self.nodes[v].scheduled.then_some(self.nodes[v].start)
    }

    /// Current finish time of `op`, if scheduled.
    pub fn finish_of(&self, op: Op) -> Option<SimTime> {
        let v = self.graph.op_index(op)?;
        self.nodes[v].scheduled.then_some(self.nodes[v].end)
    }

    /// Nodes re-scored by delta evaluation so far.
    pub fn rescored(&self) -> u64 {
        self.rescored
    }

    /// Nodes full re-evaluation would have scored over the same edits.
    pub fn full_equivalent(&self) -> u64 {
        self.full_equivalent
    }

    /// The current placement as a plain [`Schedule`].
    pub fn to_schedule(&self) -> Schedule {
        let mut s = Schedule::new();
        for (li, lane) in self.lanes.iter().enumerate() {
            s.add_lane(
                &self.lane_names[li],
                lane.iter().map(|&v| self.graph.ops()[v]).collect(),
            );
        }
        s
    }

    /// Appends `op` to the end of lane `lane` and re-scores its cone.
    /// For the branch-and-bound append discipline (all dependencies
    /// already placed, no dependents placed) the cone is the single new
    /// node — an O(deps) update. Returns the new makespan.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownOp`] if `op` is not in the graph,
    /// [`Error::DuplicateOp`] if already placed,
    /// [`Error::InvalidConfig`] if `lane` is out of range, and
    /// [`Error::DependencyViolation`] (with the placement rolled back)
    /// if the append deadlocks the lanes.
    pub fn place(&mut self, lane: usize, op: Op) -> Result<SimTime, Error> {
        let v = self.graph.op_index(op).ok_or(Error::UnknownOp(op))?;
        if self.nodes[v].scheduled {
            return Err(Error::DuplicateOp(op));
        }
        if lane >= self.lanes.len() {
            return Err(Error::InvalidConfig(format!(
                "lane {lane} out of range ({} lanes)",
                self.lanes.len()
            )));
        }
        self.nodes[v] = NodeState {
            scheduled: true,
            lane,
            pos: self.lanes[lane].len(),
            start: 0,
            end: 0,
        };
        self.lanes[lane].push(v);
        self.scheduled += 1;
        self.full_equivalent += self.scheduled as u64;
        if let Err(blocked) = self.recompute_cone(&[v]) {
            let err = self.deadlock_error(blocked);
            self.lanes[lane].pop();
            self.nodes[v] = UNPLACED;
            self.scheduled -= 1;
            self.refresh_makespan();
            return Err(err);
        }
        Ok(self.makespan)
    }

    /// Removes the last op of lane `lane` (the inverse of
    /// [`DeltaEval::place`]) and re-scores the removed node's cone.
    /// Returns the removed op, or `None` when the lane is empty.
    pub fn unplace_last(&mut self, lane: usize) -> Option<Op> {
        let v = self.lanes[lane].pop()?;
        self.nodes[v] = UNPLACED;
        self.scheduled -= 1;
        // Removing a node can only relax its union-graph successors; the
        // popped node was last on its lane, so only graph dependents of
        // `v` that are still scheduled can change.
        let seeds: Vec<usize> = self
            .graph
            .dependent_indices(v)
            .iter()
            .copied()
            .filter(|&d| self.nodes[d].scheduled)
            .collect();
        self.full_equivalent += self.scheduled as u64;
        if !seeds.is_empty() {
            self.recompute_cone(&seeds)
                .expect("removal cannot create a cycle");
        }
        self.refresh_makespan();
        Some(self.graph.ops()[v])
    }

    /// Applies a batch of relocations atomically: every `(op, lane, pos)`
    /// is removed from its current slot, then re-inserted at the target
    /// coordinates (interpreted against the final lane contents, applied
    /// in ascending `(lane, pos)` order; positions are clamped to the
    /// lane length). Only the affected cone — ops whose lane predecessor
    /// changed, plus their union-graph descendants — is re-scored.
    /// Returns the new makespan.
    ///
    /// Batching matters: block moves such as relocating `[dW_i, U_i]`
    /// together have no legal single-op intermediate state.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownOp`] for ops not in the graph or not scheduled,
    /// [`Error::DuplicateOp`] for an op listed twice,
    /// [`Error::InvalidConfig`] for an out-of-range target lane, and
    /// [`Error::DependencyViolation`] — with the whole batch rolled
    /// back — when the move deadlocks the lanes.
    pub fn relocate_many(&mut self, moves: &[(Op, usize, usize)]) -> Result<SimTime, Error> {
        if moves.is_empty() {
            return Ok(self.makespan);
        }
        let mut ids: Vec<(usize, usize, usize)> = Vec::with_capacity(moves.len());
        for &(op, to_lane, to_pos) in moves {
            let v = self.graph.op_index(op).ok_or(Error::UnknownOp(op))?;
            if !self.nodes[v].scheduled {
                return Err(Error::UnknownOp(op));
            }
            if ids.iter().any(|&(w, _, _)| w == v) {
                return Err(Error::DuplicateOp(op));
            }
            if to_lane >= self.lanes.len() {
                return Err(Error::InvalidConfig(format!(
                    "lane {to_lane} out of range ({} lanes)",
                    self.lanes.len()
                )));
            }
            ids.push((v, to_lane, to_pos));
        }

        // Snapshot every lane the batch touches, for rollback and for
        // the precise predecessor-changed seed computation.
        let mut touched: Vec<usize> = ids
            .iter()
            .flat_map(|&(v, to_lane, _)| [self.nodes[v].lane, to_lane])
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let saved: Vec<(usize, Vec<usize>)> = touched
            .iter()
            .map(|&l| (l, self.lanes[l].clone()))
            .collect();

        // Structural edit: remove all, then insert in ascending target
        // order so each requested position addresses the final contents.
        for &(v, _, _) in &ids {
            let (l, p) = (self.nodes[v].lane, self.nodes[v].pos);
            self.lane_remove(l, p);
        }
        let mut inserts = ids.clone();
        inserts.sort_unstable_by_key(|&(_, l, p)| (l, p));
        for &(v, l, p) in &inserts {
            let p = p.min(self.lanes[l].len());
            self.lane_insert(l, p, v);
        }

        // Seeds: exactly the ops whose lane predecessor changed.
        let mut seeds: Vec<usize> = Vec::new();
        for (l, old) in &saved {
            let mut old_pred: HashMap<usize, Option<usize>> = HashMap::new();
            for (p, &v) in old.iter().enumerate() {
                old_pred.insert(v, (p > 0).then(|| old[p - 1]));
            }
            for (p, &v) in self.lanes[*l].iter().enumerate() {
                let new_pred = (p > 0).then(|| self.lanes[*l][p - 1]);
                if old_pred.get(&v) != Some(&new_pred) {
                    seeds.push(v);
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();

        self.full_equivalent += self.scheduled as u64;
        if let Err(blocked) = self.recompute_cone(&seeds) {
            let err = self.deadlock_error(blocked);
            for (l, old) in saved {
                for (p, &v) in old.iter().enumerate() {
                    self.nodes[v].lane = l;
                    self.nodes[v].pos = p;
                }
                self.lanes[l] = old;
            }
            // Times of rolled-back nodes were restored by the failed
            // cone pass itself; only the makespan cache needs a refresh.
            self.refresh_makespan();
            return Err(err);
        }
        Ok(self.makespan)
    }

    /// Relocates a single op; see [`DeltaEval::relocate_many`].
    pub fn relocate(&mut self, op: Op, lane: usize, pos: usize) -> Result<SimTime, Error> {
        self.relocate_many(&[(op, lane, pos)])
    }

    fn lane_remove(&mut self, lane: usize, pos: usize) -> usize {
        let v = self.lanes[lane].remove(pos);
        for (p, &w) in self.lanes[lane].iter().enumerate().skip(pos) {
            self.nodes[w].pos = p;
        }
        v
    }

    fn lane_insert(&mut self, lane: usize, pos: usize, v: usize) {
        self.lanes[lane].insert(pos, v);
        self.nodes[v].lane = lane;
        for (p, &w) in self.lanes[lane].iter().enumerate().skip(pos) {
            self.nodes[w].pos = p;
        }
    }

    fn start_bound(&self, v: usize) -> SimTime {
        let st = self.nodes[v];
        let mut start: SimTime = 0;
        if st.pos > 0 {
            start = start.max(self.nodes[self.lanes[st.lane][st.pos - 1]].end);
        }
        for &d in self.graph.dep_indices(v) {
            if self.nodes[d].scheduled {
                start = start.max(self.nodes[d].end);
            }
        }
        start
    }

    /// Re-scores the union-graph descendants of `seeds` (inclusive) in
    /// topological order. On a cycle, restores the previous times of
    /// every cone node and returns one blocked node.
    fn recompute_cone(&mut self, seeds: &[usize]) -> Result<(), usize> {
        // Collect the cone: DFS over union-graph successors.
        let mut in_cone = vec![false; self.nodes.len()];
        let mut cone: Vec<usize> = Vec::new();
        let mut stack: Vec<usize> = seeds
            .iter()
            .copied()
            .filter(|&v| self.nodes[v].scheduled)
            .collect();
        while let Some(v) = stack.pop() {
            if in_cone[v] {
                continue;
            }
            in_cone[v] = true;
            cone.push(v);
            let st = self.nodes[v];
            if st.pos + 1 < self.lanes[st.lane].len() {
                stack.push(self.lanes[st.lane][st.pos + 1]);
            }
            for &d in self.graph.dependent_indices(v) {
                if self.nodes[d].scheduled {
                    stack.push(d);
                }
            }
        }
        if cone.is_empty() {
            self.refresh_makespan();
            return Ok(());
        }
        let undo: Vec<(usize, SimTime, SimTime)> = cone
            .iter()
            .map(|&v| (v, self.nodes[v].start, self.nodes[v].end))
            .collect();

        // Kahn over cone-internal edges; predecessors outside the cone
        // already carry final times.
        let mut indeg: HashMap<usize, usize> = HashMap::with_capacity(cone.len());
        for &v in &cone {
            let st = self.nodes[v];
            let mut d = 0;
            if st.pos > 0 && in_cone[self.lanes[st.lane][st.pos - 1]] {
                d += 1;
            }
            d += self
                .graph
                .dep_indices(v)
                .iter()
                .filter(|&&p| self.nodes[p].scheduled && in_cone[p])
                .count();
            indeg.insert(v, d);
        }
        let mut queue: Vec<usize> = cone.iter().copied().filter(|v| indeg[v] == 0).collect();
        let mut done = 0usize;
        while let Some(v) = queue.pop() {
            done += 1;
            let start = self.start_bound(v);
            self.nodes[v].start = start;
            self.nodes[v].end = start + self.dur[v];
            let st = self.nodes[v];
            if st.pos + 1 < self.lanes[st.lane].len() {
                let s = self.lanes[st.lane][st.pos + 1];
                if in_cone[s] {
                    let d = indeg.get_mut(&s).expect("cone node");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(s);
                    }
                }
            }
            for &s in self.graph.dependent_indices(v) {
                if self.nodes[s].scheduled && in_cone[s] {
                    let d = indeg.get_mut(&s).expect("cone node");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        self.rescored += done as u64;
        if done < cone.len() {
            for (v, start, end) in undo {
                self.nodes[v].start = start;
                self.nodes[v].end = end;
            }
            let blocked = cone
                .iter()
                .copied()
                .find(|v| indeg[v] > 0)
                .expect("cycle exists");
            return Err(blocked);
        }
        self.refresh_makespan();
        Ok(())
    }

    fn refresh_makespan(&mut self) {
        // The last op of each lane carries the lane's maximum finish.
        self.makespan = self
            .lanes
            .iter()
            .filter_map(|l| l.last().map(|&v| self.nodes[v].end))
            .max()
            .unwrap_or(0);
    }

    fn deadlock_error(&self, blocked: usize) -> Error {
        let op = self.graph.ops()[blocked];
        let missing = self
            .graph
            .dep_indices(blocked)
            .iter()
            .copied()
            .find(|&d| self.nodes[d].scheduled)
            .map(|d| self.graph.ops()[d])
            .unwrap_or(op);
        Error::DependencyViolation {
            op,
            missing_dep: missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::{LayerCost, TableCost, UnitCost};
    use ooo_core::datapar::simulate_data_parallel;
    use ooo_core::list_scheduling::simulate;
    use ooo_core::reverse_k::reverse_first_k;

    #[test]
    fn prediction_matches_simulation_exactly_on_multi_lane_schedules() {
        let g = TrainGraph::single_gpu(7);
        let mut main = vec![Op::Loss];
        for i in (2..=7).rev() {
            main.push(Op::OutputGrad(LayerId(i)));
        }
        for i in 1..=7 {
            main.push(Op::Forward(LayerId(i)));
        }
        let mut sub = Vec::new();
        for i in (1..=7).rev() {
            sub.push(Op::WeightGrad(LayerId(i)));
            sub.push(Op::Update(LayerId(i)));
        }
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        let sim = simulate(&g, &s, &UnitCost).unwrap();
        let pred = predict_makespan(&g, &s, &UnitCost).unwrap();
        assert_eq!(pred.makespan(), sim.makespan());
        for e in &sim.entries {
            assert_eq!(pred.start_of(e.op), Some(e.start), "{}", e.op);
            assert_eq!(pred.finish_of(e.op), Some(e.end), "{}", e.op);
        }
    }

    #[test]
    fn deadlock_is_an_error_not_a_prediction() {
        let g = TrainGraph::single_gpu(2);
        let mut s = Schedule::new();
        s.add_lane("a", vec![Op::WeightGrad(LayerId(1)), Op::Loss]);
        s.add_lane("b", vec![Op::OutputGrad(LayerId(2))]);
        assert!(matches!(
            predict_makespan(&g, &s, &UnitCost),
            Err(Error::DependencyViolation { .. })
        ));
    }

    #[test]
    fn critical_path_ends_at_makespan_and_is_a_chain() {
        let g = TrainGraph::single_gpu(5);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let p = predict_makespan(&g, &s, &UnitCost).unwrap();
        let chain = p.critical_ops();
        assert!(!chain.is_empty());
        assert_eq!(p.finish_of(*chain.last().unwrap()), Some(p.makespan()));
        for w in chain.windows(2) {
            assert_eq!(p.finish_of(w[0]), p.start_of(w[1]));
        }
    }

    /// Every schedule reachable by `DeltaEval` edits must score exactly
    /// like a fresh full prediction of the same placement.
    fn assert_delta_matches_full(g: &TrainGraph, de: &DeltaEval<'_>) {
        let full = predict_makespan(g, &de.to_schedule(), &UnitCost).unwrap();
        assert_eq!(de.makespan(), full.makespan(), "makespan diverged");
        for p in full.ops() {
            assert_eq!(de.start_of(p.op), Some(p.start), "{} start", p.op);
            assert_eq!(de.finish_of(p.op), Some(p.end), "{} end", p.op);
        }
    }

    #[test]
    fn delta_eval_matches_full_prediction_after_relocations() {
        let g = TrainGraph::single_gpu(6);
        let mut main = vec![Op::Loss];
        for i in (2..=6).rev() {
            main.push(Op::OutputGrad(LayerId(i)));
        }
        for i in 1..=6 {
            main.push(Op::Forward(LayerId(i)));
        }
        let mut sub = Vec::new();
        for i in (1..=6).rev() {
            sub.push(Op::WeightGrad(LayerId(i)));
            sub.push(Op::Update(LayerId(i)));
        }
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        let mut de = DeltaEval::new(&g, &s, &UnitCost).unwrap();
        assert_delta_matches_full(&g, &de);

        // A sequence of legal single-op and block relocations, in-lane
        // and cross-lane, each checked against a full re-evaluation.
        de.relocate_many(&[
            (Op::WeightGrad(LayerId(6)), 1, 10),
            (Op::Update(LayerId(6)), 1, 11),
        ])
        .unwrap();
        assert_delta_matches_full(&g, &de);
        de.relocate(Op::WeightGrad(LayerId(1)), 0, 6).unwrap();
        assert_delta_matches_full(&g, &de);
        de.relocate_many(&[
            (Op::WeightGrad(LayerId(4)), 0, 3),
            (Op::Update(LayerId(4)), 0, 4),
        ])
        .unwrap();
        assert_delta_matches_full(&g, &de);
        de.relocate(Op::WeightGrad(LayerId(6)), 1, 6).unwrap();
        assert_delta_matches_full(&g, &de);

        // Delta evaluation did strictly less work than full passes would.
        assert!(de.rescored() < de.full_equivalent());
    }

    #[test]
    fn delta_eval_place_and_unplace_match_prediction() {
        let g = TrainGraph::single_gpu(5);
        let order = g.conventional_backprop();
        let mut de = DeltaEval::empty(&g, ["gpu"], &UnitCost);
        for &op in &order {
            de.place(0, op).unwrap();
        }
        assert_delta_matches_full(&g, &de);
        let full =
            predict_makespan(&g, &Schedule::single_lane("gpu", order.clone()), &UnitCost).unwrap();
        assert_eq!(de.makespan(), full.makespan());
        assert_eq!(de.unplace_last(0), Some(*order.last().unwrap()));
        assert_delta_matches_full(&g, &de);
    }

    #[test]
    fn delta_eval_rolls_back_deadlocking_edits() {
        let g = TrainGraph::single_gpu(4);
        let mut s = Schedule::new();
        s.add_lane("main", {
            let mut v = vec![Op::Loss];
            for i in (2..=4).rev() {
                v.push(Op::OutputGrad(LayerId(i)));
            }
            for i in 1..=4 {
                v.push(Op::Forward(LayerId(i)));
            }
            v
        });
        s.add_lane("sub", {
            let mut v = Vec::new();
            for i in (1..=4).rev() {
                v.push(Op::WeightGrad(LayerId(i)));
                v.push(Op::Update(LayerId(i)));
            }
            v
        });
        let mut de = DeltaEval::new(&g, &s, &UnitCost).unwrap();
        let before_schedule = de.to_schedule();
        let before_makespan = de.makespan();
        // U4 before its own dW4 deadlocks lane "sub".
        let err = de.relocate(Op::Update(LayerId(4)), 1, 0).unwrap_err();
        assert!(matches!(err, Error::DependencyViolation { .. }));
        assert_eq!(
            de.to_schedule(),
            before_schedule,
            "structure not rolled back"
        );
        assert_eq!(de.makespan(), before_makespan, "timing not rolled back");
        assert_delta_matches_full(&g, &de);
    }

    #[test]
    fn datapar_reconstruction_is_exact_for_both_policies() {
        for l in [4usize, 9, 16] {
            for k in [0, l / 3, l] {
                for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
                    let g = TrainGraph::data_parallel(l);
                    let mut cost = TableCost::uniform(
                        l,
                        LayerCost {
                            sync_weight: 3,
                            ..LayerCost::default()
                        },
                    );
                    cost.layer_mut(LayerId(1)).sync_weight = 11;
                    let order = reverse_first_k(&g, k, None::<(u64, &TableCost)>).unwrap();
                    let sim = simulate_data_parallel(&g, &order, &cost, policy).unwrap();
                    let s = datapar_schedule(&g, &order, &cost, policy).unwrap();
                    let pred = predict_makespan(&g, &s, &cost).unwrap();
                    assert_eq!(pred.makespan(), sim.makespan(), "l={l} k={k}");
                    for e in &sim.entries {
                        assert_eq!(pred.finish_of(e.op), Some(e.end), "l={l} k={k} {}", e.op);
                    }
                }
            }
        }
    }
}
