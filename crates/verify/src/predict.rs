//! Static makespan prediction by cost-model list evaluation.
//!
//! [`predict_makespan`] derives exact start/finish times for every op of
//! a fixed multi-lane [`Schedule`] without running a discrete-event
//! simulation: the union graph (per-lane program order plus the
//! dependency edges between scheduled ops) is evaluated once in
//! topological order with the recurrence
//!
//! ```text
//! start(op) = max(finish(lane predecessor), max over deps finish(dep))
//! finish(op) = start(op) + cost.duration(op)
//! ```
//!
//! which is the same recurrence [`ooo_core::list_scheduling::simulate`]
//! resolves event by event — so for any fixed schedule the prediction
//! matches the simulated timeline **exactly** (tolerance 0). Dependencies
//! outside the schedule are treated as finished at time zero, supporting
//! the partial schedules of reverse first-k scheduling.
//!
//! [`datapar_schedule`] statically reconstructs the two-lane schedule
//! realized by [`ooo_core::datapar::simulate_data_parallel`] for a given
//! backward order and communication policy; predicting it reproduces the
//! data-parallel simulator's makespan exactly (zero latency tail).

use ooo_core::cost::CostModel;
use ooo_core::datapar::CommPolicy;
use ooo_core::op::LayerId;
use ooo_core::schedule::Schedule;
use ooo_core::{Error, Op, SimTime, TrainGraph};
use std::collections::HashMap;

/// One scheduled operation with its predicted interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictedOp {
    /// The operation.
    pub op: Op,
    /// Index of the lane it is placed on.
    pub lane: usize,
    /// Position within the lane.
    pub index: usize,
    /// Predicted start time (ns).
    pub start: SimTime,
    /// Predicted finish time (ns).
    pub end: SimTime,
}

/// The outcome of statically evaluating one schedule.
#[derive(Debug, Clone)]
pub struct Prediction {
    lane_names: Vec<String>,
    ops: Vec<PredictedOp>,
    index: HashMap<Op, usize>,
    /// For each op (by node index), the node whose finish bound its start
    /// (`None` for ops starting at time zero).
    binding: Vec<Option<usize>>,
    makespan: SimTime,
}

impl Prediction {
    /// The predicted makespan: latest finish across all lanes.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Every op with its predicted interval, in lane-major schedule
    /// order.
    pub fn ops(&self) -> &[PredictedOp] {
        &self.ops
    }

    /// The lane names, in schedule order.
    pub fn lane_names(&self) -> &[String] {
        &self.lane_names
    }

    /// Predicted start time of `op`, if scheduled.
    pub fn start_of(&self, op: Op) -> Option<SimTime> {
        self.index.get(&op).map(|&i| self.ops[i].start)
    }

    /// Predicted finish time of `op`, if scheduled.
    pub fn finish_of(&self, op: Op) -> Option<SimTime> {
        self.index.get(&op).map(|&i| self.ops[i].end)
    }

    /// Total predicted busy time of lane `lane`.
    pub fn lane_busy(&self, lane: usize) -> SimTime {
        self.ops
            .iter()
            .filter(|p| p.lane == lane)
            .map(|p| p.end - p.start)
            .sum()
    }

    /// The idle (bubble) fraction across the lanes selected by `select`,
    /// over the full `[0, makespan]` window: `1 - busy / (lanes * makespan)`.
    pub fn idle_fraction(&self, select: impl Fn(&str) -> bool) -> f64 {
        let lanes: Vec<usize> = (0..self.lane_names.len())
            .filter(|&i| select(&self.lane_names[i]))
            .collect();
        if lanes.is_empty() || self.makespan == 0 {
            return 0.0;
        }
        let busy: SimTime = lanes.iter().map(|&i| self.lane_busy(i)).sum();
        1.0 - busy as f64 / (lanes.len() as SimTime * self.makespan) as f64
    }

    /// One predicted critical path: a chain of ops, each starting exactly
    /// when its binding predecessor finishes, ending at the makespan.
    /// Deterministic (ties resolve to the smallest node index).
    pub fn critical_ops(&self) -> Vec<Op> {
        let Some(last) = self
            .ops
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.end.cmp(&b.end).then(ib.cmp(ia)))
            .map(|(i, _)| i)
        else {
            return Vec::new();
        };
        let mut chain = Vec::new();
        let mut cur = Some(last);
        while let Some(i) = cur {
            chain.push(self.ops[i].op);
            cur = self.binding[i];
        }
        chain.reverse();
        chain
    }
}

/// Statically evaluates `schedule` under `cost`: a single topological
/// pass over the union of lane program order and dependency edges.
///
/// # Errors
///
/// Mirrors [`ooo_core::list_scheduling::simulate`]:
/// [`Error::UnknownOp`] / [`Error::DuplicateOp`] for malformed schedules
/// and [`Error::DependencyViolation`] when the lanes deadlock.
pub fn predict_makespan<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<Prediction, Error> {
    let mut index: HashMap<Op, usize> = HashMap::new();
    let mut nodes: Vec<PredictedOp> = Vec::new();
    for (li, lane) in schedule.lanes.iter().enumerate() {
        for (pos, &op) in lane.ops.iter().enumerate() {
            if !graph.contains(op) {
                return Err(Error::UnknownOp(op));
            }
            if index.insert(op, nodes.len()).is_some() {
                return Err(Error::DuplicateOp(op));
            }
            nodes.push(PredictedOp {
                op,
                lane: li,
                index: pos,
                start: 0,
                end: 0,
            });
        }
    }

    // Union-graph predecessors: the lane predecessor plus every
    // *scheduled* dependency (outside deps are complete at time zero).
    let n = nodes.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        if node.index > 0 {
            preds[i].push(i - 1);
        }
        for dep in graph.deps(node.op)? {
            if let Some(&d) = index.get(&dep) {
                preds[i].push(d);
            }
        }
    }
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(i);
        }
    }

    let mut binding: Vec<Option<usize>> = vec![None; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = queue.pop() {
        done += 1;
        let mut start: SimTime = 0;
        for &p in &preds[i] {
            // The first predecessor reaching the maximum finish becomes
            // the binding one (preds order is deterministic: lane
            // predecessor first, then deps in graph order).
            let f = nodes[p].end;
            if f > start {
                start = f;
                binding[i] = Some(p);
            }
        }
        nodes[i].start = start;
        nodes[i].end = start + cost.duration(nodes[i].op);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if done < n {
        // The union graph has a cycle: the lanes deadlock. Report one
        // blocked op with a scheduled-but-unfinished dependency, the way
        // the simulator does.
        let blocked = (0..n).find(|&i| indeg[i] > 0).expect("cycle exists");
        let op = nodes[blocked].op;
        let missing = graph
            .deps(op)?
            .into_iter()
            .find(|d| index.get(d).is_some_and(|&di| indeg[di] > 0))
            .unwrap_or(op);
        return Err(Error::DependencyViolation {
            op,
            missing_dep: missing,
        });
    }

    let makespan = nodes.iter().map(|p| p.end).max().unwrap_or(0);
    Ok(Prediction {
        lane_names: schedule.lanes.iter().map(|l| l.name.clone()).collect(),
        ops: nodes,
        index,
        binding,
        makespan,
    })
}

/// Statically reconstructs the two-lane schedule the data-parallel
/// simulator realizes for `backward` under `policy`: the compute lane
/// runs the backward order followed by `U_i`/`F_i` in layer order, the
/// link lane serves each `S[dW_i]` in the order the policy would pick it
/// given the sequential backward finish times.
///
/// Predicting the returned schedule reproduces
/// [`ooo_core::datapar::simulate_data_parallel`]'s timeline exactly
/// (zero latency tail).
///
/// # Errors
///
/// Propagates validation errors when `backward` is not a valid partial
/// order of `graph`.
pub fn datapar_schedule<C: CostModel>(
    graph: &TrainGraph,
    backward: &[Op],
    cost: &C,
    policy: CommPolicy,
) -> Result<Schedule, Error> {
    ooo_core::schedule::validate_partial_order(graph, backward)?;
    let l = graph.layers();

    // Sequential backward finish times drive the policy's pick order.
    let mut t: SimTime = 0;
    let mut dw_finish: Vec<SimTime> = vec![0; l + 1];
    for &op in backward {
        t += cost.duration(op);
        if let Op::WeightGrad(LayerId(i)) = op {
            dw_finish[i] = t;
        }
    }

    let mut compute: Vec<Op> = backward.to_vec();
    for i in 1..=l {
        let u = Op::Update(LayerId(i));
        if graph.contains(u) {
            compute.push(u);
        }
        compute.push(Op::Forward(LayerId(i)));
    }
    let mut schedule = Schedule::new();
    schedule.add_lane("gpu", compute);

    if graph.contains(Op::SyncWeightGrad(LayerId(1))) {
        let mut pending: Vec<usize> = (1..=l).collect();
        let mut link_free: SimTime = 0;
        let mut link: Vec<Op> = Vec::with_capacity(l);
        while !pending.is_empty() {
            let earliest = pending.iter().map(|&i| dw_finish[i]).min().expect("some");
            let now = link_free.max(earliest);
            let pick = match policy {
                CommPolicy::FifoCompletion => pending
                    .iter()
                    .copied()
                    .filter(|&i| dw_finish[i] <= now)
                    .min_by_key(|&i| (dw_finish[i], i))
                    .expect("earliest-ready qualifies"),
                CommPolicy::PriorityByLayer => pending
                    .iter()
                    .copied()
                    .filter(|&i| dw_finish[i] <= now)
                    .min()
                    .expect("earliest-ready qualifies"),
            };
            pending.retain(|&i| i != pick);
            let op = Op::SyncWeightGrad(LayerId(pick));
            link_free = now + cost.duration(op);
            link.push(op);
        }
        schedule.add_lane("link", link);
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::{LayerCost, TableCost, UnitCost};
    use ooo_core::datapar::simulate_data_parallel;
    use ooo_core::list_scheduling::simulate;
    use ooo_core::reverse_k::reverse_first_k;

    #[test]
    fn prediction_matches_simulation_exactly_on_multi_lane_schedules() {
        let g = TrainGraph::single_gpu(7);
        let mut main = vec![Op::Loss];
        for i in (2..=7).rev() {
            main.push(Op::OutputGrad(LayerId(i)));
        }
        for i in 1..=7 {
            main.push(Op::Forward(LayerId(i)));
        }
        let mut sub = Vec::new();
        for i in (1..=7).rev() {
            sub.push(Op::WeightGrad(LayerId(i)));
            sub.push(Op::Update(LayerId(i)));
        }
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        let sim = simulate(&g, &s, &UnitCost).unwrap();
        let pred = predict_makespan(&g, &s, &UnitCost).unwrap();
        assert_eq!(pred.makespan(), sim.makespan());
        for e in &sim.entries {
            assert_eq!(pred.start_of(e.op), Some(e.start), "{}", e.op);
            assert_eq!(pred.finish_of(e.op), Some(e.end), "{}", e.op);
        }
    }

    #[test]
    fn deadlock_is_an_error_not_a_prediction() {
        let g = TrainGraph::single_gpu(2);
        let mut s = Schedule::new();
        s.add_lane("a", vec![Op::WeightGrad(LayerId(1)), Op::Loss]);
        s.add_lane("b", vec![Op::OutputGrad(LayerId(2))]);
        assert!(matches!(
            predict_makespan(&g, &s, &UnitCost),
            Err(Error::DependencyViolation { .. })
        ));
    }

    #[test]
    fn critical_path_ends_at_makespan_and_is_a_chain() {
        let g = TrainGraph::single_gpu(5);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let p = predict_makespan(&g, &s, &UnitCost).unwrap();
        let chain = p.critical_ops();
        assert!(!chain.is_empty());
        assert_eq!(p.finish_of(*chain.last().unwrap()), Some(p.makespan()));
        for w in chain.windows(2) {
            assert_eq!(p.finish_of(w[0]), p.start_of(w[1]));
        }
    }

    #[test]
    fn datapar_reconstruction_is_exact_for_both_policies() {
        for l in [4usize, 9, 16] {
            for k in [0, l / 3, l] {
                for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
                    let g = TrainGraph::data_parallel(l);
                    let mut cost = TableCost::uniform(
                        l,
                        LayerCost {
                            sync_weight: 3,
                            ..LayerCost::default()
                        },
                    );
                    cost.layer_mut(LayerId(1)).sync_weight = 11;
                    let order = reverse_first_k(&g, k, None::<(u64, &TableCost)>).unwrap();
                    let sim = simulate_data_parallel(&g, &order, &cost, policy).unwrap();
                    let s = datapar_schedule(&g, &order, &cost, policy).unwrap();
                    let pred = predict_makespan(&g, &s, &cost).unwrap();
                    assert_eq!(pred.makespan(), sim.makespan(), "l={l} k={k}");
                    for e in &sim.entries {
                        assert_eq!(pred.finish_of(e.op), Some(e.end), "l={l} k={k} {}", e.op);
                    }
                }
            }
        }
    }
}
