//! Happens-before construction over a multi-lane schedule.
//!
//! The analyzer models a schedule as a set of *events* (the scheduled
//! operations) with two edge families:
//!
//! - **program order**: consecutive operations on the same lane
//!   (resource issue order), and
//! - **data/sync order**: every dependency edge of the
//!   [`TrainGraph`] whose endpoints are both scheduled. Synchronization
//!   operations (`S[dW]`, `S[dO]`) are ordinary events, so the
//!   cross-device ordering they provide is exactly their dependency
//!   edges — dropping a sync op from a schedule removes the only
//!   happens-before path between producer and consumer, which is what
//!   the race rule detects.
//!
//! Dependencies on *unscheduled* operations contribute no edges: a
//! partial schedule assumes those completed beforehand (matching
//! [`ooo_core::schedule::validate_partial_order`]).
//!
//! The relation is materialized as a transitive-closure bitset per
//! event — schedules here are a few thousand events at most, so the
//! closure (O(V·E/64) via reverse-topological accumulation) is cheap
//! and makes every `happens_before` query O(1).

use ooo_core::schedule::Schedule;
use ooo_core::{Op, TrainGraph};
use std::collections::HashMap;

/// The happens-before relation over one schedule, or the wait cycle that
/// prevents it from existing.
#[derive(Debug)]
pub enum HbResult {
    /// The union graph is acyclic; queries are available.
    Relation(HbRelation),
    /// The union graph has a cycle: the schedule deadlocks. The cycle is
    /// reported in order (each op waits for the next; the last waits for
    /// the first).
    Cycle(Vec<Op>),
}

/// O(1)-queryable happens-before relation (transitive closure).
#[derive(Debug)]
pub struct HbRelation {
    /// Dense event id per scheduled op.
    event_of: HashMap<Op, u32>,
    /// `reach[a]` has bit `b` set iff `a` happens-before `b` (strict).
    reach: Vec<Vec<u64>>,
}

impl HbRelation {
    /// Returns `true` iff `a` must complete before `b` starts in every
    /// execution of the schedule. Strict: `happens_before(x, x)` is
    /// `false` for any `x` (the union graph is acyclic).
    pub fn happens_before(&self, a: Op, b: Op) -> bool {
        match (self.event_of.get(&a), self.event_of.get(&b)) {
            (Some(&ea), Some(&eb)) => {
                self.reach[ea as usize][(eb / 64) as usize] >> (eb % 64) & 1 == 1
            }
            _ => false,
        }
    }

    /// Returns `true` iff the two events are ordered either way.
    pub fn ordered(&self, a: Op, b: Op) -> bool {
        self.happens_before(a, b) || self.happens_before(b, a)
    }
}

/// Builds the happens-before relation for `schedule`, or extracts a wait
/// cycle. The schedule must contain no unknown or duplicate operations
/// (the analyzer's structural rules run first).
pub fn build(graph: &TrainGraph, schedule: &Schedule) -> HbResult {
    // Dense event ids in lane-major order.
    let mut events: Vec<Op> = Vec::with_capacity(schedule.num_ops());
    let mut event_of: HashMap<Op, u32> = HashMap::with_capacity(schedule.num_ops());
    for (_, op) in schedule.iter_ops() {
        event_of.insert(op, events.len() as u32);
        events.push(op);
    }
    let m = events.len();

    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut indeg: Vec<u32> = vec![0; m];
    let add_edge = |succ: &mut Vec<Vec<u32>>, indeg: &mut Vec<u32>, a: u32, b: u32| {
        succ[a as usize].push(b);
        indeg[b as usize] += 1;
    };
    // Program order.
    for lane in &schedule.lanes {
        for w in lane.ops.windows(2) {
            add_edge(&mut succ, &mut indeg, event_of[&w[0]], event_of[&w[1]]);
        }
    }
    // Data and sync dependencies between scheduled ops.
    for (&op, &e) in &event_of {
        for dep in graph.deps(op).expect("scheduled ops are in the graph") {
            if let Some(&d) = event_of.get(&dep) {
                add_edge(&mut succ, &mut indeg, d, e);
            }
        }
    }

    // Kahn's toposort.
    let mut topo: Vec<u32> = Vec::with_capacity(m);
    let mut remaining = indeg.clone();
    let mut ready: Vec<u32> = (0..m as u32)
        .filter(|&e| remaining[e as usize] == 0)
        .collect();
    while let Some(e) = ready.pop() {
        topo.push(e);
        for &s in &succ[e as usize] {
            remaining[s as usize] -= 1;
            if remaining[s as usize] == 0 {
                ready.push(s);
            }
        }
    }
    if topo.len() != m {
        return HbResult::Cycle(extract_cycle(&succ, &remaining, &events));
    }

    // Transitive closure, accumulated in reverse topological order:
    // reach(a) = Union over successors s of ({s} ∪ reach(s)).
    let words = m.div_ceil(64).max(1);
    let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; m];
    for &e in topo.iter().rev() {
        let e = e as usize;
        // Move out to satisfy the borrow checker while unioning rows.
        let mut row = std::mem::take(&mut reach[e]);
        for &s in &succ[e] {
            let s = s as usize;
            row[s / 64] |= 1u64 << (s % 64);
            for (w, &bits) in row.iter_mut().zip(&reach[s]) {
                *w |= bits;
            }
        }
        reach[e] = row;
    }

    HbResult::Relation(HbRelation { event_of, reach })
}

/// Finds one cycle among the events that did not drain in the toposort
/// (`remaining[e] > 0`). Every blocked event has at least one blocked
/// *predecessor* (the one still holding up its in-degree), so walking
/// predecessors from any blocked event must revisit an event; the
/// revisited segment, reversed, is a cycle in edge direction.
fn extract_cycle(succ: &[Vec<u32>], remaining: &[u32], events: &[Op]) -> Vec<Op> {
    let m = events.len();
    let mut pred: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (a, outs) in succ.iter().enumerate() {
        for &b in outs {
            pred[b as usize].push(a as u32);
        }
    }
    let start = (0..m as u32)
        .find(|&e| remaining[e as usize] > 0)
        .expect("called only when some event is blocked");
    let mut seen_at: HashMap<u32, usize> = HashMap::new();
    let mut path: Vec<u32> = Vec::new();
    let mut cur = start;
    loop {
        if let Some(&i) = seen_at.get(&cur) {
            let mut cycle: Vec<Op> = path[i..].iter().map(|&e| events[e as usize]).collect();
            cycle.reverse();
            return cycle;
        }
        seen_at.insert(cur, path.len());
        path.push(cur);
        cur = *pred[cur as usize]
            .iter()
            .find(|&&p| remaining[p as usize] > 0)
            .expect("a blocked event always has a blocked predecessor");
    }
}
