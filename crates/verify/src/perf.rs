//! Static performance analysis: the advisory `OP`-series lints.
//!
//! Where the safety analyzer ([`crate::Verifier`]) proves a schedule
//! *correct*, the [`PerfAdvisor`] judges it *fast*: it predicts the
//! schedule's makespan with [`crate::predict`], reports the optimality
//! gap against [`ooo_core::bounds`], and emits advisory diagnostics
//! (`OP101`–`OP501`), each carrying a concrete [`Suggestion`] where an
//! applicable fix exists.
//!
//! Every op-movement advisory is *mutation-validated before it is
//! emitted*: the advisor applies the suggestion to a copy of the
//! schedule, re-predicts, and re-verifies — an `OP101`/`OP201` finding is
//! only reported when the fixed schedule is both `ooo-verify`-clean and
//! strictly faster under the exact predictor (hence, by the predictor's
//! exactness contract, strictly faster under the simulator too).

use crate::predict::{datapar_schedule, predict_makespan, Prediction};
use crate::{Diagnostic, Report, RuleId, Verifier, VerifyConfig};
use ooo_core::cost::{CostModel, UnitCost};
use ooo_core::datapar::CommPolicy;
use ooo_core::memory::{memory_profile, Buffer};
use ooo_core::pipeline::{op_level_schedule, Strategy};
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::schedule::Schedule;
use ooo_core::{bounds, Error, Op, SimTime, TrainGraph};
use std::collections::HashSet;

/// A concrete, machine-applicable fix attached to an advisory finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suggestion {
    /// Move `op` later within its lane, to slot `to_index` (index after
    /// removal).
    DeferOp {
        /// Lane holding the op.
        lane: String,
        /// The op to defer.
        op: Op,
        /// Insertion index within the lane after the op is removed.
        to_index: usize,
    },
    /// Move `op` from lane `from` to slot `index` of lane `to`
    /// (creating `to` when it does not exist).
    MoveToLane {
        /// The op to move.
        op: Op,
        /// Source lane name.
        from: String,
        /// Destination lane name.
        to: String,
        /// Insertion index in the destination lane.
        index: usize,
    },
    /// Re-run reverse first-k scheduling with depth `k`.
    SetK {
        /// The concave-model-optimal depth.
        k: usize,
    },
    /// Switch the pipeline strategy (not applicable to a fixed schedule;
    /// rebuild via [`ooo_core::pipeline::op_level_schedule`]).
    AdoptStrategy {
        /// Name of the recommended strategy.
        strategy: &'static str,
    },
}

impl Suggestion {
    /// Applies an op-movement suggestion to a copy of `schedule`.
    /// Returns `None` for suggestions that rebuild the schedule instead
    /// of editing it ([`Suggestion::SetK`], [`Suggestion::AdoptStrategy`])
    /// or when the schedule does not match the suggestion.
    pub fn apply(&self, schedule: &Schedule) -> Option<Schedule> {
        match self {
            Suggestion::DeferOp { lane, op, to_index } => {
                let mut s = schedule.clone();
                let l = s.lanes.iter_mut().find(|l| l.name == *lane)?;
                let p = l.ops.iter().position(|o| o == op)?;
                l.ops.remove(p);
                if *to_index > l.ops.len() {
                    return None;
                }
                l.ops.insert(*to_index, *op);
                Some(s)
            }
            Suggestion::MoveToLane {
                op,
                from,
                to,
                index,
            } => {
                let mut s = schedule.clone();
                let lf = s.lanes.iter_mut().find(|l| l.name == *from)?;
                let p = lf.ops.iter().position(|o| o == op)?;
                lf.ops.remove(p);
                if let Some(lt) = s.lanes.iter_mut().find(|l| l.name == *to) {
                    if *index > lt.ops.len() {
                        return None;
                    }
                    lt.ops.insert(*index, *op);
                } else {
                    s.add_lane(to, vec![*op]);
                }
                Some(s)
            }
            Suggestion::SetK { .. } | Suggestion::AdoptStrategy { .. } => None,
        }
    }

    /// One-line human/JSON rendering.
    pub fn describe(&self) -> String {
        match self {
            Suggestion::DeferOp { lane, op, to_index } => {
                format!("defer {op} to slot {to_index} of lane {lane}")
            }
            Suggestion::MoveToLane {
                op,
                from,
                to,
                index,
            } => {
                format!("move {op} from lane {from} to slot {index} of lane {to}")
            }
            Suggestion::SetK { k } => format!("set reverse first-k depth k = {k}"),
            Suggestion::AdoptStrategy { strategy } => {
                format!("adopt {strategy} (gradient fast-forwarding + modulo allocation)")
            }
        }
    }
}

/// One advisory finding with its optional fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The finding (an `OP`-series rule at advice severity).
    pub diagnostic: Diagnostic,
    /// A machine-applicable fix, when one exists.
    pub suggestion: Option<Suggestion>,
}

/// The outcome of one performance analysis.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Statically predicted makespan of the analyzed schedule.
    pub predicted_makespan: SimTime,
    /// Combined lower bound for the inferred lane counts.
    pub lower_bound: SimTime,
    /// Certified lower bound over the *scheduled* op subset
    /// ([`bounds::partial_lower_bound`]): valid for partial schedules
    /// too, and equal to [`PerfReport::lower_bound`] when the schedule
    /// is complete.
    pub scheduled_lower_bound: SimTime,
    /// `true` when the predicted makespan meets
    /// [`PerfReport::scheduled_lower_bound`] exactly: the schedule is
    /// provably makespan-optimal for its op set and lane counts, so the
    /// `OP101`/`OP201`/`OP301` mutation scans are skipped — no movement
    /// can be strictly faster than a certified bound.
    pub proven_optimal: bool,
    /// Predicted makespan over the lower bound; `None` for partial
    /// schedules (the bound covers the whole graph's work).
    pub optimality_gap: Option<f64>,
    /// The full per-op prediction (for bubble fractions, Gantt data).
    pub prediction: Prediction,
    /// Advisory findings, in rule order then schedule order.
    pub advice: Vec<Advice>,
}

impl PerfReport {
    /// `true` when at least one advisory fired.
    pub fn has_advice(&self) -> bool {
        !self.advice.is_empty()
    }

    /// The findings as a safety-style [`Report`] (for the shared JSON
    /// diagnostics format).
    pub fn to_report(&self) -> Report {
        Report {
            diagnostics: self.advice.iter().map(|a| a.diagnostic.clone()).collect(),
        }
    }

    /// The advice entries of one rule.
    pub fn by_rule(&self, rule: RuleId) -> Vec<&Advice> {
        self.advice
            .iter()
            .filter(|a| a.diagnostic.rule == rule)
            .collect()
    }
}

/// The static performance analyzer. Borrows the dependency graph; one
/// instance can analyze any number of schedules for that graph.
#[derive(Debug)]
pub struct PerfAdvisor<'g, C = UnitCost> {
    graph: &'g TrainGraph,
    cost: C,
}

impl<'g> PerfAdvisor<'g, UnitCost> {
    /// An advisor with unit costs.
    pub fn new(graph: &'g TrainGraph) -> Self {
        PerfAdvisor {
            graph,
            cost: UnitCost,
        }
    }
}

impl<'g, C: CostModel> PerfAdvisor<'g, C> {
    /// Replaces the cost model.
    pub fn with_cost<D: CostModel>(self, cost: D) -> PerfAdvisor<'g, D> {
        PerfAdvisor {
            graph: self.graph,
            cost,
        }
    }

    /// Analyzes a multi-lane schedule: predicted makespan, optimality
    /// gap, and the `OP101`/`OP201`/`OP501` advisories.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors (malformed or deadlocked schedules).
    pub fn analyze(&self, schedule: &Schedule) -> Result<PerfReport, Error> {
        let prediction = predict_makespan(self.graph, schedule, &self.cost)?;
        let complete = schedule.num_ops() == self.graph.len();
        let compute_lanes = schedule
            .lanes
            .iter()
            .filter(|l| l.ops.iter().any(|o| o.is_compute()))
            .count()
            .max(1);
        let link_lanes = schedule
            .lanes
            .iter()
            .filter(|l| l.ops.iter().any(|o| o.is_sync()))
            .count()
            .max(1);
        let lower = bounds::lower_bound(self.graph, &self.cost, compute_lanes, link_lanes);
        let scheduled: Vec<Op> = schedule
            .lanes
            .iter()
            .flat_map(|l| l.ops.iter().copied())
            .collect();
        let scheduled_lower = bounds::partial_lower_bound(
            self.graph,
            &self.cost,
            &scheduled,
            compute_lanes,
            link_lanes,
        );
        let gap = complete.then(|| {
            bounds::optimality_gap(
                self.graph,
                &self.cost,
                compute_lanes,
                link_lanes,
                prediction.makespan(),
            )
        });

        // A predicted makespan that meets the certified subset bound is
        // provably unimprovable by op movement: skip the OP101/OP201
        // mutation scans (each validated candidate would have to be
        // strictly faster than a lower bound, a contradiction). The
        // OP501 memory scan still runs — it optimizes the high-water
        // mark, not the makespan.
        let proven = prediction.makespan() == scheduled_lower;
        let mut advice = Vec::new();
        if !proven {
            self.check_deferrable_dw(schedule, &prediction, complete, &mut advice);
            self.check_barrier_stalls(schedule, &prediction, complete, &mut advice);
        }
        self.check_memory_hotspot(schedule, &mut advice);
        Ok(PerfReport {
            predicted_makespan: prediction.makespan(),
            lower_bound: lower,
            scheduled_lower_bound: scheduled_lower,
            proven_optimal: proven,
            optimality_gap: gap,
            prediction,
            advice,
        })
    }

    /// Analyzes a flat backward order the way the data-parallel engine
    /// runs it (compute lane + policy-ordered link lane), adding the
    /// `OP301` reverse first-k depth advisory when the order matches the
    /// reverse first-k shape for some `k`.
    ///
    /// # Errors
    ///
    /// Propagates validation and prediction errors.
    pub fn analyze_order(&self, backward: &[Op], policy: CommPolicy) -> Result<PerfReport, Error> {
        let schedule = datapar_schedule(self.graph, backward, &self.cost, policy)?;
        let mut report = self.analyze(&schedule)?;
        if report.proven_optimal {
            // Every reverse first-k realization schedules the same op
            // subset on the same lane structure, so none can beat the
            // certified subset bound this order already meets: the whole
            // OP301 depth sweep is provably fruitless.
            return Ok(report);
        }

        let eval = |k: usize| -> Result<SimTime, Error> {
            let order = reverse_first_k(self.graph, k, None::<(u64, &C)>)?;
            let s = datapar_schedule(self.graph, &order, &self.cost, policy)?;
            Ok(predict_makespan(self.graph, &s, &self.cost)?.makespan())
        };
        if let Some(k_cur) = self.infer_reverse_k(backward) {
            let m_cur = eval(k_cur)?;
            let mut best = (k_cur, m_cur);
            for k in 0..=self.graph.layers() {
                let m = eval(k)?;
                if m < best.1 {
                    best = (k, m);
                }
            }
            let (k_best, m_best) = best;
            if m_best < m_cur {
                report.advice.push(Advice {
                    diagnostic: Diagnostic {
                        rule: RuleId::SuboptimalReverseK,
                        ops: Vec::new(),
                        lanes: Vec::new(),
                        message: format!(
                            "reverse first-k depth k={k_cur} predicts makespan {m_cur}; the \
                             concave-model optimum k={k_best} predicts {m_best}"
                        ),
                    },
                    suggestion: Some(Suggestion::SetK { k: k_best }),
                });
            }
        }
        Ok(report)
    }

    /// The depth `k` whose reverse first-k order equals `backward`
    /// exactly, if any.
    fn infer_reverse_k(&self, backward: &[Op]) -> Option<usize> {
        (0..=self.graph.layers()).find(|&k| {
            reverse_first_k(self.graph, k, None::<(u64, &C)>).is_ok_and(|order| order == backward)
        })
    }

    /// `OP101`: a `dW` op on the predicted critical path that can legally
    /// run later. Emitted only when the deferral is strictly faster under
    /// the predictor and the mutated schedule verifies clean.
    fn check_deferrable_dw(
        &self,
        schedule: &Schedule,
        prediction: &Prediction,
        complete: bool,
        advice: &mut Vec<Advice>,
    ) {
        let critical: HashSet<Op> = prediction.critical_ops().into_iter().collect();
        let base = prediction.makespan();
        for lane in &schedule.lanes {
            for (p, &op) in lane.ops.iter().enumerate() {
                if !matches!(op, Op::WeightGrad(_)) || !critical.contains(&op) {
                    continue;
                }
                let Ok(dependents) = self.graph.dependents(op) else {
                    continue;
                };
                // Latest legal slot on this lane: right before the op's
                // first same-lane dependent, else the lane's end.
                let to_index = lane.ops[p + 1..]
                    .iter()
                    .position(|o| dependents.contains(o))
                    .map(|rel| p + rel)
                    .unwrap_or(lane.ops.len() - 1);
                if to_index <= p {
                    continue;
                }
                let suggestion = Suggestion::DeferOp {
                    lane: lane.name.clone(),
                    op,
                    to_index,
                };
                if let Some(better) =
                    self.validated_improvement(schedule, &suggestion, base, complete)
                {
                    advice.push(Advice {
                        diagnostic: Diagnostic {
                            rule: RuleId::MissedOooOpportunity,
                            ops: vec![op],
                            lanes: vec![lane.name.clone()],
                            message: format!(
                                "{op} sits on the predicted critical path but is legally \
                                 deferrable: moving it to slot {to_index} of lane {} cuts the \
                                 predicted makespan from {base} to {better}",
                                lane.name
                            ),
                        },
                        suggestion: Some(suggestion),
                    });
                }
            }
        }
    }

    /// `OP201`: a synchronization op on a compute lane whose immediate
    /// lane successor stalls on it without depending on it. Emitted only
    /// when moving the sync to a link lane is strictly faster and clean.
    fn check_barrier_stalls(
        &self,
        schedule: &Schedule,
        prediction: &Prediction,
        complete: bool,
        advice: &mut Vec<Advice>,
    ) {
        let base = prediction.makespan();
        let link_lane = schedule
            .lanes
            .iter()
            .find(|l| !l.ops.is_empty() && l.ops.iter().all(|o| o.is_sync()))
            .map(|l| l.name.clone());
        for lane in &schedule.lanes {
            if !lane.ops.iter().any(|o| o.is_compute()) {
                continue;
            }
            for (p, &op) in lane.ops.iter().enumerate() {
                if !op.is_sync() {
                    continue;
                }
                let Some(&succ) = lane.ops.get(p + 1) else {
                    continue;
                };
                if self.graph.deps(succ).is_ok_and(|d| d.contains(&op)) {
                    continue;
                }
                // Is the sync actually the binding constraint?
                let (Some(s_end), Some(n_start)) =
                    (prediction.finish_of(op), prediction.start_of(succ))
                else {
                    continue;
                };
                if n_start != s_end || s_end == 0 {
                    continue;
                }
                let to = link_lane.clone().unwrap_or_else(|| "link".to_string());
                let index = schedule
                    .lanes
                    .iter()
                    .find(|l| l.name == to)
                    .map(|l| {
                        l.ops
                            .iter()
                            .filter(|&&o| {
                                prediction.start_of(o).unwrap_or(0)
                                    < prediction.start_of(op).unwrap_or(0)
                            })
                            .count()
                    })
                    .unwrap_or(0);
                let suggestion = Suggestion::MoveToLane {
                    op,
                    from: lane.name.clone(),
                    to: to.clone(),
                    index,
                };
                if let Some(better) =
                    self.validated_improvement(schedule, &suggestion, base, complete)
                {
                    advice.push(Advice {
                        diagnostic: Diagnostic {
                            rule: RuleId::AvoidableBarrierStall,
                            ops: vec![op, succ],
                            lanes: vec![lane.name.clone()],
                            message: format!(
                                "{op} on compute lane {} serializes {succ}, which does not \
                                 depend on it; moving it to lane {to} cuts the predicted \
                                 makespan from {base} to {better}",
                                lane.name
                            ),
                        },
                        suggestion: Some(suggestion),
                    });
                }
            }
        }
    }

    /// `OP501`: on a flat order, a `dW` executed early whose gradient
    /// buffer stays live across the memory peak. Emits the single best
    /// deferral (largest peak reduction) when one strictly shrinks the
    /// high-water mark.
    fn check_memory_hotspot(&self, schedule: &Schedule, advice: &mut Vec<Advice>) {
        if schedule.lanes.len() != 1 {
            // Multi-lane schedules run on the exact event ledger of
            // [`crate::mem`] instead of the sequential profile (which
            // would attribute the peak to a linearization the lanes never
            // guarantee). The single-lane path below stays on the
            // sequential profile for output stability.
            self.check_memory_hotspot_multilane(schedule, advice);
            return;
        }
        let order = &schedule.lanes[0].ops;
        let Ok(profile) = memory_profile(self.graph, order, &self.cost) else {
            return;
        };
        let peak = profile.peak;
        // `peak` can exceed every after-op sample (allocation happens
        // before an op's input buffers are freed); the hotspot position
        // is the first resident maximum.
        let peak_pos = profile
            .samples
            .iter()
            .enumerate()
            .max_by(|(ia, (_, a)), (ib, (_, b))| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut best: Option<(u64, usize, Op, usize, u64)> = None; // (reduction, pos, op, to_index, new_peak)
        for (p, &op) in order.iter().enumerate() {
            if !matches!(op, Op::WeightGrad(_)) || p >= peak_pos {
                continue;
            }
            let Ok(dependents) = self.graph.dependents(op) else {
                continue;
            };
            let first_dep = order[p + 1..]
                .iter()
                .position(|o| dependents.contains(o))
                .map(|rel| p + 1 + rel);
            // The gradient buffer must be live across the peak for the
            // deferral to matter.
            if first_dep.is_some_and(|q| q <= peak_pos) {
                continue;
            }
            let to_index = first_dep.map(|q| q - 1).unwrap_or(order.len() - 1);
            if to_index <= p {
                continue;
            }
            let mut mutated = order.clone();
            mutated.remove(p);
            mutated.insert(to_index, op);
            let Ok(new_profile) = memory_profile(self.graph, &mutated, &self.cost) else {
                continue;
            };
            if new_profile.peak < peak {
                let reduction = peak - new_profile.peak;
                if best.is_none_or(|(r, bp, ..)| reduction > r || (reduction == r && p < bp)) {
                    best = Some((reduction, p, op, to_index, new_profile.peak));
                }
            }
        }
        if let Some((_, _, op, to_index, new_peak)) = best {
            let lane = schedule.lanes[0].name.clone();
            let at = profile.samples.get(peak_pos).map(|&(o, _)| o);
            advice.push(Advice {
                diagnostic: Diagnostic {
                    rule: RuleId::PeakMemoryHotspot,
                    ops: at.into_iter().chain(std::iter::once(op)).collect(),
                    lanes: vec![lane.clone()],
                    message: format!(
                        "peak memory {peak} bytes{}; deferring {op} to slot {to_index} \
                         shrinks the high-water mark to {new_peak} bytes",
                        at.map(|o| format!(" occurs at {o}")).unwrap_or_default()
                    ),
                },
                suggestion: Some(Suggestion::DeferOp { lane, op, to_index }),
            });
        }
    }

    /// The multi-lane `OP501` scan, rebased on the exact static ledger of
    /// [`crate::mem`]: a `dW` whose gradient buffer is resident at the
    /// ledger peak is deferred within its lane when the move strictly
    /// lowers the ledger peak and the mutated schedule verifies clean.
    fn check_memory_hotspot_multilane(&self, schedule: &Schedule, advice: &mut Vec<Advice>) {
        let Ok(ledger) = crate::mem::ledger_of_schedule(self.graph, schedule, &self.cost) else {
            return;
        };
        let peak = ledger.peak;
        // (reduction, lane index, position, op, to_index, new peak)
        let mut best: Option<(u64, usize, usize, Op, usize, u64)> = None;
        for (li, lane) in schedule.lanes.iter().enumerate() {
            for (p, &op) in lane.ops.iter().enumerate() {
                let Op::WeightGrad(l) = op else {
                    continue;
                };
                // The gradient buffer must be resident at the peak for
                // the deferral to matter.
                if !ledger.resident_at_peak.contains(&Buffer::WeightGrad(l.0)) {
                    continue;
                }
                let Ok(dependents) = self.graph.dependents(op) else {
                    continue;
                };
                let to_index = lane.ops[p + 1..]
                    .iter()
                    .position(|o| dependents.contains(o))
                    .map(|rel| p + rel)
                    .unwrap_or(lane.ops.len() - 1);
                if to_index <= p {
                    continue;
                }
                let suggestion = Suggestion::DeferOp {
                    lane: lane.name.clone(),
                    op,
                    to_index,
                };
                let Some(mutated) = suggestion.apply(schedule) else {
                    continue;
                };
                let Ok(new_ledger) =
                    crate::mem::ledger_of_schedule(self.graph, &mutated, &self.cost)
                else {
                    continue;
                };
                if new_ledger.peak >= peak {
                    continue;
                }
                let report = Verifier::new(self.graph)
                    .with_config(VerifyConfig {
                        require_complete: false,
                        ..VerifyConfig::default()
                    })
                    .verify(&mutated);
                if !report.is_clean() {
                    continue;
                }
                let reduction = peak - new_ledger.peak;
                if best.is_none_or(|(r, bl, bp, ..)| {
                    reduction > r || (reduction == r && (li, p) < (bl, bp))
                }) {
                    best = Some((reduction, li, p, op, to_index, new_ledger.peak));
                }
            }
        }
        if let Some((_, li, _, op, to_index, new_peak)) = best {
            let lane = schedule.lanes[li].name.clone();
            advice.push(Advice {
                diagnostic: Diagnostic {
                    rule: RuleId::PeakMemoryHotspot,
                    ops: vec![op],
                    lanes: vec![lane.clone()],
                    message: format!(
                        "ledger peak {peak} bytes holds wgrad buffers live across the \
                         high-water mark; deferring {op} to slot {to_index} of lane {lane} \
                         shrinks it to {new_peak} bytes"
                    ),
                },
                suggestion: Some(Suggestion::DeferOp { lane, op, to_index }),
            });
        }
    }

    /// Applies `suggestion`, re-predicts, and re-verifies. Returns the
    /// improved predicted makespan only when the mutated schedule is
    /// strictly faster than `base` AND `ooo-verify`-clean.
    fn validated_improvement(
        &self,
        schedule: &Schedule,
        suggestion: &Suggestion,
        base: SimTime,
        complete: bool,
    ) -> Option<SimTime> {
        let mutated = suggestion.apply(schedule)?;
        let better = predict_makespan(self.graph, &mutated, &self.cost)
            .ok()?
            .makespan();
        if better >= base {
            return None;
        }
        let report = Verifier::new(self.graph)
            .with_config(VerifyConfig {
                require_complete: complete,
                ..VerifyConfig::default()
            })
            .verify(&mutated);
        report.is_clean().then_some(better)
    }
}

/// Analyzes one pipeline strategy's op-level schedule under unit costs:
/// the general advisories plus `OP401`, which compares the device lanes'
/// predicted bubble fraction against what gradient fast-forwarding with
/// modulo allocation (OOO-Pipe2) achieves on the same configuration.
///
/// # Errors
///
/// Propagates prediction errors.
pub fn advise_pipeline(
    layers: usize,
    devices: usize,
    strategy: Strategy,
    modulo_group: usize,
) -> Result<PerfReport, Error> {
    let (graph, schedule) = op_level_schedule(layers, devices, strategy, modulo_group);
    let advisor = PerfAdvisor::new(&graph);
    let mut report = advisor.analyze(&schedule)?;

    let bubble = report.prediction.idle_fraction(|n| n.starts_with("gpu"));
    let (g2, s2) = op_level_schedule(layers, devices, Strategy::OooPipe2, modulo_group);
    let p2 = predict_makespan(&g2, &s2, &UnitCost)?;
    let bound = p2.idle_fraction(|n| n.starts_with("gpu"));
    if bubble > bound + 1e-9 {
        report.advice.push(Advice {
            diagnostic: Diagnostic {
                rule: RuleId::ExcessPipelineBubble,
                ops: Vec::new(),
                lanes: Vec::new(),
                message: format!(
                    "{strategy:?} leaves a device-lane bubble fraction of {bubble:.3} \
                     (predicted makespan {}), exceeding the modulo-allocation bound of \
                     {bound:.3} (OOO-Pipe2 predicts {})",
                    report.predicted_makespan,
                    p2.makespan()
                ),
            },
            suggestion: Some(Suggestion::AdoptStrategy {
                strategy: "OooPipe2",
            }),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::{LayerCost, TableCost};
    use ooo_core::datapar::reverse_k_makespan;
    use ooo_core::graph::GraphConfig;
    use ooo_core::op::LayerId;

    fn codes(report: &PerfReport) -> Vec<&'static str> {
        report
            .advice
            .iter()
            .map(|a| a.diagnostic.rule.code())
            .collect()
    }

    #[test]
    fn op101_fires_on_critical_deferrable_dw_and_fix_is_faster() {
        // Backward-only 3-layer graph split over two lanes with dW_3
        // scheduled eagerly on the main lane, ahead of the output
        // gradients every other op waits for.
        let g = TrainGraph::new(GraphConfig {
            include_updates: false,
            include_forward: false,
            ..GraphConfig::single_gpu(3)
        })
        .unwrap();
        let mut s = Schedule::default();
        s.add_lane(
            "main",
            vec![
                Op::Loss,
                Op::WeightGrad(LayerId(3)),
                Op::OutputGrad(LayerId(3)),
                Op::OutputGrad(LayerId(2)),
            ],
        );
        s.add_lane(
            "sub",
            vec![Op::WeightGrad(LayerId(2)), Op::WeightGrad(LayerId(1))],
        );
        let advisor = PerfAdvisor::new(&g);
        let report = advisor.analyze(&s).unwrap();
        let hits = report.by_rule(RuleId::MissedOooOpportunity);
        assert_eq!(hits.len(), 1, "advice: {:?}", codes(&report));
        assert_eq!(hits[0].diagnostic.ops, vec![Op::WeightGrad(LayerId(3))]);
        // The attached fix must be strictly faster and verify-clean.
        let fixed = hits[0].suggestion.as_ref().unwrap().apply(&s).unwrap();
        let faster = predict_makespan(&g, &fixed, &UnitCost).unwrap().makespan();
        assert!(
            faster < report.predicted_makespan,
            "{faster} vs {}",
            report.predicted_makespan
        );
        assert!(Verifier::new(&g).verify(&fixed).is_clean());
    }

    #[test]
    fn op201_fires_on_sync_blocking_independent_compute() {
        // An expensive sync op wedged mid-backward on the compute lane,
        // stalling output gradients that do not depend on it.
        let g = TrainGraph::data_parallel(3);
        let cost = TableCost::uniform(
            3,
            LayerCost {
                sync_weight: 5,
                ..LayerCost::default()
            },
        );
        let mut main = vec![
            Op::Loss,
            Op::OutputGrad(LayerId(3)),
            Op::WeightGrad(LayerId(3)),
            Op::SyncWeightGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
            Op::WeightGrad(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
        ];
        for i in 1..=3 {
            main.push(Op::Update(LayerId(i)));
            main.push(Op::Forward(LayerId(i)));
        }
        let mut s = Schedule::default();
        s.add_lane("gpu", main);
        s.add_lane(
            "link",
            vec![
                Op::SyncWeightGrad(LayerId(2)),
                Op::SyncWeightGrad(LayerId(1)),
            ],
        );
        let advisor = PerfAdvisor::new(&g).with_cost(cost.clone());
        let report = advisor.analyze(&s).unwrap();
        let hits = report.by_rule(RuleId::AvoidableBarrierStall);
        assert_eq!(hits.len(), 1, "advice: {:?}", codes(&report));
        assert_eq!(
            hits[0].diagnostic.ops,
            vec![Op::SyncWeightGrad(LayerId(3)), Op::OutputGrad(LayerId(2))]
        );
        let fixed = hits[0].suggestion.as_ref().unwrap().apply(&s).unwrap();
        let faster = predict_makespan(&g, &fixed, &cost).unwrap().makespan();
        assert!(faster < report.predicted_makespan);
        assert!(Verifier::new(&g).verify(&fixed).is_clean());
    }

    #[test]
    fn op301_recommends_concave_optimum_k() {
        let l = 8;
        let g = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 3,
                ..LayerCost::default()
            },
        );
        let order = reverse_first_k(&g, 0, None::<(u64, &TableCost)>).unwrap();
        let advisor = PerfAdvisor::new(&g).with_cost(cost.clone());
        let report = advisor
            .analyze_order(&order, CommPolicy::FifoCompletion)
            .unwrap();
        let hits = report.by_rule(RuleId::SuboptimalReverseK);
        assert_eq!(hits.len(), 1, "advice: {:?}", codes(&report));
        let Some(Suggestion::SetK { k }) = hits[0].suggestion else {
            panic!("expected SetK, got {:?}", hits[0].suggestion);
        };
        assert_ne!(k, 0);
        // The recommended depth is simulator-confirmed strictly faster.
        let m0 = reverse_k_makespan(&g, 0, &cost, CommPolicy::FifoCompletion).unwrap();
        let mk = reverse_k_makespan(&g, k, &cost, CommPolicy::FifoCompletion).unwrap();
        assert!(mk < m0, "k={k}: {mk} vs {m0}");
    }

    #[test]
    fn op301_silent_when_depth_already_optimal() {
        let l = 8;
        let g = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 3,
                ..LayerCost::default()
            },
        );
        // Find the best depth by exhaustive simulation, then analyze it.
        let best = (0..=l)
            .min_by_key(|&k| {
                (
                    reverse_k_makespan(&g, k, &cost, CommPolicy::FifoCompletion).unwrap(),
                    k,
                )
            })
            .unwrap();
        let order = reverse_first_k(&g, best, None::<(u64, &TableCost)>).unwrap();
        let advisor = PerfAdvisor::new(&g).with_cost(cost);
        let report = advisor
            .analyze_order(&order, CommPolicy::FifoCompletion)
            .unwrap();
        assert!(
            report.by_rule(RuleId::SuboptimalReverseK).is_empty(),
            "advice: {:?}",
            codes(&report)
        );
    }

    #[test]
    fn op401_flags_gpipe_but_not_pipe2() {
        let gpipe = advise_pipeline(8, 2, Strategy::GPipe, 1).unwrap();
        let hits = gpipe.by_rule(RuleId::ExcessPipelineBubble);
        assert_eq!(hits.len(), 1, "advice: {:?}", codes(&gpipe));
        assert_eq!(
            hits[0].suggestion,
            Some(Suggestion::AdoptStrategy {
                strategy: "OooPipe2"
            })
        );
        let pipe2 = advise_pipeline(8, 2, Strategy::OooPipe2, 1).unwrap();
        assert!(!pipe2.has_advice(), "advice: {:?}", codes(&pipe2));
        assert!(pipe2.optimality_gap.is_some());
    }

    #[test]
    fn op501_flags_early_dw_spanning_the_peak() {
        let g = TrainGraph::single_gpu(3);
        let mut cost = TableCost::uniform(3, LayerCost::default());
        for i in 1..=3 {
            cost.layer_mut(LayerId(i)).weight_bytes = 10;
        }
        let mut order = vec![
            Op::Loss,
            Op::OutputGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
            Op::WeightGrad(LayerId(3)),
            Op::WeightGrad(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
        ];
        for i in (1..=3).rev() {
            order.push(Op::Update(LayerId(i)));
        }
        for i in 1..=3 {
            order.push(Op::Forward(LayerId(i)));
        }
        let s = Schedule::single_lane("gpu", order.clone());
        let advisor = PerfAdvisor::new(&g).with_cost(cost.clone());
        let report = advisor.analyze(&s).unwrap();
        let hits = report.by_rule(RuleId::PeakMemoryHotspot);
        assert_eq!(hits.len(), 1, "advice: {:?}", codes(&report));
        // Applying the deferral must strictly shrink the high-water mark.
        let before = memory_profile(&g, &order, &cost).unwrap().peak;
        let fixed = hits[0].suggestion.as_ref().unwrap().apply(&s).unwrap();
        let after = memory_profile(&g, &fixed.lanes[0].ops, &cost).unwrap().peak;
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn op501_fires_on_multi_lane_schedules_via_the_ledger() {
        // Heavy dW4 executed right after the loss on the compute lane,
        // its consumers living on the link lane: the gradient buffer
        // spans the ledger peak. Before the ledger rebase this schedule
        // was bailed out on (multi-lane); now the deferral scan runs and
        // the suggested move strictly shrinks the ledger peak.
        let g = TrainGraph::data_parallel(4);
        let mut cost = TableCost::uniform(4, LayerCost::default());
        cost.layer_mut(LayerId(4)).weight_bytes = 20;
        let mut s = Schedule::default();
        s.add_lane(
            "gpu",
            vec![
                Op::Loss,
                Op::WeightGrad(LayerId(4)),
                Op::OutputGrad(LayerId(4)),
                Op::OutputGrad(LayerId(3)),
                Op::OutputGrad(LayerId(2)),
                Op::WeightGrad(LayerId(3)),
                Op::WeightGrad(LayerId(2)),
                Op::WeightGrad(LayerId(1)),
            ],
        );
        s.add_lane(
            "link",
            vec![
                Op::SyncWeightGrad(LayerId(4)),
                Op::SyncWeightGrad(LayerId(3)),
                Op::SyncWeightGrad(LayerId(2)),
                Op::SyncWeightGrad(LayerId(1)),
            ],
        );
        let advisor = PerfAdvisor::new(&g).with_cost(cost.clone());
        let report = advisor.analyze(&s).unwrap();
        let hits = report.by_rule(RuleId::PeakMemoryHotspot);
        assert_eq!(hits.len(), 1, "advice: {:?}", codes(&report));
        assert_eq!(hits[0].diagnostic.ops, vec![Op::WeightGrad(LayerId(4))]);
        let before = crate::mem::ledger_of_schedule(&g, &s, &cost).unwrap().peak;
        let fixed = hits[0].suggestion.as_ref().unwrap().apply(&s).unwrap();
        let after = crate::mem::ledger_of_schedule(&g, &fixed, &cost)
            .unwrap()
            .peak;
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn certified_bound_gates_the_mutation_scans() {
        // A single-lane conventional schedule meets the one-lane
        // resource bound exactly: the subset bound certifies it optimal
        // and the OP101/OP201 scans are skipped outright.
        let g = TrainGraph::single_gpu(6);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let report = PerfAdvisor::new(&g).analyze(&s).unwrap();
        assert!(report.proven_optimal);
        assert_eq!(report.scheduled_lower_bound, report.predicted_makespan);
        assert_eq!(report.scheduled_lower_bound, report.lower_bound);
        assert!(report.by_rule(RuleId::MissedOooOpportunity).is_empty());
        assert!(report.by_rule(RuleId::AvoidableBarrierStall).is_empty());
    }

    #[test]
    fn certified_bound_gates_the_op301_sweep_on_sync_free_orders() {
        // With zero sync weight the single-compute-lane realization of
        // any backward order runs back-to-back: its makespan equals the
        // resource bound, the certificate fires, and the whole OP301
        // depth sweep is provably fruitless and skipped. The realization
        // is complete, so the subset bound coincides with the
        // whole-graph bound here.
        let l = 8;
        let g = TrainGraph::data_parallel(l);
        let order = reverse_first_k(&g, 3, None::<(u64, &UnitCost)>).unwrap();
        let advisor = PerfAdvisor::new(&g);
        let report = advisor
            .analyze_order(&order, CommPolicy::PriorityByLayer)
            .unwrap();
        assert!(report.proven_optimal, "{report:?}");
        assert_eq!(report.scheduled_lower_bound, report.lower_bound);
        assert!(report.by_rule(RuleId::SuboptimalReverseK).is_empty());
    }

    #[test]
    fn proven_optimal_is_false_when_the_schedule_can_improve() {
        // The OP201 fixture is strictly improvable, so the gate must
        // stay open and the scans must still fire (guards against the
        // gate suppressing true positives).
        let g = TrainGraph::data_parallel(3);
        let cost = TableCost::uniform(
            3,
            LayerCost {
                sync_weight: 5,
                ..LayerCost::default()
            },
        );
        let mut main = vec![
            Op::Loss,
            Op::OutputGrad(LayerId(3)),
            Op::WeightGrad(LayerId(3)),
            Op::SyncWeightGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
            Op::WeightGrad(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
        ];
        for i in 1..=3 {
            main.push(Op::Update(LayerId(i)));
            main.push(Op::Forward(LayerId(i)));
        }
        let mut s = Schedule::default();
        s.add_lane("gpu", main);
        s.add_lane(
            "link",
            vec![
                Op::SyncWeightGrad(LayerId(2)),
                Op::SyncWeightGrad(LayerId(1)),
            ],
        );
        let report = PerfAdvisor::new(&g).with_cost(cost).analyze(&s).unwrap();
        assert!(!report.proven_optimal);
        assert!(report.predicted_makespan > report.scheduled_lower_bound);
        assert_eq!(report.by_rule(RuleId::AvoidableBarrierStall).len(), 1);
    }

    #[test]
    fn gap_reported_only_for_complete_schedules() {
        let g = TrainGraph::single_gpu(4);
        let advisor = PerfAdvisor::new(&g);
        let full = Schedule::single_lane("gpu", g.conventional_backprop());
        let report = advisor.analyze(&full).unwrap();
        assert!(report.optimality_gap.is_some());
        // A single-lane conventional order meets the resource bound.
        assert!((report.optimality_gap.unwrap() - 1.0).abs() < 1e-9);
        let partial = Schedule::single_lane("gpu", vec![Op::Loss]);
        let report = advisor.analyze(&partial).unwrap();
        assert!(report.optimality_gap.is_none());
        assert_eq!(report.lower_bound, bounds::lower_bound(&g, &UnitCost, 1, 1));
    }

    #[test]
    fn suggestion_apply_edits_and_rebuild_variants_return_none() {
        let mut s = Schedule::default();
        s.add_lane(
            "a",
            vec![
                Op::Loss,
                Op::WeightGrad(LayerId(2)),
                Op::OutputGrad(LayerId(2)),
            ],
        );
        s.add_lane("b", vec![Op::WeightGrad(LayerId(1))]);
        let defer = Suggestion::DeferOp {
            lane: "a".to_string(),
            op: Op::WeightGrad(LayerId(2)),
            to_index: 2,
        };
        let moved = defer.apply(&s).unwrap();
        assert_eq!(
            moved.lanes[0].ops,
            vec![
                Op::Loss,
                Op::OutputGrad(LayerId(2)),
                Op::WeightGrad(LayerId(2))
            ]
        );
        let hop = Suggestion::MoveToLane {
            op: Op::WeightGrad(LayerId(2)),
            from: "a".to_string(),
            to: "b".to_string(),
            index: 1,
        };
        let hopped = hop.apply(&s).unwrap();
        assert_eq!(hopped.lanes[0].ops.len(), 2);
        assert_eq!(
            hopped.lanes[1].ops,
            vec![Op::WeightGrad(LayerId(1)), Op::WeightGrad(LayerId(2))]
        );
        // A new lane is created when the target does not exist yet.
        let fresh = Suggestion::MoveToLane {
            op: Op::WeightGrad(LayerId(2)),
            from: "a".to_string(),
            to: "link".to_string(),
            index: 0,
        };
        let created = fresh.apply(&s).unwrap();
        assert_eq!(created.lanes.len(), 3);
        assert_eq!(created.lanes[2].name, "link");
        assert!(Suggestion::SetK { k: 3 }.apply(&s).is_none());
        assert!(Suggestion::AdoptStrategy {
            strategy: "OooPipe2"
        }
        .apply(&s)
        .is_none());
        // Unknown op: the suggestion does not match the schedule.
        let bogus = Suggestion::DeferOp {
            lane: "a".to_string(),
            op: Op::Update(LayerId(9)),
            to_index: 0,
        };
        assert!(bogus.apply(&s).is_none());
    }
}
