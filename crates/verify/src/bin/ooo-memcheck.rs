//! `ooo-memcheck` — static memory-lifetime analysis of schedules.
//!
//! Runs the exact multi-lane live/peak ledger (`ooo_verify::mem`) and
//! the OM-series lifetime rules over every order and schedule of a
//! JSON-exported [`ScheduleBundle`], or over a synthetic reverse-first-k
//! realization built in-process:
//!
//! ```text
//! ooo-memcheck bundle <bundle.json> [--schedule NAME] [--budget BYTES]
//!                     [--baseline] [--json] [--out FILE]
//! ooo-memcheck order --layers N [--k K] [--sync S] [--budget BYTES]
//!                    [--baseline] [--json] [--out FILE]
//! ```
//!
//! `--budget BYTES` arms the `OM301` peak-over-budget rule; `--baseline`
//! arms the `OM501` reorder-inflates-peak comparison against the
//! in-order schedule. Exit status: `0` when no OM rule fired, `1` when
//! any finding (error or advice) fired, `2` on usage or I/O problems.

use ooo_core::cost::{CostModel, LayerCost, TableCost, UnitCost};
use ooo_core::datapar::CommPolicy;
use ooo_core::export::ScheduleBundle;
use ooo_core::json::{obj, Value};
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::schedule::Schedule;
use ooo_core::{SimTime, TrainGraph};
use ooo_verify::mem::{buffer_name, check_schedule, MemAnalysis, MemCheckOptions};
use std::process::ExitCode;

enum Mode {
    Bundle {
        path: String,
    },
    Order {
        layers: usize,
        k: usize,
        sync: SimTime,
    },
}

struct Args {
    mode: Mode,
    schedule: Option<String>,
    budget: Option<u64>,
    baseline: bool,
    json: bool,
    out: Option<String>,
}

const USAGE: &str = "usage: ooo-memcheck bundle <bundle.json> [--schedule NAME] \
                     [--budget BYTES] [--baseline] [--json] [--out FILE]\n\
                     \x20      ooo-memcheck order --layers N [--k K] [--sync S] \
                     [--budget BYTES] [--baseline] [--json] [--out FILE]";

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mode_word = argv.next().ok_or_else(|| USAGE.to_string())?;
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_num = |flag: &str, v: String| {
        v.parse::<u64>()
            .map_err(|_| format!("{flag}: not a non-negative integer: {v:?}"))
    };
    let mut schedule = None;
    let mut budget = None;
    let mut baseline = false;
    let mut json = false;
    let mut out = None;
    let mut path = String::new();
    let mut layers: Option<usize> = None;
    let mut k = 0usize;
    let mut sync: SimTime = 3;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--schedule" => schedule = Some(need_value(&mut argv, "--schedule")?),
            "--budget" => {
                budget = Some(parse_num("--budget", need_value(&mut argv, "--budget")?)?);
            }
            "--layers" => {
                layers = Some(parse_num("--layers", need_value(&mut argv, "--layers")?)? as usize);
            }
            "--k" => k = parse_num("--k", need_value(&mut argv, "--k")?)? as usize,
            "--sync" => sync = parse_num("--sync", need_value(&mut argv, "--sync")?)? as SimTime,
            "--baseline" => baseline = true,
            "--json" => json = true,
            "--out" => out = Some(need_value(&mut argv, "--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if mode_word == "bundle" && path.is_empty() => path = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let mode = match mode_word.as_str() {
        "bundle" => {
            if path.is_empty() {
                return Err(USAGE.to_string());
            }
            Mode::Bundle { path }
        }
        "order" => {
            let layers = layers.ok_or("order mode needs --layers")?;
            if layers == 0 {
                return Err("--layers must be at least 1".to_string());
            }
            if k > layers {
                return Err(format!("--k is {k}, above --layers {layers}"));
            }
            Mode::Order { layers, k, sync }
        }
        other => return Err(format!("unknown mode: {other}\n{USAGE}")),
    };
    Ok(Args {
        mode,
        schedule,
        budget,
        baseline,
        json,
        out,
    })
}

/// One analyzed target rendered to the memcheck JSON document: the
/// ledger summary plus every OM finding.
fn analysis_to_json(name: &str, analysis: &MemAnalysis) -> String {
    let ledger = &analysis.ledger;
    let diags: Vec<Value> = analysis
        .diagnostics
        .iter()
        .map(|d| {
            let r = d.to_record();
            obj([
                ("rule", r.rule.as_str().into()),
                ("severity", r.severity.as_str().into()),
                (
                    "ops",
                    Value::Arr(r.ops.iter().map(|o| o.to_string().into()).collect()),
                ),
                (
                    "lanes",
                    Value::Arr(r.lanes.iter().map(|l| l.as_str().into()).collect()),
                ),
                ("message", r.message.as_str().into()),
            ])
        })
        .collect();
    obj([
        ("schedule", name.into()),
        ("initial_bytes", Value::Num(ledger.initial as f64)),
        ("peak_bytes", Value::Num(ledger.peak as f64)),
        ("peak_at", Value::Num(ledger.peak_at as f64)),
        (
            "resident_at_peak",
            Value::Arr(
                ledger
                    .resident_at_peak
                    .iter()
                    .map(|&b| buffer_name(b).into())
                    .collect(),
            ),
        ),
        ("final_bytes", Value::Num(ledger.final_usage as f64)),
        ("diagnostics", Value::Arr(diags)),
    ])
    .to_pretty()
}

fn analysis_to_human(name: &str, analysis: &MemAnalysis) -> String {
    let ledger = &analysis.ledger;
    let mut s = format!(
        "{name}: peak {} bytes at t={} (initial {}, final {})\n",
        ledger.peak, ledger.peak_at, ledger.initial, ledger.final_usage
    );
    if analysis.diagnostics.is_empty() {
        s.push_str("  clean: no findings\n");
    }
    for d in &analysis.diagnostics {
        s.push_str(&format!("  {d}\n"));
    }
    s
}

/// The named analysis targets of one run: flat orders become
/// single-lane schedules, multi-lane schedules are checked as-is.
fn bundle_targets(
    bundle: &ScheduleBundle,
    wanted: Option<&str>,
) -> Result<Vec<(String, Schedule)>, String> {
    let mut targets: Vec<(String, Schedule)> = Vec::new();
    for (name, order) in &bundle.orders {
        targets.push((name.clone(), Schedule::single_lane(name, order.clone())));
    }
    for (name, schedule) in &bundle.schedules {
        targets.push((name.clone(), schedule.clone()));
    }
    if let Some(wanted) = wanted {
        targets.retain(|(name, _)| name == wanted);
        if targets.is_empty() {
            return Err(format!(
                "no order or schedule named {wanted:?} in the bundle"
            ));
        }
    }
    Ok(targets)
}

fn run<C: CostModel>(
    args: &Args,
    graph: &TrainGraph,
    cost: &C,
    targets: &[(String, Schedule)],
) -> ExitCode {
    let opts = MemCheckOptions {
        budget: args.budget,
        plan: None,
        baseline: args.baseline,
    };
    let mut any_finding = false;
    let mut json_docs: Vec<String> = Vec::new();
    let mut human = String::new();
    for (name, schedule) in targets {
        let analysis = match check_schedule(graph, schedule, cost, &opts) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("ooo-memcheck: cannot analyze {name:?}: {e}");
                return ExitCode::from(2);
            }
        };
        any_finding |= !analysis.diagnostics.is_empty();
        if args.json || args.out.is_some() {
            json_docs.push(analysis_to_json(name, &analysis));
        }
        human.push_str(&analysis_to_human(name, &analysis));
    }

    let json_output = || {
        if json_docs.len() == 1 {
            json_docs[0].clone()
        } else {
            format!("[\n{}\n]", json_docs.join(",\n"))
        }
    };
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, json_output() + "\n") {
            eprintln!("ooo-memcheck: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", json_output());
    } else {
        print!("{human}");
    }

    if any_finding {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    match &args.mode {
        Mode::Bundle { path } => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ooo-memcheck: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            // Lenient parse: a bundle whose schedule is broken must still
            // load so the lifetime rules can attribute what is wrong.
            let bundle = match ScheduleBundle::from_json_lenient(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("ooo-memcheck: cannot parse {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let graph = match TrainGraph::new(bundle.graph.clone()) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("ooo-memcheck: invalid graph configuration: {e}");
                    return ExitCode::from(2);
                }
            };
            let targets = match bundle_targets(&bundle, args.schedule.as_deref()) {
                Ok(t) => t,
                Err(msg) => {
                    eprintln!("ooo-memcheck: {msg}");
                    return ExitCode::from(2);
                }
            };
            run(&args, &graph, &UnitCost, &targets)
        }
        Mode::Order { layers, k, sync } => {
            let graph = TrainGraph::data_parallel(*layers);
            let cost = TableCost::uniform(
                *layers,
                LayerCost {
                    sync_weight: *sync,
                    ..LayerCost::default()
                },
            );
            let order = match reverse_first_k(&graph, *k, None::<(u64, &TableCost)>) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("ooo-memcheck: cannot build reverse-first-{k}: {e}");
                    return ExitCode::from(2);
                }
            };
            let realized = match ooo_verify::predict::datapar_schedule(
                &graph,
                &order,
                &cost,
                CommPolicy::PriorityByLayer,
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ooo-memcheck: cannot realize the order: {e}");
                    return ExitCode::from(2);
                }
            };
            let name = format!("reverse-first-k(l={layers}, k={k})");
            run(&args, &graph, &cost, &[(name, realized)])
        }
    }
}
