//! `ooo-advise` — static performance analysis of schedules.
//!
//! Two modes:
//!
//! ```text
//! ooo-advise bundle <bundle.json> [--schedule NAME] [--policy fifo|bylayer] [--json] [--out FILE]
//! ooo-advise pipeline --layers N --devices D --strategy NAME [--group G] [--json] [--out FILE]
//! ```
//!
//! `bundle` runs the [`ooo_verify::perf::PerfAdvisor`] over every order
//! and schedule in a JSON-exported [`ScheduleBundle`]; flat orders on a
//! data-parallel graph get the full reverse first-k analysis under the
//! chosen link policy. `pipeline` renders one strategy's op-level
//! schedule and evaluates it against the OOO-Pipe2 bubble bound.
//!
//! Output is deterministic: the same input produces byte-identical
//! output (CI runs every invocation twice and compares). Exit status:
//! `0` when no advisory fired, `1` when at least one did, `2` on usage,
//! I/O, or parse problems.

use ooo_core::datapar::CommPolicy;
use ooo_core::export::ScheduleBundle;
use ooo_core::json::{obj, Value};
use ooo_core::pipeline::Strategy;
use ooo_core::schedule::Schedule;
use ooo_core::TrainGraph;
use ooo_verify::perf::{advise_pipeline, PerfAdvisor, PerfReport};
use std::process::ExitCode;

const USAGE: &str = "usage: ooo-advise bundle <bundle.json> [--schedule NAME] \
                     [--policy fifo|bylayer] [--json] [--out FILE]\n\
                     \x20      ooo-advise pipeline --layers N --devices D --strategy NAME \
                     [--group G] [--json] [--out FILE]";

enum Mode {
    Bundle {
        path: String,
        schedule: Option<String>,
        policy: CommPolicy,
    },
    Pipeline {
        layers: usize,
        devices: usize,
        strategy: Strategy,
        group: usize,
    },
}

struct Args {
    mode: Mode,
    json: bool,
    out: Option<String>,
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "mp" | "modelparallel" => Strategy::ModelParallel,
        "gpipe" => Strategy::GPipe,
        "pipedream" => Strategy::PipeDream,
        "dapple" => Strategy::Dapple,
        "megatron" => Strategy::MegatronInterleaved { chunks: 2 },
        "pipe1" => Strategy::OooPipe1,
        "pipe2" => Strategy::OooPipe2,
        other => return Err(format!("unknown strategy: {other:?}")),
    })
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mode_word = argv.next().ok_or_else(|| USAGE.to_string())?;
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_usize = |flag: &str, v: String| {
        v.parse::<usize>()
            .map_err(|_| format!("{flag}: not a count: {v:?}"))
    };
    let mut json = false;
    let mut out = None;

    let mode = match mode_word.as_str() {
        "bundle" => {
            let mut path = String::new();
            let mut schedule = None;
            let mut policy = CommPolicy::PriorityByLayer;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--schedule" => schedule = Some(need_value(&mut argv, "--schedule")?),
                    "--policy" => {
                        policy = match need_value(&mut argv, "--policy")?.as_str() {
                            "fifo" => CommPolicy::FifoCompletion,
                            "bylayer" => CommPolicy::PriorityByLayer,
                            other => return Err(format!("unknown policy: {other:?}")),
                        }
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other if other.starts_with('-') => {
                        return Err(format!("unknown flag: {other}"))
                    }
                    other if path.is_empty() => path = other.to_string(),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if path.is_empty() {
                return Err(USAGE.to_string());
            }
            Mode::Bundle {
                path,
                schedule,
                policy,
            }
        }
        "pipeline" => {
            let mut layers = None;
            let mut devices = None;
            let mut strategy = None;
            let mut group = 1usize;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--layers" => {
                        layers = Some(parse_usize("--layers", need_value(&mut argv, "--layers")?)?)
                    }
                    "--devices" => {
                        devices = Some(parse_usize(
                            "--devices",
                            need_value(&mut argv, "--devices")?,
                        )?)
                    }
                    "--strategy" => {
                        strategy = Some(parse_strategy(&need_value(&mut argv, "--strategy")?)?)
                    }
                    "--group" => group = parse_usize("--group", need_value(&mut argv, "--group")?)?,
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            match (layers, devices, strategy) {
                (Some(layers), Some(devices), Some(strategy)) if layers > 0 && devices > 0 => {
                    Mode::Pipeline {
                        layers,
                        devices,
                        strategy,
                        group,
                    }
                }
                _ => return Err(USAGE.to_string()),
            }
        }
        "--help" | "-h" => return Err(USAGE.to_string()),
        other => return Err(format!("unknown mode: {other:?}\n{USAGE}")),
    };
    Ok(Args { mode, json, out })
}

fn gap_value(gap: Option<f64>) -> Value {
    match gap {
        None => Value::Null,
        Some(g) if g.is_infinite() => Value::Str("inf".to_string()),
        // Fixed precision keeps the document byte-stable.
        Some(g) => Value::Str(format!("{g:.3}")),
    }
}

fn report_to_json(name: &str, report: &PerfReport) -> Value {
    let advice: Vec<Value> = report
        .advice
        .iter()
        .map(|a| {
            obj([
                ("rule", a.diagnostic.rule.code().into()),
                ("severity", a.diagnostic.rule.severity().as_str().into()),
                (
                    "ops",
                    Value::Arr(
                        a.diagnostic
                            .ops
                            .iter()
                            .map(|o| Value::Str(o.to_string()))
                            .collect(),
                    ),
                ),
                (
                    "lanes",
                    Value::Arr(
                        a.diagnostic
                            .lanes
                            .iter()
                            .map(|l| l.as_str().into())
                            .collect(),
                    ),
                ),
                ("message", a.diagnostic.message.as_str().into()),
                (
                    "suggestion",
                    match &a.suggestion {
                        Some(s) => Value::Str(s.describe()),
                        None => Value::Null,
                    },
                ),
            ])
        })
        .collect();
    obj([
        ("schedule", name.into()),
        (
            "predicted_makespan",
            Value::Num(report.predicted_makespan as f64),
        ),
        ("lower_bound", Value::Num(report.lower_bound as f64)),
        (
            "scheduled_lower_bound",
            Value::Num(report.scheduled_lower_bound as f64),
        ),
        ("proven_optimal", Value::Bool(report.proven_optimal)),
        ("optimality_gap", gap_value(report.optimality_gap)),
        ("advice", Value::Arr(advice)),
    ])
}

fn report_to_human(name: &str, report: &PerfReport) -> String {
    let gap = match report.optimality_gap {
        None => "n/a (partial)".to_string(),
        Some(g) if g.is_infinite() => "inf".to_string(),
        Some(g) => format!("{g:.3}"),
    };
    let mut s = format!(
        "{name}: predicted makespan {}, lower bound {}, gap {gap}{}\n",
        report.predicted_makespan,
        report.lower_bound,
        if report.proven_optimal {
            " (proven optimal)"
        } else {
            ""
        }
    );
    for a in &report.advice {
        s.push_str(&format!(
            "  {} [{}]: {}\n",
            a.diagnostic.rule.code(),
            a.diagnostic.rule.severity().as_str(),
            a.diagnostic.message
        ));
        if let Some(fix) = &a.suggestion {
            s.push_str(&format!("    fix: {}\n", fix.describe()));
        }
    }
    s
}

fn analyze_bundle(
    path: &str,
    wanted: Option<&str>,
    policy: CommPolicy,
) -> Result<Vec<(String, PerfReport)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let bundle = ScheduleBundle::from_json_lenient(&text)
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    let graph = TrainGraph::new(bundle.graph.clone())
        .map_err(|e| format!("invalid graph configuration: {e}"))?;
    let advisor = PerfAdvisor::new(&graph);

    let mut reports = Vec::new();
    for (name, order) in &bundle.orders {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        // Backward orders of a data-parallel graph run against the link
        // lane the engine would add; anything else is a flat schedule.
        // Exported orders may carry the sync/update/forward tail inline
        // (the simulator contract takes the backward pass alone and
        // appends the rest), so reduce to the backward subsequence first.
        let report = if graph.config().sync_weight_grads {
            let backward: Vec<_> = order.iter().copied().filter(|o| o.is_backward()).collect();
            advisor.analyze_order(&backward, policy)
        } else {
            advisor.analyze(&Schedule::single_lane(name, order.clone()))
        };
        let report = report.map_err(|e| format!("order {name:?}: {e}"))?;
        reports.push((name.clone(), report));
    }
    for (name, schedule) in &bundle.schedules {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        let report = advisor
            .analyze(schedule)
            .map_err(|e| format!("schedule {name:?}: {e}"))?;
        reports.push((name.clone(), report));
    }
    if reports.is_empty() {
        return Err(match wanted {
            Some(w) => format!("no order or schedule named {w:?} in the bundle"),
            None => "bundle holds no orders or schedules".to_string(),
        });
    }
    Ok(reports)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let reports = match &args.mode {
        Mode::Bundle {
            path,
            schedule,
            policy,
        } => match analyze_bundle(path, schedule.as_deref(), *policy) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("ooo-advise: {msg}");
                return ExitCode::from(2);
            }
        },
        Mode::Pipeline {
            layers,
            devices,
            strategy,
            group,
        } => match advise_pipeline(*layers, *devices, *strategy, *group) {
            Ok(r) => {
                let name = match strategy {
                    Strategy::ModelParallel => "model-parallel",
                    Strategy::GPipe => "gpipe",
                    Strategy::PipeDream => "pipedream",
                    Strategy::Dapple => "dapple",
                    Strategy::MegatronInterleaved { .. } => "megatron-interleaved",
                    Strategy::OooPipe1 => "ooo-pipe1",
                    Strategy::OooPipe2 => "ooo-pipe2",
                };
                vec![(name.to_string(), r)]
            }
            Err(e) => {
                eprintln!("ooo-advise: pipeline analysis failed: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let any_advice = reports.iter().any(|(_, r)| r.has_advice());
    let json_output = || {
        let docs: Vec<String> = reports
            .iter()
            .map(|(name, r)| report_to_json(name, r).to_pretty())
            .collect();
        if docs.len() == 1 {
            docs[0].clone()
        } else {
            format!("[\n{}\n]", docs.join(",\n"))
        }
    };
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, json_output() + "\n") {
            eprintln!("ooo-advise: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", json_output());
    } else {
        for (name, report) in &reports {
            print!("{}", report_to_human(name, report));
        }
    }

    if any_advice {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
