//! `ooo-lint` — lint JSON-exported schedule bundles.
//!
//! Reads a [`ScheduleBundle`] document (see `ooo_core::export`), runs the
//! `ooo-verify` analyzer over every order and schedule in it (or a single
//! named one), and prints the findings — human-readable by default,
//! machine-readable with `--json`.
//!
//! ```text
//! ooo-lint bundle.json [--schedule NAME] [--budget BYTES] [--partial] [--json] [--out FILE]
//! ```
//!
//! Exit status: `0` when every checked schedule is clean (warnings
//! allowed), `1` when any error-severity rule fired, `2` on usage or I/O
//! problems.

use ooo_core::export::{diagnostics_to_json, ScheduleBundle};
use ooo_core::schedule::Schedule;
use ooo_core::TrainGraph;
use ooo_verify::{Verifier, VerifyConfig};
use std::process::ExitCode;

struct Args {
    bundle_path: String,
    schedule: Option<String>,
    budget: Option<u64>,
    partial: bool,
    json: bool,
    out: Option<String>,
}

const USAGE: &str = "usage: ooo-lint <bundle.json> [--schedule NAME] [--budget BYTES] \
                     [--partial] [--json] [--out FILE]";

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut args = Args {
        bundle_path: String::new(),
        schedule: None,
        budget: None,
        partial: false,
        json: false,
        out: None,
    };
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--schedule" => args.schedule = Some(need_value(&mut argv, "--schedule")?),
            "--budget" => {
                let v = need_value(&mut argv, "--budget")?;
                args.budget = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--budget: not a byte count: {v:?}"))?,
                );
            }
            "--partial" => args.partial = true,
            "--json" => args.json = true,
            "--out" => args.out = Some(need_value(&mut argv, "--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if args.bundle_path.is_empty() => args.bundle_path = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if args.bundle_path.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(&args.bundle_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ooo-lint: cannot read {}: {e}", args.bundle_path);
            return ExitCode::from(2);
        }
    };
    // Lenient parse: a bundle whose schedule is broken must still load so
    // the analyzer can explain what is wrong with it.
    let bundle = match ScheduleBundle::from_json_lenient(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ooo-lint: cannot parse {}: {e}", args.bundle_path);
            return ExitCode::from(2);
        }
    };
    let graph = match TrainGraph::new(bundle.graph.clone()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ooo-lint: invalid graph configuration: {e}");
            return ExitCode::from(2);
        }
    };

    // Flat orders become single-lane schedules; multi-lane schedules are
    // checked as-is.
    let mut targets: Vec<(String, Schedule)> = Vec::new();
    for (name, order) in &bundle.orders {
        targets.push((name.clone(), Schedule::single_lane(name, order.clone())));
    }
    for (name, schedule) in &bundle.schedules {
        targets.push((name.clone(), schedule.clone()));
    }
    if let Some(wanted) = &args.schedule {
        targets.retain(|(name, _)| name == wanted);
        if targets.is_empty() {
            eprintln!("ooo-lint: no order or schedule named {wanted:?} in the bundle");
            return ExitCode::from(2);
        }
    }

    let verifier = Verifier::new(&graph).with_config(VerifyConfig {
        require_complete: !args.partial,
        memory_budget: args.budget,
        ..VerifyConfig::default()
    });

    let mut any_error = false;
    let mut json_docs: Vec<String> = Vec::new();
    let mut human = String::new();
    for (name, schedule) in &targets {
        let report = verifier.verify(schedule);
        any_error |= report.has_errors();
        if args.json || args.out.is_some() {
            json_docs.push(diagnostics_to_json(name, &report.to_records()));
        }
        human.push_str(&format!("{name}: {report}"));
    }

    let json_output = || {
        if json_docs.len() == 1 {
            json_docs[0].clone()
        } else {
            format!("[\n{}\n]", json_docs.join(",\n"))
        }
    };
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, json_output() + "\n") {
            eprintln!("ooo-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", json_output());
    } else {
        print!("{human}");
    }

    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
