//! Property tests of the fault-injection layer.
//!
//! Two families of properties:
//!
//! 1. **Safety under arbitrary faults** — whatever the injected
//!    magnitudes, a fault-injected run still produces a structurally
//!    valid timeline, a verifier-clean schedule, and never *speeds up*
//!    relative to the fault-free run.
//! 2. **Noop exactness** — a zero-magnitude fault environment reproduces
//!    the fault-free simulation bit for bit, so the injection layer
//!    provably adds no arithmetic of its own.

use ooo_cluster::datapar::{self, CommSystem, FaultEnv};
use ooo_models::zoo;
use ooo_models::GpuProfile;
use ooo_netsim::commsim::{
    finish_of, simulate_queue_faulty, simulate_queue_recorded, CommRequest, LinkFault,
    LossHandling, Policy,
};
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;
use proptest::prelude::*;

/// A small, fast workload shared by the data-parallel properties.
fn workload() -> (ooo_models::ModelSpec, GpuProfile, ClusterTopology) {
    (
        zoo::ffnn16(4096),
        GpuProfile::v100(),
        ClusterTopology::pub_a(),
    )
}

fn fault_env_strategy() -> impl Strategy<Value = FaultEnv> {
    (
        1.0f64..3.0,
        1.0f64..4.0,
        proptest::collection::vec((0u64..400_000_000, 1u64..80_000_000), 0..3),
        0u32..2,
    )
        .prop_map(|(compute, degrade, outages, resume)| FaultEnv {
            compute_factor: compute,
            degrade_factor: degrade,
            link_fault: LinkFault {
                degraded: Vec::new(),
                outages: outages.iter().map(|&(s, d)| (s, s + d)).collect(),
            },
            loss: if resume == 1 {
                LossHandling::ResumeChunks {
                    backoff_ns: 1_000_000,
                    max_backoff_ns: 8_000_000,
                }
            } else {
                LossHandling::RestartTensor
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any fault-injected data-parallel run yields a timeline that
    /// passes `Timeline::validate`, and the fault can only slow the
    /// iteration down, never speed it up.
    #[test]
    fn fault_injected_runs_produce_valid_timelines(
        env in fault_env_strategy(),
        k in 0usize..16,
    ) {
        let (model, gpu, topo) = workload();
        let (healthy, _) = datapar::run_fault_injected(
            &model, 32, &gpu, &topo, 8, CommSystem::OooBytePS,
            &FaultEnv::none(), Some(k),
        ).expect("healthy run");
        let (faulted, tl) = datapar::run_fault_injected(
            &model, 32, &gpu, &topo, 8, CommSystem::OooBytePS,
            &env, Some(k),
        ).expect("faulted run");
        prop_assert!(tl.validate().is_ok(), "timeline invalid: {:?}", tl.validate());
        prop_assert!(faulted.iter_ns >= healthy.iter_ns,
            "fault sped the run up: {} < {}", faulted.iter_ns, healthy.iter_ns);
    }

    /// A zero-magnitude fault environment reproduces the fault-free
    /// result exactly — same iteration time, same `k`, same exposed
    /// synchronization.
    #[test]
    fn zero_magnitude_fault_is_exact(
        batch_pow in 4u32..7,
        gpus in 2usize..12,
    ) {
        let batch = 1usize << batch_pow; // 16, 32, or 64
        let (model, gpu, topo) = workload();
        let baseline = datapar::run(&model, batch, &gpu, &topo, gpus, CommSystem::OooBytePS)
            .expect("baseline run");
        let (noop, tl) = datapar::run_fault_injected(
            &model, batch, &gpu, &topo, gpus, CommSystem::OooBytePS,
            &FaultEnv::none(), None,
        ).expect("noop run");
        prop_assert_eq!(noop.iter_ns, baseline.iter_ns);
        prop_assert_eq!(noop.k, baseline.k);
        prop_assert_eq!(noop.exposed_sync_ns, baseline.exposed_sync_ns);
        prop_assert!(tl.validate().is_ok());
    }

    /// Under any outage pattern the faulty queue delivers every request
    /// — transfers are delayed and retried, never dropped — and no
    /// request finishes earlier than in the fault-free schedule.
    #[test]
    fn faulty_queue_never_loses_traffic(
        reqs in proptest::collection::vec(
            (1u64..4_000_000, 0u64..50_000_000, 0i64..50), 1..12),
        outages in proptest::collection::vec(
            (0u64..80_000_000, 1u64..20_000_000), 0..4),
        resume in 0u32..2,
    ) {
        let link = LinkSpec { name: "prop", bytes_per_sec: 1.25e9, latency_ns: 5_000 };
        let requests: Vec<CommRequest> = reqs.iter().enumerate()
            .map(|(i, &(bytes, ready_ns, priority))| CommRequest {
                id: i, bytes, ready_ns, priority,
            })
            .collect();
        let fault = LinkFault {
            degraded: Vec::new(),
            outages: outages.iter().map(|&(s, d)| (s, s + d)).collect(),
        };
        let loss = if resume == 1 {
            LossHandling::ResumeChunks { backoff_ns: 100_000, max_backoff_ns: 1_600_000 }
        } else {
            LossHandling::RestartTensor
        };
        let (clean, _) = simulate_queue_recorded(&link, 262_144, Policy::Priority, &requests);
        let (faulty, intervals) =
            simulate_queue_faulty(&link, 262_144, Policy::Priority, &requests, &fault, loss);
        for req in &requests {
            let clean_finish = finish_of(&clean, req.id).expect("clean completion");
            let fault_finish = finish_of(&faulty, req.id);
            prop_assert!(fault_finish.is_some(), "request {} was dropped", req.id);
            prop_assert!(fault_finish.unwrap() >= clean_finish,
                "request {} finished early under the fault", req.id);
        }
        // No service may *start* while the link is down (in-flight
        // chunks may run into an outage — store-and-forward — but new
        // ones wait it out).
        for iv in &intervals {
            for &(s, e) in &fault.outages {
                prop_assert!(!(s <= iv.start_ns && iv.start_ns < e),
                    "interval [{}, {}) started inside outage [{s}, {e})",
                    iv.start_ns, iv.end_ns);
            }
        }
    }
}
