//! # ooo-faults — deterministic fault injection and recovery
//!
//! Robustness layer for the out-of-order-backprop simulators. The
//! simulators themselves ship the *injection hooks* (a
//! [`Slowdown`](ooo_gpusim::engine::Slowdown) window in the GPU engine,
//! [`LinkFault`](ooo_netsim::commsim::LinkFault) outage/degradation
//! windows in the communication queues, a
//! [`FaultEnv`](ooo_cluster::datapar::FaultEnv) for the cluster
//! engines); this crate supplies the three layers above them:
//!
//! - [`fault`] — a declarative fault taxonomy (straggler, degradation,
//!   flapping, crash, schedule corruption) and a seeded scenario
//!   generator: same seed, same scenarios, always.
//! - [`recovery`] — the [`RecoveryPolicy`](recovery::RecoveryPolicy)
//!   trait and its implementations: retry with bounded exponential
//!   backoff, checkpoint/rollback, re-running `search_optimal_k` against
//!   the faulted costs, and falling back to the safe in-order schedule
//!   when `ooo-verify` flags a corrupted order.
//! - [`serve`] — seeded protocol-level traffic traces for the
//!   `ooo-serve` daemon: mixed workloads with hostile lines, fault
//!   directives, deterministic timeouts, and hold-gated overload
//!   blocks, replayed by the serve conformance suite.
//! - [`campaign`] — the chaos campaign driver behind the `ooo-chaos`
//!   CLI: every scenario runs once with no recovery and once with its
//!   matched policy under the identical fault trace, three invariants
//!   are asserted (schedule safety, timeline validity, recovery strictly
//!   wins), and the degradation report renders deterministically.
//!
//! Determinism is the design center: discrete-event simulators, a seeded
//! `StdRng`, and `ooo_core::json`'s stable number formatting make the
//! campaign report byte-identical across runs of the same seed — the
//! property the CI smoke test pins.

#![warn(missing_docs)]

pub mod campaign;
pub mod fault;
pub mod recovery;
pub mod serve;

pub use campaign::{run_campaign, CampaignReport, ScenarioOutcome};
pub use fault::{generate, Fault, Scenario};
pub use recovery::{
    policy_for, CheckpointRollback, Checkpointing, FallbackInOrder, NoRecovery, RecoveryPolicy,
    RetryBackoff, Retune,
};
pub use serve::{generate_trace, ServeTrace, TraceConfig};
