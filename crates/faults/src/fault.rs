//! The fault taxonomy and seeded scenario generation.
//!
//! A [`Fault`] is a *declarative* description of one failure to inject —
//! magnitudes only, no simulator state. The campaign driver
//! (`crate::campaign`) lowers each variant onto the concrete injection
//! hooks the simulators expose:
//!
//! - [`Fault::GpuStraggler`] → `ooo_cluster::datapar::FaultEnv`
//!   (`compute_factor` scales every kernel, `nic_factor` degrades the
//!   straggler's bottleneck NIC via `LinkSpec::degraded`),
//! - [`Fault::LinkDegradation`] → `FaultEnv::degrade_factor`,
//! - [`Fault::LinkFlapping`] → `ooo_netsim::commsim::LinkFault` outage
//!   windows on the push/pull queues,
//! - [`Fault::WorkerCrash`] → the closed-form makespan model of
//!   `crate::campaign` (crash-at-iteration plus restart cost),
//! - [`Fault::ScheduleCorruption`] → a perturbed reverse first-k order
//!   that `ooo-verify` must flag.
//!
//! Scenario generation is fully deterministic: [`generate`] draws every
//! magnitude from a `StdRng` seeded with the campaign seed, and scenario
//! `i` of seed `s` is identical regardless of how many scenarios follow
//! it (draws are strictly sequential).

use ooo_core::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One failure to inject, described by magnitudes alone.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// One worker's GPU runs slow (thermal throttling, a noisy
    /// neighbour): every compute duration is multiplied by
    /// `compute_factor`, and — stragglers rarely come alone — its NIC
    /// bandwidth is divided by `nic_factor`.
    GpuStraggler {
        /// Multiplier on every kernel duration (> 1).
        compute_factor: f64,
        /// Divisor on the straggler's NIC bandwidth (≥ 1).
        nic_factor: f64,
    },
    /// The bottleneck link runs degraded for the whole iteration
    /// (autonegotiation fallback, a failing transceiver): bandwidth is
    /// divided by `factor`.
    LinkDegradation {
        /// Divisor on the bottleneck bandwidth (> 1).
        factor: f64,
    },
    /// The link flaps: it goes down over a set of windows, killing
    /// whatever was in flight. Windows are expressed as fractions of the
    /// fault-free iteration time so one scenario is meaningful across
    /// models.
    LinkFlapping {
        /// `(start, duration)` pairs as fractions of the baseline
        /// iteration time.
        windows: Vec<(f64, f64)>,
        /// Initial retry backoff of the resuming sender.
        backoff_ns: SimTime,
        /// Backoff ceiling.
        max_backoff_ns: SimTime,
    },
    /// A worker crashes at iteration `crash_iter` of a `total_iters`
    /// training run and takes `restart_ns` to come back.
    WorkerCrash {
        /// Length of the training run, iterations.
        total_iters: usize,
        /// Iteration at which the worker dies (0-based, `< total_iters`).
        crash_iter: usize,
        /// Wall time to restart the worker process.
        restart_ns: SimTime,
        /// Checkpoint period available to the recovery policy.
        period_iters: usize,
        /// Cost of writing one checkpoint.
        checkpoint_cost_ns: SimTime,
    },
    /// The out-of-order schedule itself is corrupted (a bad cache, a
    /// version-skewed scheduler): the executed order violates the
    /// dependency graph.
    ScheduleCorruption {
        /// Time until silent corruption is noticed *after* the run
        /// (diverged loss, NaN watchdog).
        detect_ns: SimTime,
        /// Time for `ooo-verify` to lint the order *before* the run.
        lint_ns: SimTime,
    },
}

impl Fault {
    /// The family name used in reports and the `ooo-chaos list` output.
    pub fn family(&self) -> &'static str {
        match self {
            Fault::GpuStraggler { .. } => "gpu-straggler",
            Fault::LinkDegradation { .. } => "link-degradation",
            Fault::LinkFlapping { .. } => "link-flapping",
            Fault::WorkerCrash { .. } => "worker-crash",
            Fault::ScheduleCorruption { .. } => "schedule-corruption",
        }
    }

    /// A one-line human rendering of the magnitudes.
    pub fn detail(&self) -> String {
        match self {
            Fault::GpuStraggler {
                compute_factor,
                nic_factor,
            } => format!("compute x{compute_factor:.2}, nic /{nic_factor:.2}"),
            Fault::LinkDegradation { factor } => format!("bandwidth /{factor:.2}"),
            Fault::LinkFlapping {
                windows,
                backoff_ns,
                ..
            } => format!(
                "{} outage(s) {}, backoff {}us",
                windows.len(),
                windows
                    .iter()
                    .map(|(s, d)| format!("[{:.0}%+{:.0}%]", s * 100.0, d * 100.0))
                    .collect::<Vec<_>>()
                    .join(" "),
                backoff_ns / 1_000
            ),
            Fault::WorkerCrash {
                total_iters,
                crash_iter,
                restart_ns,
                period_iters,
                ..
            } => format!(
                "crash at iter {crash_iter}/{total_iters}, restart {}ms, ckpt every {period_iters}",
                restart_ns / 1_000_000
            ),
            Fault::ScheduleCorruption {
                detect_ns, lint_ns, ..
            } => format!(
                "silent detect {}ms vs lint {}ms",
                detect_ns / 1_000_000,
                lint_ns / 1_000_000
            ),
        }
    }
}

/// One numbered campaign entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in the campaign (0-based).
    pub id: usize,
    /// The failure to inject.
    pub fault: Fault,
}

const MS: SimTime = 1_000_000;

/// Generates `count` scenarios from `seed`, cycling through the five
/// fault families. Deterministic: the same `(seed, count)` always yields
/// the same scenarios, and a prefix of a longer campaign equals the
/// shorter campaign.
pub fn generate(seed: u64, count: usize) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|id| {
            let fault = match id % 5 {
                0 => Fault::GpuStraggler {
                    compute_factor: rng.gen_range(1.6..2.5),
                    nic_factor: rng.gen_range(1.0..1.2),
                },
                1 => Fault::LinkDegradation {
                    factor: rng.gen_range(3.0..5.0),
                },
                2 => {
                    let n = rng.gen_range(2..=3usize);
                    // Windows sit in the drain phase of the iteration
                    // ([0.4, 0.9) of the fault-free time), where the
                    // deferred first-k synchronizations keep the link on
                    // the critical path.
                    let windows = (0..n)
                        .map(|_| (rng.gen_range(0.40..0.70), rng.gen_range(0.05..0.20)))
                        .collect();
                    let backoff_ns = rng.gen_range(250_000..2_000_000u64);
                    Fault::LinkFlapping {
                        windows,
                        backoff_ns,
                        max_backoff_ns: backoff_ns.saturating_mul(8),
                    }
                }
                3 => {
                    let total_iters = rng.gen_range(40..=80usize);
                    Fault::WorkerCrash {
                        total_iters,
                        crash_iter: rng.gen_range(total_iters / 2..total_iters),
                        restart_ns: rng.gen_range(50..200u64) * MS,
                        period_iters: rng.gen_range(5..=10usize),
                        checkpoint_cost_ns: rng.gen_range(2..10u64) * MS,
                    }
                }
                _ => Fault::ScheduleCorruption {
                    detect_ns: rng.gen_range(5..20u64) * MS,
                    lint_ns: rng.gen_range(1..3u64) * MS,
                },
            };
            Scenario { id, fault }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        let a = generate(7, 10);
        let b = generate(7, 10);
        assert_eq!(a, b);
        let prefix = generate(7, 4);
        assert_eq!(&a[..4], &prefix[..]);
    }

    #[test]
    fn families_cycle_in_order() {
        let s = generate(1, 5);
        let names: Vec<_> = s.iter().map(|s| s.fault.family()).collect();
        assert_eq!(
            names,
            [
                "gpu-straggler",
                "link-degradation",
                "link-flapping",
                "worker-crash",
                "schedule-corruption"
            ]
        );
    }

    #[test]
    fn magnitudes_are_in_band() {
        for sc in generate(99, 25) {
            match sc.fault {
                Fault::GpuStraggler {
                    compute_factor,
                    nic_factor,
                } => {
                    assert!(compute_factor > 1.0 && nic_factor >= 1.0);
                }
                Fault::LinkDegradation { factor } => assert!(factor > 1.0),
                Fault::LinkFlapping {
                    ref windows,
                    backoff_ns,
                    max_backoff_ns,
                } => {
                    assert!(!windows.is_empty());
                    assert!(backoff_ns > 0 && max_backoff_ns >= backoff_ns);
                    for (s, d) in windows {
                        assert!(*s >= 0.0 && *d > 0.0 && s + d < 1.0);
                    }
                }
                Fault::WorkerCrash {
                    total_iters,
                    crash_iter,
                    period_iters,
                    ..
                } => {
                    assert!(crash_iter < total_iters);
                    assert!(period_iters > 0);
                }
                Fault::ScheduleCorruption { detect_ns, lint_ns } => {
                    assert!(detect_ns > lint_ns, "silent detection must cost more");
                }
            }
        }
    }
}
