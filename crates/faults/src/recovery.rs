//! Recovery policies: what a training job *does* about an injected
//! fault.
//!
//! A policy is a small strategy object consulted by the campaign driver.
//! Each knob maps to one concrete mechanism in the simulators:
//!
//! - [`RecoveryPolicy::loss_handling`] — how a sender treats transfers an
//!   outage killed (`ooo_netsim::commsim::LossHandling`): resend the whole
//!   tensor, or keep delivered chunks and retry with bounded exponential
//!   backoff.
//! - [`RecoveryPolicy::retunes_k`] — whether the job re-runs
//!   `ooo_core::reverse_k::search_optimal_k` against the *faulted* cost
//!   model instead of keeping the `k` tuned on healthy hardware.
//! - [`RecoveryPolicy::checkpointing`] — periodic checkpoints so a
//!   crashed worker rolls back to the last checkpoint instead of
//!   restarting the run from scratch.
//! - [`RecoveryPolicy::falls_back_in_order`] — lint the schedule with
//!   `ooo-verify` before running it, and fall back to the safe in-order
//!   baseline (`reverse_first_k` with `k = 0`) when the lint flags it.
//!
//! [`NoRecovery`] leaves every knob at its do-nothing default and is the
//! baseline each policy is compared against.

use crate::fault::Fault;
use ooo_core::SimTime;
use ooo_netsim::commsim::LossHandling;

/// Periodic checkpointing parameters used by crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpointing {
    /// Iterations between checkpoints.
    pub period_iters: usize,
    /// Cost of writing one checkpoint.
    pub cost_ns: SimTime,
}

/// A recovery strategy, consulted by the chaos campaign.
pub trait RecoveryPolicy {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// How the communication layer treats transfers an outage killed.
    fn loss_handling(&self) -> LossHandling {
        LossHandling::RestartTensor
    }

    /// Whether `search_optimal_k` is re-run against the faulted costs.
    fn retunes_k(&self) -> bool {
        false
    }

    /// Checkpointing available to crash recovery, if any.
    fn checkpointing(&self) -> Option<Checkpointing> {
        None
    }

    /// Whether a corrupted schedule is caught by a pre-run `ooo-verify`
    /// lint and replaced with the in-order baseline.
    fn falls_back_in_order(&self) -> bool {
        false
    }
}

/// The do-nothing baseline: stale `k`, whole-tensor resends, no
/// checkpoints, no pre-run lint.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRecovery;

impl RecoveryPolicy for NoRecovery {
    fn name(&self) -> &'static str {
        "no-recovery"
    }
}

/// Keep delivered chunks and retry with bounded exponential backoff —
/// the collective/queue answer to a flapping link.
#[derive(Debug, Clone, Copy)]
pub struct RetryBackoff {
    /// Initial backoff after a killed transfer.
    pub backoff_ns: SimTime,
    /// Backoff ceiling.
    pub max_backoff_ns: SimTime,
}

impl RecoveryPolicy for RetryBackoff {
    fn name(&self) -> &'static str {
        "retry-backoff"
    }

    fn loss_handling(&self) -> LossHandling {
        LossHandling::ResumeChunks {
            backoff_ns: self.backoff_ns,
            max_backoff_ns: self.max_backoff_ns,
        }
    }
}

/// Re-run `search_optimal_k` against the faulted cost model — the
/// straggler/degradation answer: the overlap trade-off moved, so the
/// reverse first-k depth must move with it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Retune;

impl RecoveryPolicy for Retune {
    fn name(&self) -> &'static str {
        "retune-k"
    }

    fn retunes_k(&self) -> bool {
        true
    }
}

/// Periodic checkpoints plus rollback and bounded re-execution after a
/// worker crash.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointRollback {
    /// Iterations between checkpoints.
    pub period_iters: usize,
    /// Cost of writing one checkpoint.
    pub cost_ns: SimTime,
}

impl RecoveryPolicy for CheckpointRollback {
    fn name(&self) -> &'static str {
        "checkpoint-rollback"
    }

    fn checkpointing(&self) -> Option<Checkpointing> {
        Some(Checkpointing {
            period_iters: self.period_iters,
            cost_ns: self.cost_ns,
        })
    }
}

/// Lint the schedule with `ooo-verify` before executing it; on findings,
/// fall back to the safe in-order baseline instead of running garbage.
#[derive(Debug, Clone, Copy, Default)]
pub struct FallbackInOrder;

impl RecoveryPolicy for FallbackInOrder {
    fn name(&self) -> &'static str {
        "fallback-in-order"
    }

    fn falls_back_in_order(&self) -> bool {
        true
    }
}

/// The policy the campaign pits against [`NoRecovery`] for a given
/// fault, parameterized from the fault's own magnitudes.
pub fn policy_for(fault: &Fault) -> Box<dyn RecoveryPolicy> {
    match fault {
        Fault::GpuStraggler { .. } | Fault::LinkDegradation { .. } => Box::new(Retune),
        Fault::LinkFlapping {
            backoff_ns,
            max_backoff_ns,
            ..
        } => Box::new(RetryBackoff {
            backoff_ns: *backoff_ns,
            max_backoff_ns: *max_backoff_ns,
        }),
        Fault::WorkerCrash {
            period_iters,
            checkpoint_cost_ns,
            ..
        } => Box::new(CheckpointRollback {
            period_iters: *period_iters,
            cost_ns: *checkpoint_cost_ns,
        }),
        Fault::ScheduleCorruption { .. } => Box::new(FallbackInOrder),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_do_nothing_stance() {
        let p = NoRecovery;
        assert_eq!(p.loss_handling(), LossHandling::RestartTensor);
        assert!(!p.retunes_k());
        assert!(p.checkpointing().is_none());
        assert!(!p.falls_back_in_order());
    }

    #[test]
    fn policy_for_pairs_each_family_with_its_mechanism() {
        let flap = Fault::LinkFlapping {
            windows: vec![(0.1, 0.1)],
            backoff_ns: 500,
            max_backoff_ns: 4_000,
        };
        assert_eq!(
            policy_for(&flap).loss_handling(),
            LossHandling::ResumeChunks {
                backoff_ns: 500,
                max_backoff_ns: 4_000
            }
        );
        let crash = Fault::WorkerCrash {
            total_iters: 10,
            crash_iter: 5,
            restart_ns: 1,
            period_iters: 3,
            checkpoint_cost_ns: 2,
        };
        assert_eq!(
            policy_for(&crash).checkpointing(),
            Some(Checkpointing {
                period_iters: 3,
                cost_ns: 2
            })
        );
        assert!(policy_for(&Fault::LinkDegradation { factor: 3.0 }).retunes_k());
        assert!(policy_for(&Fault::ScheduleCorruption {
            detect_ns: 10,
            lint_ns: 1
        })
        .falls_back_in_order());
    }
}
