//! `ooo-chaos` — run a deterministic fault-injection campaign.
//!
//! Generates a seeded scenario set (GPU stragglers, link degradation
//! and flapping, worker crashes, schedule corruption), runs each against
//! the simulators once with no recovery and once with the fault
//! family's matched recovery policy, checks the safety invariants, and
//! prints a degradation report.
//!
//! ```text
//! ooo-chaos run  [--seed N] [--scenarios N] [--json] [--out FILE]
//! ooo-chaos list [--seed N] [--scenarios N]
//! ```
//!
//! `run` exits `0` when every scenario satisfies all invariants
//! (recovered schedule passes ooo-verify, timelines validate, each
//! policy strictly beats no-recovery), `1` when a simulation fails or an
//! invariant is violated, `2` on usage or I/O problems. Never panics.
//! The same seed always produces a byte-identical report.

use ooo_faults::campaign::run_campaign;
use ooo_faults::fault::generate;
use std::process::ExitCode;

const USAGE: &str = "usage: ooo-chaos <run|list> [--seed N] [--scenarios N] [--json] [--out FILE]";

#[derive(PartialEq, Eq, Clone, Copy)]
enum Cmd {
    Run,
    List,
}

struct Args {
    cmd: Cmd,
    seed: u64,
    scenarios: usize,
    json: bool,
    out: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let cmd = match argv.next().as_deref() {
        Some("run") => Cmd::Run,
        Some("list") => Cmd::List,
        Some("--help") | Some("-h") | None => return Err(USAGE.to_string()),
        Some(other) => return Err(format!("unknown command: {other}\n{USAGE}")),
    };
    let mut args = Args {
        cmd,
        seed: 42,
        scenarios: 10,
        json: false,
        out: None,
    };
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--seed" => {
                let v = need_value(&mut argv, "--seed")?;
                args.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: not a number: {v:?}"))?;
            }
            "--scenarios" => {
                let v = need_value(&mut argv, "--scenarios")?;
                args.scenarios = v
                    .parse::<usize>()
                    .map_err(|_| format!("--scenarios: not a count: {v:?}"))?;
            }
            "--json" => args.json = true,
            "--out" => args.out = Some(need_value(&mut argv, "--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if args.scenarios == 0 {
        return Err("--scenarios must be at least 1".to_string());
    }
    Ok(args)
}

fn emit(text: &str, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    match args.cmd {
        Cmd::List => {
            println!("seed {} — {} scenario(s):", args.seed, args.scenarios);
            for sc in generate(args.seed, args.scenarios) {
                println!(
                    "{:<4} {:<20} {}",
                    sc.id,
                    sc.fault.family(),
                    sc.fault.detail()
                );
            }
            ExitCode::SUCCESS
        }
        Cmd::Run => {
            let report = match run_campaign(args.seed, args.scenarios) {
                Ok(r) => r,
                Err(msg) => {
                    eprintln!("ooo-chaos: {msg}");
                    return ExitCode::from(1);
                }
            };
            let text = if args.json {
                report.to_json().to_pretty() + "\n"
            } else {
                report.render()
            };
            if let Err(msg) = emit(&text, &args.out) {
                eprintln!("ooo-chaos: {msg}");
                return ExitCode::from(2);
            }
            if report.all_pass() {
                ExitCode::SUCCESS
            } else {
                eprintln!("ooo-chaos: invariant violation (see report)");
                ExitCode::from(1)
            }
        }
    }
}
