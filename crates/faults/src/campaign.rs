//! The chaos campaign: inject each scenario, run it once with
//! [`NoRecovery`] and once with the fault family's matched policy, check
//! the safety invariants, and report the degradation of both stances
//! against the fault-free baseline.
//!
//! The campaign is deterministic end to end: scenarios come from a
//! seeded generator ([`crate::fault::generate`]), the simulators are
//! discrete-event, and the JSON report is rendered with
//! `ooo_core::json`'s stable formatting — the same seed always produces
//! a byte-identical report.
//!
//! Three invariants are asserted after every scenario:
//!
//! 1. **Schedule safety** — the order the recovered job executes passes
//!    the `ooo-verify` static analyzer (for schedule corruption: the
//!    corrupted order is *flagged* and the fallback order is clean).
//! 2. **Timeline validity** — the traced timeline of the recovered run
//!    passes `Timeline::validate`.
//! 3. **Recovery wins** — the matched policy strictly beats
//!    [`NoRecovery`] on time-to-result under the identical fault trace.

use crate::fault::{generate, Fault, Scenario};
use crate::recovery::{policy_for, NoRecovery, RecoveryPolicy};
use ooo_cluster::datapar::{self, CommSystem, FaultEnv};
use ooo_cluster::hybrid;
use ooo_core::cost::{CostModel, TableCost};
use ooo_core::json::{obj, Value};
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::trace::{Span, Timeline, CAT_STALL};
use ooo_core::{Op, SimTime, TrainGraph};
use ooo_models::cost::to_table_cost;
use ooo_models::zoo;
use ooo_models::GpuProfile;
use ooo_netsim::commsim::LinkFault;
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;
use ooo_verify::{Verifier, VerifyConfig};

/// The fixed workload every scenario perturbs: ResNet-50 data-parallel
/// training on 16 V100s (the paper's Figure 9 configuration, scaled to
/// one bottleneck link), with the crash family alternating onto the
/// hybrid engine.
const GPUS: usize = 16;
const BATCH: usize = 64;

/// Outcome of one scenario: both stances plus the invariant checks.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario id (position in the campaign).
    pub id: usize,
    /// Fault family name.
    pub family: &'static str,
    /// Human rendering of the fault magnitudes.
    pub detail: String,
    /// Name of the matched recovery policy.
    pub policy: &'static str,
    /// Fault-free reference time for this scenario's unit of work
    /// (an iteration for link/compute faults, the full run for crashes,
    /// the backward pass for schedule corruption).
    pub baseline_ns: SimTime,
    /// Time under the fault with [`NoRecovery`].
    pub no_recovery_ns: SimTime,
    /// Time under the same fault trace with the matched policy.
    pub recovered_ns: SimTime,
    /// Invariant 1: the executed schedule passes `ooo-verify`.
    pub schedule_clean: bool,
    /// Invariant 2: the recovered run's timeline validates.
    pub timeline_valid: bool,
}

impl ScenarioOutcome {
    /// Inflation of the no-recovery stance over the baseline.
    pub fn no_recovery_inflation(&self) -> f64 {
        self.no_recovery_ns as f64 / self.baseline_ns.max(1) as f64
    }

    /// Inflation of the recovered stance over the baseline.
    pub fn recovered_inflation(&self) -> f64 {
        self.recovered_ns as f64 / self.baseline_ns.max(1) as f64
    }

    /// Invariant 3: the policy strictly beats no-recovery.
    pub fn recovery_wins(&self) -> bool {
        self.recovered_ns < self.no_recovery_ns
    }

    /// All three invariants hold.
    pub fn invariants_ok(&self) -> bool {
        self.schedule_clean && self.timeline_valid && self.recovery_wins()
    }
}

/// The full campaign report.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign seed.
    pub seed: u64,
    /// Fault-free data-parallel iteration time of the shared workload.
    pub baseline_iter_ns: SimTime,
    /// The reverse first-k depth tuned on healthy hardware.
    pub stale_k: usize,
    /// Per-scenario outcomes, in campaign order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// Whether every scenario satisfied all three invariants.
    pub fn all_pass(&self) -> bool {
        self.outcomes.iter().all(ScenarioOutcome::invariants_ok)
    }

    /// The deterministic JSON form of the report. Rendering the same
    /// campaign twice yields byte-identical text.
    pub fn to_json(&self) -> Value {
        let results = self
            .outcomes
            .iter()
            .map(|o| {
                obj([
                    ("id", Value::Num(o.id as f64)),
                    ("family", Value::Str(o.family.to_string())),
                    ("detail", Value::Str(o.detail.clone())),
                    ("policy", Value::Str(o.policy.to_string())),
                    ("baseline_ns", Value::Num(o.baseline_ns as f64)),
                    ("no_recovery_ns", Value::Num(o.no_recovery_ns as f64)),
                    ("recovered_ns", Value::Num(o.recovered_ns as f64)),
                    (
                        "no_recovery_inflation",
                        Value::Num(round3(o.no_recovery_inflation())),
                    ),
                    (
                        "recovered_inflation",
                        Value::Num(round3(o.recovered_inflation())),
                    ),
                    ("schedule_clean", Value::Bool(o.schedule_clean)),
                    ("timeline_valid", Value::Bool(o.timeline_valid)),
                    ("recovery_wins", Value::Bool(o.recovery_wins())),
                    ("invariants_ok", Value::Bool(o.invariants_ok())),
                ])
            })
            .collect();
        obj([
            ("seed", Value::Num(self.seed as f64)),
            ("scenarios", Value::Num(self.outcomes.len() as f64)),
            ("baseline_iter_ns", Value::Num(self.baseline_iter_ns as f64)),
            ("stale_k", Value::Num(self.stale_k as f64)),
            ("all_pass", Value::Bool(self.all_pass())),
            ("results", Value::Arr(results)),
        ])
    }

    /// A human-readable degradation table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos campaign: seed {}, {} scenario(s), baseline iter {:.1} ms (k = {})\n",
            self.seed,
            self.outcomes.len(),
            self.baseline_iter_ns as f64 / 1e6,
            self.stale_k,
        ));
        out.push_str(&format!(
            "{:<4} {:<20} {:<34} {:<20} {:>10} {:>10} {:>6}\n",
            "id", "family", "fault", "policy", "no-rec", "recovered", "ok"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<4} {:<20} {:<34} {:<20} {:>9.2}x {:>9.2}x {:>6}\n",
                o.id,
                o.family,
                o.detail,
                o.policy,
                o.no_recovery_inflation(),
                o.recovered_inflation(),
                if o.invariants_ok() { "pass" } else { "FAIL" },
            ));
        }
        out.push_str(if self.all_pass() {
            "all invariants hold\n"
        } else {
            "INVARIANT VIOLATION\n"
        });
        out
    }
}

/// Rounds to 3 decimals so report ratios stay stable and readable.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Shared campaign state: the healthy workload everything perturbs.
struct Ctx {
    model: ooo_models::ModelSpec,
    gpu: GpuProfile,
    topology: ClusterTopology,
    cost: TableCost,
    graph: TrainGraph,
    stale_k: usize,
    baseline_iter_ns: SimTime,
    /// Lazily computed hybrid-engine iteration time (crash scenarios
    /// alternate between the data-parallel and hybrid engines).
    hybrid_iter_ns: Option<SimTime>,
}

impl Ctx {
    fn new() -> Result<Self, String> {
        let model = zoo::resnet(50);
        let gpu = GpuProfile::v100();
        let topology = ClusterTopology::pub_a();
        let cost = to_table_cost(&model, BATCH, &gpu);
        let graph = TrainGraph::data_parallel(cost.layers());
        let report = datapar::run(&model, BATCH, &gpu, &topology, GPUS, CommSystem::OooBytePS)
            .map_err(|e| format!("baseline data-parallel run failed: {e}"))?;
        Ok(Ctx {
            model,
            gpu,
            topology,
            cost,
            graph,
            stale_k: report.k,
            baseline_iter_ns: report.iter_ns,
            hybrid_iter_ns: None,
        })
    }

    fn hybrid_iter_ns(&mut self) -> Result<SimTime, String> {
        if let Some(t) = self.hybrid_iter_ns {
            return Ok(t);
        }
        let report = hybrid::run_combined(
            &self.model,
            BATCH,
            4,
            &self.gpu,
            &LinkSpec::nvlink(),
            &LinkSpec::ethernet_10g(),
            4,
            4,
            2,
            2,
        )
        .map_err(|e| format!("hybrid baseline run failed: {e}"))?;
        self.hybrid_iter_ns = Some(report.iter_ns);
        Ok(report.iter_ns)
    }

    /// `true` when `order` passes the analyzer (backward-only orders are
    /// partial, so completeness is not required).
    fn order_is_clean(&self, order: &[Op]) -> bool {
        !Verifier::new(&self.graph)
            .with_config(VerifyConfig {
                require_complete: false,
                ..VerifyConfig::default()
            })
            .verify_order(order)
            .has_errors()
    }

    /// Lowers a link/compute fault onto a [`FaultEnv`] under the given
    /// loss-handling stance.
    fn env_for(&self, fault: &Fault, loss: ooo_netsim::commsim::LossHandling) -> FaultEnv {
        match fault {
            Fault::GpuStraggler {
                compute_factor,
                nic_factor,
            } => FaultEnv {
                compute_factor: *compute_factor,
                degrade_factor: *nic_factor,
                link_fault: LinkFault::none(),
                loss,
            },
            Fault::LinkDegradation { factor } => FaultEnv {
                compute_factor: 1.0,
                degrade_factor: *factor,
                link_fault: LinkFault::none(),
                loss,
            },
            Fault::LinkFlapping { windows, .. } => {
                let base = self.baseline_iter_ns as f64;
                let outages = windows
                    .iter()
                    .map(|&(s, d)| ((s * base) as SimTime, ((s + d) * base) as SimTime))
                    .collect();
                FaultEnv {
                    compute_factor: 1.0,
                    degrade_factor: 1.0,
                    link_fault: LinkFault {
                        degraded: Vec::new(),
                        outages,
                    },
                    loss,
                }
            }
            _ => FaultEnv::none(),
        }
    }

    /// Link/compute faults: run the data-parallel engine under the same
    /// fault trace with each stance. The policy decides the reverse
    /// first-k depth (stale vs retuned) and the loss handling.
    fn eval_datapar(
        &self,
        sc: &Scenario,
        policy: &dyn RecoveryPolicy,
    ) -> Result<ScenarioOutcome, String> {
        let run_with = |p: &dyn RecoveryPolicy| -> Result<(SimTime, usize, Timeline), String> {
            let env = self.env_for(&sc.fault, p.loss_handling());
            let fixed_k = if p.retunes_k() {
                None
            } else {
                Some(self.stale_k)
            };
            let (report, tl) = datapar::run_fault_injected(
                &self.model,
                BATCH,
                &self.gpu,
                &self.topology,
                GPUS,
                CommSystem::OooBytePS,
                &env,
                fixed_k,
            )
            .map_err(|e| format!("scenario {}: fault-injected run failed: {e}", sc.id))?;
            Ok((report.iter_ns, report.k, tl))
        };
        let (no_recovery_ns, stale_k, stale_tl) = run_with(&NoRecovery)?;
        let (retuned_ns, retuned_k, retuned_tl) = run_with(policy)?;
        // A retuning policy measures the candidate against the running
        // configuration and only switches when it improves.
        let (recovered_ns, recovered_k, timeline) = if retuned_ns <= no_recovery_ns {
            (retuned_ns, retuned_k, retuned_tl)
        } else {
            (no_recovery_ns, stale_k, stale_tl)
        };
        let order = reverse_first_k::<TableCost>(&self.graph, recovered_k, None)
            .map_err(|e| format!("scenario {}: schedule build failed: {e}", sc.id))?;
        Ok(ScenarioOutcome {
            id: sc.id,
            family: sc.fault.family(),
            detail: sc.fault.detail(),
            policy: policy.name(),
            baseline_ns: self.baseline_iter_ns,
            no_recovery_ns,
            recovered_ns,
            schedule_clean: self.order_is_clean(&order),
            timeline_valid: timeline.validate().is_ok(),
        })
    }

    /// Worker crash: a closed-form makespan model over the engine's
    /// measured iteration time. Without checkpoints the whole run is
    /// re-executed after the restart; with them the worker rolls back to
    /// the last checkpoint and re-executes at most `period - 1`
    /// iterations, paying the periodic checkpoint cost.
    fn eval_crash(
        &mut self,
        sc: &Scenario,
        policy: &dyn RecoveryPolicy,
    ) -> Result<ScenarioOutcome, String> {
        let Fault::WorkerCrash {
            total_iters,
            crash_iter,
            restart_ns,
            ..
        } = sc.fault
        else {
            return Err(format!("scenario {}: not a crash fault", sc.id));
        };
        // Alternate the engine the crash hits: even scenarios use the
        // data-parallel iteration time, odd ones the hybrid engine's.
        let iter = if (sc.id / 5).is_multiple_of(2) {
            self.baseline_iter_ns
        } else {
            self.hybrid_iter_ns()?
        };
        let total = total_iters as SimTime * iter;
        let makespan = |ckpt: Option<crate::recovery::Checkpointing>| -> SimTime {
            match ckpt {
                // Lost all progress: the crashed iteration count is
                // re-executed from scratch after the restart.
                None => (crash_iter as SimTime * iter)
                    .saturating_add(restart_ns)
                    .saturating_add(total),
                // Roll back to the last checkpoint: re-execute only the
                // iterations since it, plus the periodic write cost.
                Some(c) => {
                    let redo = (crash_iter % c.period_iters.max(1)) as SimTime * iter;
                    let writes = total_iters.div_ceil(c.period_iters.max(1)) as SimTime * c.cost_ns;
                    total
                        .saturating_add(redo)
                        .saturating_add(writes)
                        .saturating_add(restart_ns)
                }
            }
        };
        let no_recovery_ns = makespan(NoRecovery.checkpointing());
        let recovered_ns = makespan(policy.checkpointing());
        let timeline = crash_timeline(&sc.fault, iter, policy.checkpointing());
        // The running schedule is untouched by the crash; the invariant
        // is that the re-executed iterations reuse the verified order.
        let order = reverse_first_k::<TableCost>(&self.graph, self.stale_k, None)
            .map_err(|e| format!("scenario {}: schedule build failed: {e}", sc.id))?;
        Ok(ScenarioOutcome {
            id: sc.id,
            family: sc.fault.family(),
            detail: sc.fault.detail(),
            policy: policy.name(),
            baseline_ns: total,
            no_recovery_ns,
            recovered_ns,
            schedule_clean: self.order_is_clean(&order),
            timeline_valid: timeline.validate().is_ok(),
        })
    }

    /// Schedule corruption: the executed order violates the dependency
    /// graph. Without recovery the corrupted run completes, the silent
    /// corruption is noticed `detect_ns` later, and the backward pass is
    /// redone in order. With recovery the pre-run `ooo-verify` lint
    /// (cost `lint_ns`) flags the order and the job falls back to the
    /// in-order baseline immediately.
    fn eval_corruption(
        &self,
        sc: &Scenario,
        policy: &dyn RecoveryPolicy,
    ) -> Result<ScenarioOutcome, String> {
        let Fault::ScheduleCorruption { detect_ns, lint_ns } = sc.fault else {
            return Err(format!("scenario {}: not a corruption fault", sc.id));
        };
        let healthy = reverse_first_k::<TableCost>(&self.graph, self.stale_k, None)
            .map_err(|e| format!("scenario {}: schedule build failed: {e}", sc.id))?;
        // The corruption: rotate the order so the loss gradient runs
        // last — every other backward op now precedes its dependency.
        let mut corrupted = healthy.clone();
        corrupted.rotate_left(1);
        let fallback = reverse_first_k::<TableCost>(&self.graph, 0, None)
            .map_err(|e| format!("scenario {}: fallback build failed: {e}", sc.id))?;
        let sum =
            |order: &[Op]| -> SimTime { order.iter().map(|&op| self.cost.duration(op)).sum() };
        let t_healthy = sum(&healthy);
        let t_corrupt = sum(&corrupted);
        let t_inorder = sum(&fallback);
        let no_recovery_ns = t_corrupt
            .saturating_add(detect_ns)
            .saturating_add(t_inorder);
        let recovered_ns = if policy.falls_back_in_order() {
            lint_ns.saturating_add(t_inorder)
        } else {
            no_recovery_ns
        };
        // Invariant 1 for this family: the analyzer flags the corrupted
        // order AND passes the fallback the policy switches to.
        let schedule_clean = !self.order_is_clean(&corrupted) && self.order_is_clean(&fallback);
        let mut timeline = Timeline::new(format!("chaos/corruption/{}", sc.id));
        let lane = timeline.lane_mut("scheduler");
        lane.spans
            .push(Span::new("ooo-lint", CAT_STALL, 0, lint_ns));
        lane.spans.push(Span::new(
            "in-order backward",
            "compute",
            lint_ns,
            lint_ns.saturating_add(t_inorder),
        ));
        Ok(ScenarioOutcome {
            id: sc.id,
            family: sc.fault.family(),
            detail: sc.fault.detail(),
            policy: policy.name(),
            baseline_ns: t_healthy,
            no_recovery_ns,
            recovered_ns,
            schedule_clean,
            timeline_valid: timeline.validate().is_ok(),
        })
    }

    fn evaluate(&mut self, sc: &Scenario) -> Result<ScenarioOutcome, String> {
        let policy = policy_for(&sc.fault);
        match sc.fault {
            Fault::GpuStraggler { .. }
            | Fault::LinkDegradation { .. }
            | Fault::LinkFlapping { .. } => self.eval_datapar(sc, &*policy),
            Fault::WorkerCrash { .. } => self.eval_crash(sc, &*policy),
            Fault::ScheduleCorruption { .. } => self.eval_corruption(sc, &*policy),
        }
    }
}

/// A synthetic per-worker timeline of the recovered crash run:
/// iterations, periodic checkpoint writes, the restart stall, and the
/// rolled-back re-execution, laid out sequentially.
fn crash_timeline(
    fault: &Fault,
    iter: SimTime,
    ckpt: Option<crate::recovery::Checkpointing>,
) -> Timeline {
    let Fault::WorkerCrash {
        total_iters,
        crash_iter,
        restart_ns,
        ..
    } = *fault
    else {
        return Timeline::new("chaos/crash/invalid");
    };
    let mut tl = Timeline::new("chaos/crash");
    let lane = tl.lane_mut("worker0");
    let mut t: SimTime = 0;
    let mut push = |lane: &mut ooo_core::trace::Lane, name: String, cat: &str, dur: SimTime| {
        let end = t.saturating_add(dur);
        lane.spans.push(Span::new(name, cat, t, end));
        t = end;
    };
    let period = ckpt.map(|c| c.period_iters.max(1)).unwrap_or(usize::MAX);
    let rollback_to = if period == usize::MAX {
        0
    } else {
        crash_iter - crash_iter % period
    };
    for i in 0..crash_iter {
        push(lane, format!("iter {i}"), "compute", iter);
        if (i + 1) % period == 0 {
            if let Some(c) = ckpt {
                push(lane, format!("ckpt@{}", i + 1), "checkpoint", c.cost_ns);
            }
        }
    }
    push(lane, "restart".to_string(), CAT_STALL, restart_ns);
    for i in rollback_to..total_iters {
        push(lane, format!("iter {i}"), "compute", iter);
    }
    tl
}

/// Runs a full campaign: `count` scenarios generated from `seed`, each
/// evaluated with no recovery and with its matched policy.
///
/// # Errors
///
/// Returns a message when a simulator rejects the workload — never
/// panics.
pub fn run_campaign(seed: u64, count: usize) -> Result<CampaignReport, String> {
    let mut ctx = Ctx::new()?;
    let mut outcomes = Vec::with_capacity(count);
    for sc in generate(seed, count) {
        outcomes.push(ctx.evaluate(&sc)?);
    }
    Ok(CampaignReport {
        seed,
        baseline_iter_ns: ctx.baseline_iter_ns,
        stale_k: ctx.stale_k,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_and_invariants_hold() {
        let a = run_campaign(42, 5).expect("campaign runs");
        let b = run_campaign(42, 5).expect("campaign runs");
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        assert_eq!(a.outcomes.len(), 5);
        for o in &a.outcomes {
            assert!(
                o.invariants_ok(),
                "scenario {} ({}, {}) violated invariants: clean={} valid={} wins={} \
                 (no-rec {} vs recovered {})",
                o.id,
                o.family,
                o.detail,
                o.schedule_clean,
                o.timeline_valid,
                o.recovery_wins(),
                o.no_recovery_ns,
                o.recovered_ns,
            );
        }
        assert!(a.all_pass());
    }

    #[test]
    fn different_seeds_draw_different_magnitudes() {
        let a = generate(1, 5);
        let b = generate(2, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn crash_makespan_model_is_strictly_better_with_checkpoints() {
        let report = run_campaign(3, 10).expect("campaign runs");
        let crashes: Vec<_> = report
            .outcomes
            .iter()
            .filter(|o| o.family == "worker-crash")
            .collect();
        assert_eq!(crashes.len(), 2);
        for o in crashes {
            assert!(o.recovered_ns < o.no_recovery_ns);
            assert!(o.no_recovery_inflation() > 1.0);
        }
    }

    #[test]
    fn corruption_scenarios_flag_the_bad_order_and_pass_the_fallback() {
        let report = run_campaign(8, 5).expect("campaign runs");
        let o = report
            .outcomes
            .iter()
            .find(|o| o.family == "schedule-corruption")
            .expect("family present");
        assert!(o.schedule_clean, "corrupt flagged + fallback clean");
        assert!(o.recovery_wins());
    }
}
