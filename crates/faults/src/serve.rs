//! Deterministic traffic traces for the `ooo-serve` daemon.
//!
//! The chaos harness for the serving layer works at the protocol
//! level: a seeded generator produces a request stream mixing normal
//! work, duplicate requests (cache coalescing), hostile lines, fault
//! directives (`panic`/`flaky`/`kill`), zero-deadline timeouts, and —
//! when the pool geometry is known — a hold-gated overload block whose
//! queue overflow is exact. The conformance suite replays each trace
//! through the daemon twice and asserts the stream-level invariants:
//!
//! * one response per request line — none lost, none duplicated;
//! * every response is valid JSON with a recognized `status`;
//! * the two response streams are byte-identical.
//!
//! Everything here is derived from a seeded [`StdRng`], like the
//! simulator campaigns in [`crate::fault`]: same seed, same trace,
//! always.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pool geometry and mix switches for one generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of mixed-traffic request lines (before the optional
    /// overload block).
    pub len: usize,
    /// Daemon worker count (must match the serving config for the
    /// overload block to be exact).
    pub workers: usize,
    /// Daemon queue depth (same caveat).
    pub queue: usize,
    /// Append a hold-gated overload block: all workers held, the queue
    /// filled exactly, one request bounced with `overloaded`.
    pub overload: bool,
    /// Include fault directives (worker panic / flaky / kill) in the
    /// mix.
    pub chaos: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            len: 12,
            workers: 2,
            queue: 8,
            overload: false,
            chaos: true,
        }
    }
}

/// A generated request stream plus the bookkeeping the conformance
/// harness asserts against.
#[derive(Debug, Clone)]
pub struct ServeTrace {
    /// The generator seed.
    pub seed: u64,
    /// Request lines, newline-free (join with `\n`).
    pub lines: Vec<String>,
    /// The ids issued to well-formed requests, in order. Responses to
    /// these must come back exactly once each.
    pub ids: Vec<String>,
    /// Number of hostile lines: their responses echo `"id":null`.
    pub hostile: usize,
    /// Number of requests expected to answer `overloaded`, all from
    /// the overload block. Exact only when the daemon queue is at
    /// least as deep as the mixed prefix ([`TraceConfig::len`]) — the
    /// ungated prefix must never overflow on its own.
    pub expect_overloaded: usize,
}

impl ServeTrace {
    /// The full daemon input: one request per line, trailing newline.
    pub fn input(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    /// Total responses the daemon must emit for this trace.
    pub fn expected_responses(&self) -> usize {
        self.lines.len()
    }
}

/// Hostile lines: unparsable, structurally wrong, or over-limit — each
/// must draw a structured error, never a panic, and never desync the
/// one-response-per-line protocol.
const HOSTILE: [&str; 8] = [
    "",
    "not json at all",
    "[1,2,3]",
    "{\"cmd\":42}",
    "{\"cmd\":\"order\"}",
    "{\"cmd\":\"order\",\"layers\":0}",
    "{\"cmd\":\"order\",\"layers\":4,\"k\":99}",
    "{\"cmd\":\"pipeline\",\"layers\":4,\"devices\":2,\"strategy\":\"warp\"}",
];

const STRATEGIES: [&str; 4] = ["gpipe", "pipedream", "dapple", "pipe2"];
const TIERS: [&str; 3] = ["heuristic", "heuristic", "greedy"];

/// Generates the seeded request trace for `cfg`. Deterministic: the
/// same `(seed, cfg)` yields the same trace.
pub fn generate_trace(seed: u64, cfg: &TraceConfig) -> ServeTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e7e);
    let mut lines = Vec::new();
    let mut ids = Vec::new();
    let mut hostile = 0usize;
    let mut cacheable: Vec<String> = Vec::new();

    let push = |lines: &mut Vec<String>, ids: &mut Vec<String>, i: usize, body: String| {
        let id = format!("s{seed}-{i}");
        lines.push(format!("{{\"id\":\"{id}\",{body}}}"));
        ids.push(id);
    };

    for i in 0..cfg.len {
        match i % 8 {
            // Small order tunes at fast tiers.
            0 | 3 => {
                let layers = rng.gen_range(3..7usize);
                let k = rng.gen_range(0..=layers.min(2));
                let tier = TIERS[rng.gen_range(0..TIERS.len())];
                let body = format!(
                    "\"cmd\":\"order\",\"layers\":{layers},\"k\":{k},\"sync\":{},\"tier\":\"{tier}\"",
                    rng.gen_range(0..5usize)
                );
                cacheable.push(body.clone());
                push(&mut lines, &mut ids, i, body);
            }
            // Replay an earlier cacheable request under a fresh id:
            // byte-identical answer, whether hit, coalesced, or cold.
            1 => {
                let body = if cacheable.is_empty() {
                    "\"cmd\":\"order\",\"layers\":4,\"tier\":\"heuristic\"".to_string()
                } else {
                    cacheable[rng.gen_range(0..cacheable.len())].clone()
                };
                push(&mut lines, &mut ids, i, body);
            }
            // Exact certification of tiny graphs.
            2 => {
                let layers = rng.gen_range(3..5usize);
                let body = format!(
                    "\"cmd\":\"cert\",\"layers\":{layers},\"k\":{},\"sync\":{}",
                    rng.gen_range(0..2usize),
                    rng.gen_range(0..3usize)
                );
                push(&mut lines, &mut ids, i, body);
            }
            // Hostile input.
            4 => {
                lines.push(HOSTILE[rng.gen_range(0..HOSTILE.len())].to_string());
                hostile += 1;
            }
            // Fault directives (or more orders when chaos is off).
            5 => {
                let fault = if cfg.chaos {
                    ["flaky", "panic", "kill"][rng.gen_range(0..3)]
                } else {
                    ""
                };
                let mut body = format!(
                    "\"cmd\":\"order\",\"layers\":{},\"tier\":\"heuristic\"",
                    rng.gen_range(3..6usize)
                );
                if !fault.is_empty() {
                    body.push_str(&format!(",\"fault\":\"{fault}\""));
                }
                push(&mut lines, &mut ids, i, body);
            }
            // Deterministic timeout: an already-expired deadline.
            6 => {
                let body = format!(
                    "\"cmd\":\"order\",\"layers\":{},\"timeout_ms\":0",
                    rng.gen_range(3..6usize)
                );
                push(&mut lines, &mut ids, i, body);
            }
            // Pipeline tunes and stream statistics.
            _ => {
                if rng.gen_range(0..2) == 0 {
                    let body = format!(
                        "\"cmd\":\"pipeline\",\"layers\":4,\"devices\":2,\"strategy\":\"{}\",\"tier\":\"greedy\"",
                        STRATEGIES[rng.gen_range(0..STRATEGIES.len())]
                    );
                    push(&mut lines, &mut ids, i, body);
                } else {
                    push(&mut lines, &mut ids, i, "\"cmd\":\"stats\"".to_string());
                }
            }
        }
    }

    let mut expect_overloaded = 0;
    if cfg.overload {
        let base = cfg.len;
        let mut n = 0usize;
        // Park every worker; nothing dequeues until the release.
        for _ in 0..cfg.workers {
            push(
                &mut lines,
                &mut ids,
                base + n,
                "\"cmd\":\"hold\"".to_string(),
            );
            n += 1;
        }
        // Fill the queue exactly, then bounce two. Distinct parameters
        // keep these requests out of each other's cache entries, so
        // every one of them really occupies a queue slot.
        for j in 0..cfg.queue + 2 {
            push(
                &mut lines,
                &mut ids,
                base + n,
                format!(
                    "\"cmd\":\"order\",\"layers\":3,\"sync\":{},\"tier\":\"heuristic\"",
                    100 + j
                ),
            );
            n += 1;
        }
        expect_overloaded = 2;
        push(
            &mut lines,
            &mut ids,
            base + n,
            "\"cmd\":\"release\"".to_string(),
        );
    }

    ServeTrace {
        seed,
        lines,
        ids,
        hostile,
        expect_overloaded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_seed_deterministic() {
        let cfg = TraceConfig {
            overload: true,
            ..TraceConfig::default()
        };
        let a = generate_trace(7, &cfg);
        let b = generate_trace(7, &cfg);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.ids, b.ids);
        let c = generate_trace(8, &cfg);
        assert_ne!(a.lines, c.lines, "different seeds must differ");
    }

    #[test]
    fn bookkeeping_matches_the_lines() {
        let cfg = TraceConfig {
            len: 24,
            overload: true,
            ..TraceConfig::default()
        };
        let t = generate_trace(3, &cfg);
        assert_eq!(t.lines.len(), t.ids.len() + t.hostile);
        assert_eq!(t.expected_responses(), t.lines.len());
        assert_eq!(t.expect_overloaded, 2);
        // Ids are unique.
        let mut sorted = t.ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), t.ids.len());
        // The overload block is structured hold* compute* release.
        let tail = &t.lines[t.lines.len() - (cfg.workers + cfg.queue + 3)..];
        assert!(tail[..cfg.workers]
            .iter()
            .all(|l| l.contains("\"cmd\":\"hold\"")));
        assert!(tail.last().unwrap().contains("\"cmd\":\"release\""));
    }

    #[test]
    fn chaos_free_traces_carry_no_fault_directives() {
        let cfg = TraceConfig {
            len: 40,
            chaos: false,
            ..TraceConfig::default()
        };
        let t = generate_trace(11, &cfg);
        assert!(t.lines.iter().all(|l| !l.contains("\"fault\"")));
    }
}
