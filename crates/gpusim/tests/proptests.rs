//! Property-based tests of the GPU simulator's conservation laws.

use ooo_gpusim::engine::{Command, GpuSim, IssueMode, StreamSpec};
use ooo_gpusim::kernel::Kernel;
use ooo_gpusim::spec::GpuSpec;
use proptest::prelude::*;

fn spec(slots: u32, setup: u64) -> GpuSpec {
    GpuSpec {
        name: "prop",
        num_sms: slots,
        blocks_per_sm: 1,
        kernel_setup_ns: setup,
        relative_throughput: 1.0,
    }
}

fn kernels_strategy() -> impl Strategy<Value = Vec<Kernel>> {
    proptest::collection::vec((1u32..40, 1u64..500, 0u64..2_000), 1..12).prop_map(|ks| {
        ks.into_iter()
            .enumerate()
            .map(|(i, (blocks, bt, issue))| Kernel::new(&format!("k{i}"), blocks, bt, issue))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation: executed block-time never exceeds
    /// `slots x makespan`, and the makespan is at least the single-kernel
    /// maximum.
    #[test]
    fn work_conservation(kernels in kernels_strategy(), slots in 1u32..64) {
        let sim = GpuSim::new(spec(slots, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let cmds: Vec<Command> = kernels.iter().cloned().map(Command::Launch).collect();
        let trace = sim.run(vec![StreamSpec { priority: 0, commands: cmds }]).unwrap();
        let makespan = trace.makespan();
        let block_time: u64 = kernels.iter().map(|k| k.blocks as u64 * k.block_time_ns).sum();
        prop_assert!(block_time <= slots as u64 * makespan);
        let longest = kernels.iter().map(|k| k.isolated_exec_ns(slots)).max().unwrap_or(0);
        prop_assert!(makespan >= longest);
    }

    /// Single-stream kernels execute strictly in order and without
    /// overlap.
    #[test]
    fn single_stream_in_order(kernels in kernels_strategy(), setup in 0u64..3_000) {
        let sim = GpuSim::new(spec(16, setup), IssueMode::PreCompiled { launch_ns: 0 });
        let cmds: Vec<Command> = kernels.iter().cloned().map(Command::Launch).collect();
        let trace = sim.run(vec![StreamSpec { priority: 0, commands: cmds }]).unwrap();
        let mut recs = trace.records.clone();
        recs.sort_by_key(|r| r.exec_start);
        for w in recs.windows(2) {
            prop_assert!(w[0].exec_end <= w[1].exec_start);
            // Setup gap enforced between kernels.
            prop_assert!(w[1].exec_start - w[0].exec_end >= setup);
        }
    }

    /// Per-kernel issue can only delay execution relative to pre-compiled
    /// launch, never speed it up.
    #[test]
    fn issue_mode_monotone(kernels in kernels_strategy()) {
        let cmds = |ks: &[Kernel]| -> Vec<Command> {
            ks.iter().cloned().map(Command::Launch).collect()
        };
        let pre = GpuSim::new(spec(16, 0), IssueMode::PreCompiled { launch_ns: 0 })
            .run(vec![StreamSpec { priority: 0, commands: cmds(&kernels) }])
            .unwrap()
            .makespan();
        let per = GpuSim::new(spec(16, 0), IssueMode::PerKernel)
            .run(vec![StreamSpec { priority: 0, commands: cmds(&kernels) }])
            .unwrap()
            .makespan();
        prop_assert!(per >= pre, "per-kernel {per} < pre-compiled {pre}");
    }

    /// Two-stream co-run interference is bounded: fragmentation can make
    /// co-running slightly *slower* than sequential (which is exactly why
    /// Algorithm 1 profiles pairs before co-scheduling), but never by
    /// more than the low-priority stream's total per-block time; and the
    /// work bound always holds.
    #[test]
    fn co_run_bounds(a in kernels_strategy(), b in kernels_strategy(), slots in 4u32..64) {
        let gs = spec(slots, 0);
        let seq_cmds: Vec<Command> = a.iter().chain(&b).cloned().map(Command::Launch).collect();
        let seq = GpuSim::new(gs.clone(), IssueMode::PreCompiled { launch_ns: 0 })
            .run(vec![StreamSpec { priority: 0, commands: seq_cmds }])
            .unwrap()
            .makespan();
        let corun = GpuSim::new(gs, IssueMode::PreCompiled { launch_ns: 0 })
            .run(vec![
                StreamSpec { priority: 1, commands: a.iter().cloned().map(Command::Launch).collect() },
                StreamSpec { priority: 0, commands: b.iter().cloned().map(Command::Launch).collect() },
            ])
            .unwrap()
            .makespan();
        let b_interference: u64 = b.iter().map(|k| k.block_time_ns * k.blocks.div_ceil(slots) as u64).sum();
        prop_assert!(corun <= seq + b_interference, "corun {corun} > seq {seq} + {b_interference}");
        let block_time: u64 = a.iter().chain(&b).map(|k| k.blocks as u64 * k.block_time_ns).sum();
        prop_assert!(corun as u128 * slots as u128 >= block_time as u128);
    }

    /// Event-ordered pairs respect the recorded dependency.
    #[test]
    fn events_order_across_streams(
        blocks in 1u32..32,
        bt in 1u64..500,
    ) {
        let sim = GpuSim::new(spec(8, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![
                StreamSpec {
                    priority: 0,
                    commands: vec![
                        Command::Launch(Kernel::new("p", blocks, bt, 0)),
                        Command::RecordEvent(1),
                    ],
                },
                StreamSpec {
                    priority: 5,
                    commands: vec![
                        Command::WaitEvent(1),
                        Command::Launch(Kernel::new("c", blocks, bt, 0)),
                    ],
                },
            ])
            .unwrap();
        let p = trace.records.iter().find(|r| r.name == "p").unwrap();
        let c = trace.records.iter().find(|r| r.name == "c").unwrap();
        prop_assert!(c.exec_start >= p.exec_end);
    }
}
