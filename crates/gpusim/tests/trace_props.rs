//! Property tests of the unified timeline the GPU simulator emits.
//!
//! For arbitrary multi-stream workloads the rendered
//! [`ooo_core::trace::Timeline`] must be structurally well-formed
//! (ordered, non-overlapping per-lane spans), its per-lane busy time must
//! equal the kernel records' execution time, and the occupancy counter's
//! integral must equal the block-slot ledger's — the counters may never
//! disagree with the spans they summarize.

use ooo_core::trace::counter_integral;
use ooo_gpusim::engine::{Command, GpuSim, IssueMode, StreamSpec};
use ooo_gpusim::kernel::Kernel;
use ooo_gpusim::spec::GpuSpec;
use proptest::prelude::*;

fn spec(slots: u32, setup: u64) -> GpuSpec {
    GpuSpec {
        name: "prop",
        num_sms: slots,
        blocks_per_sm: 1,
        kernel_setup_ns: setup,
        relative_throughput: 1.0,
    }
}

fn streams_strategy() -> impl Strategy<Value = Vec<StreamSpec>> {
    proptest::collection::vec(
        (
            0i32..10,
            proptest::collection::vec((1u32..40, 1u64..500, 0u64..2_000), 1..8),
        ),
        1..4,
    )
    .prop_map(|streams| {
        streams
            .into_iter()
            .enumerate()
            .map(|(si, (priority, ks))| StreamSpec {
                priority,
                commands: ks
                    .into_iter()
                    .enumerate()
                    .map(|(i, (blocks, bt, issue))| {
                        Command::Launch(Kernel::new(&format!("s{si}k{i}"), blocks, bt, issue))
                    })
                    .collect(),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rendered timeline validates, covers every stream, and its
    /// per-lane busy time equals the per-stream execution time of the raw
    /// kernel records.
    #[test]
    fn timeline_is_well_formed(
        streams in streams_strategy(),
        slots in 4u32..64,
        setup in 0u64..2_000,
    ) {
        let n = streams.len();
        let sim = GpuSim::new(spec(slots, setup), IssueMode::PerKernel);
        let trace = sim.run(streams).unwrap();
        let tl = trace.to_timeline("prop");
        tl.validate().unwrap();
        let summary = tl.summarize();
        for si in 0..n {
            let lane = summary.lane(&format!("stream{si}")).unwrap();
            let exec: u64 = trace
                .records
                .iter()
                .filter(|r| r.stream == si)
                .map(|r| r.exec_end - r.exec_start)
                .sum();
            prop_assert_eq!(lane.busy_ns, exec, "stream {} busy mismatch", si);
            // Busy + stall tiles the lane up to its last span.
            let last_end = tl.lanes.iter().find(|l| l.name == format!("stream{si}"))
                .and_then(|l| l.spans.last().map(|s| s.end_ns)).unwrap_or(0);
            let first_start = tl.lanes.iter().find(|l| l.name == format!("stream{si}"))
                .and_then(|l| l.spans.first().map(|s| s.start_ns)).unwrap_or(0);
            prop_assert_eq!(lane.busy_ns + lane.stall_ns, last_end - first_start);
        }
    }

    /// The occupancy counter is consistent with the span/wave ledger: its
    /// integral equals total executed block-time, and it never exceeds the
    /// device's slot count.
    #[test]
    fn occupancy_counter_matches_wave_ledger(
        streams in streams_strategy(),
        slots in 4u32..64,
    ) {
        let sim = GpuSim::new(spec(slots, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim.run(streams).unwrap();
        let tl = trace.to_timeline("prop");
        let horizon = tl.horizon_ns();
        let counter = tl
            .counters
            .iter()
            .find(|c| c.name == "sm_slots_in_use")
            .unwrap();
        prop_assert!(counter.samples.iter().all(|&(_, v)| v <= slots as f64));
        let from_counter = counter_integral(counter, horizon);
        let from_waves: f64 = trace
            .waves
            .iter()
            .map(|w| w.blocks as f64 * (w.end - w.start) as f64)
            .sum();
        prop_assert!(
            (from_counter - from_waves).abs() < 1e-6 * from_waves.max(1.0),
            "counter integral {} != wave ledger {}",
            from_counter,
            from_waves
        );
    }

    /// Chrome-JSON round trip is the identity for simulator-produced
    /// timelines, not just hand-built ones.
    #[test]
    fn chrome_round_trip_preserves_simulator_output(
        streams in streams_strategy(),
    ) {
        let sim = GpuSim::new(spec(16, 100), IssueMode::PerKernel);
        let trace = sim.run(streams).unwrap();
        let tl = trace.to_timeline("prop");
        let back = ooo_core::trace::Timeline::from_chrome_json(&tl.to_chrome_json()).unwrap();
        prop_assert_eq!(tl, back);
    }
}
