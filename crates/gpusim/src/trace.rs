//! Simulation traces and derived utilization metrics.

use crate::SimTime;
use ooo_core::trace::{Counter, Span, Timeline, CAT_STALL};

/// One executed kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRecord {
    /// Kernel name.
    pub name: String,
    /// Stream index the kernel ran on.
    pub stream: usize,
    /// Thread blocks in the grid.
    pub blocks: u32,
    /// When the CPU finished issuing the kernel.
    pub issue_end: SimTime,
    /// First block launch.
    pub exec_start: SimTime,
    /// Last block completion.
    pub exec_end: SimTime,
}

impl KernelRecord {
    /// Kernel execution duration.
    pub fn exec_ns(&self) -> SimTime {
        self.exec_end - self.exec_start
    }
}

/// One block wave: a set of thread blocks of a kernel granted slots at
/// the same instant and completing together.
///
/// Waves of *different* kernels (or even of one kernel whose tail wave
/// co-runs with a later grant) may overlap in time; they are raw slot
/// ledger entries, not lane spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveRecord {
    /// Index into [`Trace::records`] of the kernel the wave belongs to.
    pub kernel: usize,
    /// Stream index the kernel ran on.
    pub stream: usize,
    /// Thread blocks in the wave.
    pub blocks: u32,
    /// When the wave's blocks were granted slots.
    pub start: SimTime,
    /// When the wave's blocks completed.
    pub end: SimTime,
}

/// A completed simulation run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Kernels sorted by `(exec_start, stream)`.
    pub records: Vec<KernelRecord>,
    /// Total block slots of the simulated GPU.
    pub slots: u32,
    /// Every block wave, sorted by `(start, stream)`; wave `kernel`
    /// indices point into [`Trace::records`].
    pub waves: Vec<WaveRecord>,
    /// `(time, block slots in use)` samples at every instant the in-use
    /// count changed — the SM occupancy counter.
    pub occupancy: Vec<(SimTime, u32)>,
}

impl Trace {
    /// Latest kernel completion.
    pub fn makespan(&self) -> SimTime {
        self.records.iter().map(|r| r.exec_end).max().unwrap_or(0)
    }

    /// Total time some kernel of `stream` was executing.
    pub fn stream_busy(&self, stream: usize) -> SimTime {
        let mut spans: Vec<(SimTime, SimTime)> = self
            .records
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| (r.exec_start, r.exec_end))
            .collect();
        spans.sort_unstable();
        let mut busy = 0;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (s, e) in spans {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    busy += ce - cs;
                    cur = Some((s, e));
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            busy += ce - cs;
        }
        busy
    }

    /// Total idle time between consecutive kernel executions on `stream`
    /// (the kernel issue/setup gaps visible in the paper's Figure 2).
    pub fn stream_gaps(&self, stream: usize) -> SimTime {
        let mut recs: Vec<&KernelRecord> =
            self.records.iter().filter(|r| r.stream == stream).collect();
        recs.sort_by_key(|r| r.exec_start);
        recs.windows(2)
            .map(|w| w[1].exec_start.saturating_sub(w[0].exec_end))
            .sum()
    }

    /// Mean SM occupancy over the makespan: executed block-time divided by
    /// `slots * makespan`, in `[0, 1]`. Block-time is approximated from
    /// each kernel's `blocks x (exec span / waves)` — exact when all of a
    /// kernel's blocks have equal duration, which the kernel model
    /// guarantees.
    pub fn mean_occupancy(&self) -> f64 {
        let m = self.makespan();
        if m == 0 || self.slots == 0 {
            return 0.0;
        }
        let block_time: f64 = self
            .records
            .iter()
            .map(|r| {
                let waves = r.blocks.div_ceil(self.slots).max(1) as f64;
                let per_block = r.exec_ns() as f64 / waves;
                per_block * r.blocks as f64
            })
            .sum();
        (block_time / (self.slots as f64 * m as f64)).min(1.0)
    }

    /// Renders the run as a structured [`Timeline`]: one `stream{i}` lane
    /// per stream with a span per kernel (annotated with its block and
    /// wave counts), explicit [`CAT_STALL`] spans filling every idle gap
    /// on each stream, and an `sm_slots_in_use` counter carrying the SM
    /// occupancy samples with the GPU's slot count as capacity.
    pub fn to_timeline(&self, name: &str) -> Timeline {
        let mut tl = Timeline::new(name);
        let max_stream = self.records.iter().map(|r| r.stream).max();
        if let Some(max_stream) = max_stream {
            for stream in 0..=max_stream {
                let lane = tl.lane_mut(&format!("stream{stream}"));
                let mut recs: Vec<(usize, &KernelRecord)> = self
                    .records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.stream == stream)
                    .collect();
                recs.sort_by_key(|(_, r)| r.exec_start);
                let mut prev_end: SimTime = 0;
                for (idx, r) in recs {
                    if r.exec_start > prev_end {
                        lane.spans
                            .push(Span::new("stall", CAT_STALL, prev_end, r.exec_start));
                    }
                    let mut span = Span::new(r.name.clone(), "kernel", r.exec_start, r.exec_end);
                    span.args.push(("blocks".into(), r.blocks as f64));
                    span.args.push((
                        "waves".into(),
                        self.waves.iter().filter(|w| w.kernel == idx).count() as f64,
                    ));
                    span.args.push(("issue_end_ns".into(), r.issue_end as f64));
                    lane.spans.push(span);
                    prev_end = prev_end.max(r.exec_end);
                }
            }
        }
        if !self.occupancy.is_empty() {
            tl.counters.push(Counter {
                name: "sm_slots_in_use".into(),
                capacity: Some(self.slots as f64),
                samples: self.occupancy.iter().map(|&(t, v)| (t, v as f64)).collect(),
            });
        }
        tl
    }

    /// Per-kernel `(issue overhead, execution time)` pairs in execution
    /// order — the data behind the paper's Figure 1. The issue overhead
    /// of a kernel is the time the GPU sat idle on its stream waiting for
    /// the kernel to become executable.
    pub fn issue_gap_vs_exec(&self, stream: usize) -> Vec<(String, SimTime, SimTime)> {
        let mut recs: Vec<&KernelRecord> =
            self.records.iter().filter(|r| r.stream == stream).collect();
        recs.sort_by_key(|r| r.exec_start);
        let mut out = Vec::with_capacity(recs.len());
        let mut prev_end = 0;
        for r in recs {
            let gap = r.exec_start.saturating_sub(prev_end);
            out.push((r.name.clone(), gap, r.exec_ns()));
            prev_end = r.exec_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, stream: usize, start: SimTime, end: SimTime) -> KernelRecord {
        KernelRecord {
            name: name.into(),
            stream,
            blocks: 1,
            issue_end: 0,
            exec_start: start,
            exec_end: end,
        }
    }

    #[test]
    fn makespan_and_busy() {
        let t = Trace {
            records: vec![rec("a", 0, 0, 10), rec("b", 0, 15, 25), rec("c", 1, 5, 30)],
            slots: 4,
            ..Trace::default()
        };
        assert_eq!(t.makespan(), 30);
        assert_eq!(t.stream_busy(0), 20);
        assert_eq!(t.stream_busy(1), 25);
        assert_eq!(t.stream_gaps(0), 5);
        assert_eq!(t.stream_gaps(1), 0);
    }

    #[test]
    fn overlapping_spans_merge_in_busy() {
        let t = Trace {
            records: vec![rec("a", 0, 0, 10), rec("b", 0, 5, 12)],
            slots: 1,
            ..Trace::default()
        };
        assert_eq!(t.stream_busy(0), 12);
    }

    #[test]
    fn issue_gap_series() {
        let t = Trace {
            records: vec![rec("a", 0, 2, 10), rec("b", 0, 14, 20)],
            slots: 1,
            ..Trace::default()
        };
        let s = t.issue_gap_vs_exec(0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], ("a".into(), 2, 8));
        assert_eq!(s[1], ("b".into(), 4, 6));
    }

    #[test]
    fn occupancy_bounds() {
        let mut r = rec("a", 0, 0, 10);
        r.blocks = 4;
        let t = Trace {
            records: vec![r],
            slots: 4,
            ..Trace::default()
        };
        assert!((t.mean_occupancy() - 1.0).abs() < 1e-9);
        let empty = Trace::default();
        assert_eq!(empty.mean_occupancy(), 0.0);
    }
}

/// Serializes the trace into the Chrome Trace Event format (the JSON
/// array flavour), loadable in `chrome://tracing` or Perfetto — each
/// stream becomes a track, each kernel a complete event. Written by hand
/// (the format is four fields per event) to avoid a JSON dependency.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    for (i, r) in trace.records.iter().enumerate() {
        let comma = if i + 1 == trace.records.len() {
            ""
        } else {
            ","
        };
        // Times in the chrome format are microseconds (floats allowed).
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"kernel\", \"ph\": \"X\", \"ts\": {:.3}, \
             \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \"args\": {{\"blocks\": {}, \"issue_end_us\": {:.3}}}}}{comma}\n",
            r.name.replace('"', "'"),
            r.exec_start as f64 / 1e3,
            r.exec_ns() as f64 / 1e3,
            r.stream,
            r.blocks,
            r.issue_end as f64 / 1e3,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod chrome_tests {
    use super::*;

    #[test]
    fn chrome_trace_is_wellformed() {
        let t = Trace {
            records: vec![KernelRecord {
                name: "conv\"x\"".into(),
                stream: 1,
                blocks: 7,
                issue_end: 500,
                exec_start: 1_000,
                exec_end: 3_000,
            }],
            slots: 4,
            ..Trace::default()
        };
        let json = to_chrome_trace(&t);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"dur\": 2.000"));
        // Quotes in kernel names are sanitized.
        assert!(!json.contains("conv\"x\""));
        assert!(json.contains("conv'x'"));
    }

    #[test]
    fn empty_trace_serializes() {
        assert_eq!(to_chrome_trace(&Trace::default()), "[\n]");
    }
}
