//! # ooo-gpusim — a discrete-event single-GPU simulator
//!
//! Models the GPU behaviours the paper's single-GPU analysis (Section 2)
//! rests on:
//!
//! - **Kernel issue overhead** — a CPU-side executor issues kernels
//!   sequentially, each issue costing wall-clock time; the GPU cannot
//!   start a kernel before it has been issued. When issue latency exceeds
//!   execution time the GPU starves (the paper's Figures 1–2).
//! - **Pre-compiled kernel issue** — CUDA-Graph-style launch replaces
//!   per-kernel issue costs with one small launch cost
//!   ([`engine::IssueMode::PreCompiled`]).
//! - **Kernel execution (setup) overhead** — a fixed 1–2 µs SM setup gap
//!   between kernel executions.
//! - **SM thread-block occupancy** — a kernel is a grid of thread blocks;
//!   the GPU runs at most `block_slots` blocks concurrently. Kernels with
//!   small grids underutilize the SMs, and the *tail wave* of any kernel
//!   leaves slots idle — idle capacity a lower-priority stream's blocks
//!   can fill, which is exactly the resource multi-stream out-of-order
//!   computation harvests.
//! - **Prioritized streams** — in-order command streams; free block slots
//!   go to the highest-priority stream with launchable blocks.
//! - **Events** — `record`/`wait` pairs enforce cross-stream dependencies
//!   (the paper uses NVIDIA's event APIs the same way).
//!
//! # Example
//!
//! ```
//! use ooo_gpusim::engine::{Command, GpuSim, IssueMode, StreamSpec};
//! use ooo_gpusim::kernel::Kernel;
//! use ooo_gpusim::spec::GpuSpec;
//!
//! let spec = GpuSpec::v100();
//! let stream = StreamSpec {
//!     priority: 0,
//!     commands: vec![Command::Launch(Kernel::new("conv", 448, 10_000, 20_000))],
//! };
//! let trace = GpuSim::new(spec, IssueMode::PerKernel).run(vec![stream]).unwrap();
//! assert_eq!(trace.records.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod kernel;
pub mod spec;
pub mod trace;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A wait refers to an event that no stream records.
    UnknownEvent(u32),
    /// The streams deadlock on events.
    Deadlock {
        /// The blocked `(stream index, event id)` waits forming the
        /// cycle — including a stream waiting on an event only it records
        /// later (a self-deadlock). Empty only when the engine hit its
        /// progress guard without identifying the blocked waits.
        waits: Vec<(usize, u32)>,
    },
    /// Invalid configuration (zero slots, empty kernel, ...).
    InvalidConfig(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownEvent(id) => write!(f, "wait on unrecorded event {id}"),
            Error::Deadlock { waits } if waits.is_empty() => {
                write!(f, "streams deadlocked on events")
            }
            Error::Deadlock { waits } => {
                write!(f, "streams deadlocked on events: ")?;
                for (i, (stream, event)) in waits.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "stream {stream} blocked on event {event}")?;
                }
                Ok(())
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
