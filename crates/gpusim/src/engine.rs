//! The discrete-event simulation engine.
//!
//! Streams are in-order command queues. A launch becomes *ready* once the
//! CPU executor has issued it, every preceding command on its stream has
//! completed, and the per-kernel setup gap has elapsed. Free block slots
//! are granted to the ready kernel of the highest-priority stream; a
//! kernel's tail wave therefore leaves slots that a lower-priority
//! stream's blocks fill immediately — the co-execution effect behind
//! multi-stream out-of-order computation.

use crate::kernel::Kernel;
use crate::spec::GpuSpec;
use crate::trace::{KernelRecord, Trace, WaveRecord};
use crate::{Error, Result, SimTime};
use std::collections::{BinaryHeap, HashMap};

/// The blocked event waits of every stalled stream — the evidence
/// reported by [`Error::Deadlock`].
fn blocked_waits(states: &[StreamState], recorded: &HashMap<u32, SimTime>) -> Vec<(usize, u32)> {
    states
        .iter()
        .enumerate()
        .filter_map(|(si, st)| match st.commands.get(st.cmd_idx) {
            Some(Command::WaitEvent(id)) if !recorded.contains_key(id) => Some((si, *id)),
            _ => None,
        })
        .collect()
}

/// One stream command.
#[derive(Debug, Clone)]
pub enum Command {
    /// Launch a kernel.
    Launch(Kernel),
    /// Record an event once all prior commands on this stream completed.
    RecordEvent(u32),
    /// Block the stream until the event has been recorded.
    WaitEvent(u32),
}

/// A stream with its scheduling priority (higher = preferred).
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream priority; the paper runs the main stream at high priority.
    pub priority: i32,
    /// Commands in issue order.
    pub commands: Vec<Command>,
}

/// How the CPU issues kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueMode {
    /// Each kernel launch costs its own `issue_ns` on a single CPU issue
    /// thread (TensorFlow-executor behaviour). Commands of different
    /// streams are issued round-robin by position.
    PerKernel,
    /// CUDA-Graph-style pre-compiled issue: the whole command set is
    /// launched at once for a single small cost.
    PreCompiled {
        /// Cost of launching the captured graph.
        launch_ns: SimTime,
    },
}

struct ActiveKernel {
    kernel_idx: usize, // index into trace records
    blocks_unlaunched: u32,
    blocks_inflight: u32,
    block_time: SimTime,
    ready_at: SimTime,
    started: Option<SimTime>,
}

struct StreamState {
    priority: i32,
    commands: Vec<Command>,
    issue_end: Vec<SimTime>,
    cmd_idx: usize,
    active: Option<ActiveKernel>,
}

/// A whole-device straggler fault: every block wave whose execution
/// starts inside `[start_ns, end_ns)` runs `factor`× slower (thermal
/// throttling, a noisy co-tenant, ECC scrubbing). A factor ≤ 1 or an
/// empty window injects nothing — the simulation is then bit-identical
/// to the fault-free run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// Multiplier on block execution time (effective only when > 1).
    pub factor: f64,
    /// Window start (inclusive).
    pub start_ns: SimTime,
    /// Window end (exclusive).
    pub end_ns: SimTime,
}

impl Slowdown {
    /// Slowdown factor in effect for a wave starting at `t`.
    pub fn factor_at(&self, t: SimTime) -> f64 {
        if self.start_ns <= t && t < self.end_ns && self.factor.is_finite() && self.factor > 1.0 {
            self.factor
        } else {
            1.0
        }
    }

    /// Whether this slowdown can perturb a simulation at all.
    pub fn is_noop(&self) -> bool {
        self.end_ns <= self.start_ns || self.factor <= 1.0 || !self.factor.is_finite()
    }
}

/// The simulator.
pub struct GpuSim {
    spec: GpuSpec,
    issue_mode: IssueMode,
    slowdown: Option<Slowdown>,
}

impl GpuSim {
    /// Creates a simulator for `spec` under `issue_mode`.
    pub fn new(spec: GpuSpec, issue_mode: IssueMode) -> Self {
        GpuSim {
            spec,
            issue_mode,
            slowdown: None,
        }
    }

    /// Injects a device [`Slowdown`] into every subsequent [`GpuSim::run`].
    pub fn with_slowdown(mut self, slowdown: Slowdown) -> Self {
        self.slowdown = Some(slowdown);
        self
    }

    /// Runs the streams to completion.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEvent`] for waits without a recorder,
    /// [`Error::Deadlock`] for cyclic event waits, and
    /// [`Error::InvalidConfig`] for a zero-slot GPU.
    pub fn run(&self, streams: Vec<StreamSpec>) -> Result<Trace> {
        if self.spec.block_slots() == 0 {
            return Err(Error::InvalidConfig("GPU has no block slots".into()));
        }
        // Validate event wiring.
        let recorded_ids: Vec<u32> = streams
            .iter()
            .flat_map(|s| s.commands.iter())
            .filter_map(|c| match c {
                Command::RecordEvent(id) => Some(*id),
                _ => None,
            })
            .collect();
        for s in &streams {
            for c in &s.commands {
                if let Command::WaitEvent(id) = c {
                    if !recorded_ids.contains(id) {
                        return Err(Error::UnknownEvent(*id));
                    }
                }
            }
        }

        // CPU issue times: round-robin across streams by position, one
        // issue thread, prefix-sum of per-kernel costs (or a single
        // graph-launch cost).
        let mut states: Vec<StreamState> = streams
            .into_iter()
            .map(|s| StreamState {
                priority: s.priority,
                issue_end: vec![0; s.commands.len()],
                commands: s.commands,
                cmd_idx: 0,
                active: None,
            })
            .collect();
        match self.issue_mode {
            IssueMode::PreCompiled { launch_ns } => {
                for st in &mut states {
                    for t in &mut st.issue_end {
                        *t = launch_ns;
                    }
                }
            }
            IssueMode::PerKernel => {
                let max_len = states.iter().map(|s| s.commands.len()).max().unwrap_or(0);
                let mut clock: SimTime = 0;
                for pos in 0..max_len {
                    for st in &mut states {
                        if let Some(cmd) = st.commands.get(pos) {
                            if let Command::Launch(k) = cmd {
                                clock += k.issue_ns;
                            }
                            st.issue_end[pos] = clock;
                        }
                    }
                }
            }
        }

        let slots_total = self.spec.block_slots();
        let mut slots_free = slots_total;
        let mut records: Vec<KernelRecord> = Vec::new();
        let mut waves: Vec<WaveRecord> = Vec::new();
        // `(time, slots in use)` samples, one per simulated instant at
        // which the in-use count changed.
        let mut occupancy: Vec<(SimTime, u32)> = Vec::new();
        let mut recorded: HashMap<u32, SimTime> = HashMap::new();
        // Completion events: (time, stream, blocks). Wakes: (time).
        let mut completions: BinaryHeap<std::cmp::Reverse<(SimTime, usize, u32)>> =
            BinaryHeap::new();
        let mut wakes: BinaryHeap<std::cmp::Reverse<SimTime>> = BinaryHeap::new();
        wakes.push(std::cmp::Reverse(0));

        let all_done = |states: &[StreamState]| {
            states
                .iter()
                .all(|s| s.cmd_idx == s.commands.len() && s.active.is_none())
        };

        // Allocation order: priority, stable by stream index. Stream
        // priorities are immutable for the whole run, so this is computed
        // once here instead of being re-sorted on every scheduling step.
        let mut alloc_order: Vec<usize> = (0..states.len()).collect();
        alloc_order.sort_by_key(|&i| (std::cmp::Reverse(states[i].priority), i));

        let mut guard = 0u64;
        while !all_done(&states) {
            guard += 1;
            if guard > 10_000_000 {
                return Err(Error::Deadlock {
                    waits: blocked_waits(&states, &recorded),
                });
            }
            // Next event time.
            let tc = completions.peek().map(|std::cmp::Reverse((t, _, _))| *t);
            let tw = wakes.peek().map(|std::cmp::Reverse(t)| *t);
            let t = match (tc, tw) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    return Err(Error::Deadlock {
                        waits: blocked_waits(&states, &recorded),
                    })
                }
            };
            while wakes.peek().is_some_and(|std::cmp::Reverse(w)| *w <= t) {
                wakes.pop();
            }
            // 1. Block completions at time t.
            while completions
                .peek()
                .is_some_and(|std::cmp::Reverse((ct, _, _))| *ct <= t)
            {
                let std::cmp::Reverse((_, si, n)) = completions.pop().expect("peeked");
                slots_free += n;
                let st = &mut states[si];
                let finished = {
                    let active = st
                        .active
                        .as_mut()
                        .expect("completion implies active kernel");
                    active.blocks_inflight -= n;
                    active.blocks_unlaunched == 0 && active.blocks_inflight == 0
                };
                if finished {
                    let active = st.active.take().expect("checked above");
                    records[active.kernel_idx].exec_end = t;
                    st.cmd_idx += 1;
                }
            }
            // 2. Advance stream commands and allocate slots; loop until a
            //    fixed point so same-instant record/wait chains resolve.
            loop {
                let mut changed = false;
                // Command advancement.
                #[allow(clippy::needless_range_loop)] // si is also stored in records
                for si in 0..states.len() {
                    let st = &mut states[si];
                    while st.active.is_none() && st.cmd_idx < st.commands.len() {
                        let idx = st.cmd_idx;
                        let issue_end = st.issue_end[idx];
                        match &st.commands[idx] {
                            Command::RecordEvent(id) => {
                                recorded.entry(*id).or_insert(t);
                                st.cmd_idx += 1;
                                changed = true;
                            }
                            Command::WaitEvent(id) => {
                                if recorded.get(id).is_some_and(|&rt| rt <= t) {
                                    st.cmd_idx += 1;
                                    changed = true;
                                } else {
                                    break;
                                }
                            }
                            Command::Launch(k) => {
                                if issue_end > t {
                                    wakes.push(std::cmp::Reverse(issue_end));
                                    break;
                                }
                                let kernel_idx = records.len();
                                records.push(KernelRecord {
                                    name: k.name.clone(),
                                    stream: si,
                                    blocks: k.blocks,
                                    issue_end,
                                    exec_start: 0,
                                    exec_end: 0,
                                });
                                st.active = Some(ActiveKernel {
                                    kernel_idx,
                                    blocks_unlaunched: k.blocks,
                                    blocks_inflight: 0,
                                    block_time: k.block_time_ns,
                                    ready_at: t.max(issue_end) + self.spec.kernel_setup_ns,
                                    started: None,
                                });
                                changed = true;
                                break;
                            }
                        }
                    }
                }
                // Slot allocation: priority order, stable by stream index.
                // A higher-priority kernel in its setup window *reserves*
                // the slots it is about to take: lower-priority streams
                // may only use capacity the higher streams genuinely
                // leave over (e.g. a tail wave), matching how the
                // hardware scheduler drains priority streams first.
                for &si in &alloc_order {
                    if slots_free == 0 {
                        break;
                    }
                    let Some(active) = states[si].active.as_mut() else {
                        continue;
                    };
                    if active.blocks_unlaunched == 0 {
                        continue;
                    }
                    if active.ready_at > t {
                        wakes.push(std::cmp::Reverse(active.ready_at));
                        // Reserve the remaining slots for this stream.
                        break;
                    }
                    let n = active.blocks_unlaunched.min(slots_free);
                    active.blocks_unlaunched -= n;
                    active.blocks_inflight += n;
                    slots_free -= n;
                    if active.started.is_none() {
                        active.started = Some(t);
                        records[active.kernel_idx].exec_start = t;
                    }
                    // Straggler injection: waves starting inside the
                    // slowdown window stretch; factor 1 leaves the
                    // arithmetic untouched for exact baseline replay.
                    let factor = self.slowdown.map_or(1.0, |s| s.factor_at(t));
                    let block_time = if factor > 1.0 {
                        (active.block_time as f64 * factor) as SimTime
                    } else {
                        active.block_time
                    };
                    waves.push(WaveRecord {
                        kernel: active.kernel_idx,
                        stream: si,
                        blocks: n,
                        start: t,
                        end: t + block_time,
                    });
                    completions.push(std::cmp::Reverse((t + block_time, si, n)));
                    changed = true;
                }
                if !changed {
                    break;
                }
            }
            let in_use = slots_total - slots_free;
            match occupancy.last_mut() {
                Some(last) if last.0 == t => last.1 = in_use,
                Some(last) if last.1 == in_use => {}
                _ => occupancy.push((t, in_use)),
            }
            if completions.is_empty() && wakes.is_empty() && !all_done(&states) {
                return Err(Error::Deadlock {
                    waits: blocked_waits(&states, &recorded),
                });
            }
        }

        // Records are reported sorted by `(exec_start, stream)`; remap the
        // wave records' kernel indices through the same permutation.
        let mut perm: Vec<usize> = (0..records.len()).collect();
        perm.sort_by_key(|&i| (records[i].exec_start, records[i].stream, i));
        let mut new_index = vec![0usize; records.len()];
        for (new, &old) in perm.iter().enumerate() {
            new_index[old] = new;
        }
        let records: Vec<KernelRecord> = perm.iter().map(|&i| records[i].clone()).collect();
        for w in &mut waves {
            w.kernel = new_index[w.kernel];
        }
        waves.sort_by_key(|w| (w.start, w.stream, w.kernel));
        Ok(Trace {
            records,
            slots: slots_total,
            waves,
            occupancy,
        })
    }
}

/// Measures the co-run speedup of running `sub` kernels on a low-priority
/// stream concurrently with `main` kernels, versus running everything
/// sequentially on one stream — the profiling step feeding the paper's
/// Algorithm 1.
///
/// Returns `(sequential_ns, corun_ns, speedup)`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn co_run_speedup(
    spec: &GpuSpec,
    main: &[Kernel],
    sub: &[Kernel],
) -> Result<(SimTime, SimTime, f64)> {
    let seq_cmds: Vec<Command> = main
        .iter()
        .chain(sub)
        .cloned()
        .map(Command::Launch)
        .collect();
    let seq = GpuSim::new(spec.clone(), IssueMode::PreCompiled { launch_ns: 0 }).run(vec![
        StreamSpec {
            priority: 0,
            commands: seq_cmds,
        },
    ])?;
    let corun = GpuSim::new(spec.clone(), IssueMode::PreCompiled { launch_ns: 0 }).run(vec![
        StreamSpec {
            priority: 1,
            commands: main.iter().cloned().map(Command::Launch).collect(),
        },
        StreamSpec {
            priority: 0,
            commands: sub.iter().cloned().map(Command::Launch).collect(),
        },
    ])?;
    let s = seq.makespan();
    let c = corun.makespan();
    let speedup = if c == 0 { 1.0 } else { s as f64 / c as f64 };
    Ok((s, c, speedup))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(slots: u32, setup: SimTime) -> GpuSpec {
        GpuSpec {
            name: "test",
            num_sms: slots,
            blocks_per_sm: 1,
            kernel_setup_ns: setup,
            relative_throughput: 1.0,
        }
    }

    fn launch(name: &str, blocks: u32, bt: SimTime, issue: SimTime) -> Command {
        Command::Launch(Kernel::new(name, blocks, bt, issue))
    }

    #[test]
    fn single_kernel_single_wave() {
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![StreamSpec {
                priority: 0,
                commands: vec![launch("k", 10, 100, 0)],
            }])
            .unwrap();
        assert_eq!(trace.makespan(), 100);
        assert_eq!(trace.records[0].exec_start, 0);
        assert_eq!(trace.records[0].exec_end, 100);
    }

    #[test]
    fn multi_wave_kernel() {
        let sim = GpuSim::new(tiny_spec(4, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![StreamSpec {
                priority: 0,
                commands: vec![launch("k", 10, 100, 0)],
            }])
            .unwrap();
        // Waves of 4, 4, 2 blocks.
        assert_eq!(trace.makespan(), 300);
    }

    #[test]
    fn setup_gap_between_kernels() {
        let sim = GpuSim::new(tiny_spec(10, 50), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![StreamSpec {
                priority: 0,
                commands: vec![launch("a", 10, 100, 0), launch("b", 10, 100, 0)],
            }])
            .unwrap();
        // a: setup 50 + 100; b: setup 50 + 100 after a.
        assert_eq!(trace.makespan(), 300);
        assert_eq!(trace.records[1].exec_start, 200);
    }

    #[test]
    fn issue_overhead_starves_gpu() {
        // Issue costs exceed execution: every kernel waits on the CPU.
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PerKernel);
        let cmds: Vec<Command> = (0..4)
            .map(|i| launch(&format!("k{i}"), 10, 100, 400))
            .collect();
        let trace = sim
            .run(vec![StreamSpec {
                priority: 0,
                commands: cmds,
            }])
            .unwrap();
        // Kernel i is issued at 400*(i+1); exec takes 100 after issue.
        assert_eq!(trace.records[3].exec_start, 1_600);
        assert_eq!(trace.makespan(), 1_700);
        // Pre-compiled issue removes the starvation.
        let sim2 = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 10 });
        let cmds: Vec<Command> = (0..4)
            .map(|i| launch(&format!("k{i}"), 10, 100, 400))
            .collect();
        let t2 = sim2
            .run(vec![StreamSpec {
                priority: 0,
                commands: cmds,
            }])
            .unwrap();
        assert_eq!(t2.makespan(), 410);
    }

    #[test]
    fn tail_wave_filled_by_low_priority_stream() {
        // Main kernel uses 6 of 10 slots; sub kernel's 4 blocks run
        // concurrently in the leftover slots.
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![
                StreamSpec {
                    priority: 1,
                    commands: vec![launch("main", 6, 100, 0)],
                },
                StreamSpec {
                    priority: 0,
                    commands: vec![launch("sub", 4, 100, 0)],
                },
            ])
            .unwrap();
        assert_eq!(trace.makespan(), 100, "full overlap expected");
    }

    #[test]
    fn priority_stream_gets_slots_first() {
        // Both streams want 10 slots on a 10-slot GPU: the high-priority
        // stream runs first.
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![
                StreamSpec {
                    priority: 0,
                    commands: vec![launch("low", 10, 100, 0)],
                },
                StreamSpec {
                    priority: 5,
                    commands: vec![launch("high", 10, 100, 0)],
                },
            ])
            .unwrap();
        let high = trace.records.iter().find(|r| r.name == "high").unwrap();
        let low = trace.records.iter().find(|r| r.name == "low").unwrap();
        assert!(high.exec_start < low.exec_start);
    }

    #[test]
    fn events_enforce_cross_stream_order() {
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![
                StreamSpec {
                    priority: 1,
                    commands: vec![launch("producer", 10, 100, 0), Command::RecordEvent(1)],
                },
                StreamSpec {
                    priority: 0,
                    commands: vec![Command::WaitEvent(1), launch("consumer", 10, 100, 0)],
                },
            ])
            .unwrap();
        let p = trace.records.iter().find(|r| r.name == "producer").unwrap();
        let c = trace.records.iter().find(|r| r.name == "consumer").unwrap();
        assert!(c.exec_start >= p.exec_end);
    }

    #[test]
    fn unknown_event_rejected() {
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let r = sim.run(vec![StreamSpec {
            priority: 0,
            commands: vec![Command::WaitEvent(9)],
        }]);
        assert_eq!(r.unwrap_err(), Error::UnknownEvent(9));
    }

    #[test]
    fn cyclic_waits_deadlock() {
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let r = sim.run(vec![
            StreamSpec {
                priority: 0,
                commands: vec![Command::WaitEvent(1), Command::RecordEvent(2)],
            },
            StreamSpec {
                priority: 0,
                commands: vec![Command::WaitEvent(2), Command::RecordEvent(1)],
            },
        ]);
        let err = r.unwrap_err();
        assert_eq!(
            err,
            Error::Deadlock {
                waits: vec![(0, 1), (1, 2)],
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("stream 0 blocked on event 1"), "{msg}");
        assert!(msg.contains("stream 1 blocked on event 2"), "{msg}");
    }

    #[test]
    fn same_stream_wait_before_record_reports_cycle() {
        // A stream waiting on an event that only it records *later* can
        // never make progress: the wait must fail with the same
        // cycle-reporting error as a cross-stream cycle, naming the
        // stream and event, rather than hanging or reporting a generic
        // stall.
        let sim = GpuSim::new(tiny_spec(10, 0), IssueMode::PreCompiled { launch_ns: 0 });
        let r = sim.run(vec![
            StreamSpec {
                priority: 0,
                commands: vec![launch("other", 4, 100, 0)],
            },
            StreamSpec {
                priority: 0,
                commands: vec![
                    Command::WaitEvent(7),
                    launch("gated", 4, 100, 0),
                    Command::RecordEvent(7),
                ],
            },
        ]);
        let err = r.unwrap_err();
        assert_eq!(
            err,
            Error::Deadlock {
                waits: vec![(1, 7)],
            }
        );
        assert!(err.to_string().contains("stream 1 blocked on event 7"));
    }

    #[test]
    fn timeline_occupancy_integral_matches_wave_ledger() {
        // Two streams with partial overlap: the occupancy counter's
        // integral over time must equal the total block·time booked in
        // the wave ledger (each in-use slot belongs to exactly one wave).
        let sim = GpuSim::new(tiny_spec(8, 10), IssueMode::PreCompiled { launch_ns: 0 });
        let trace = sim
            .run(vec![
                StreamSpec {
                    priority: 1,
                    commands: vec![launch("main1", 6, 100, 0), launch("main2", 12, 80, 0)],
                },
                StreamSpec {
                    priority: 0,
                    commands: vec![launch("sub", 5, 120, 0)],
                },
            ])
            .unwrap();
        let tl = trace.to_timeline("test");
        tl.validate().unwrap();
        let counter = &tl.counters[0];
        let integral = ooo_core::trace::counter_integral(counter, tl.horizon_ns());
        let wave_block_time: f64 = trace
            .waves
            .iter()
            .map(|w| w.blocks as f64 * (w.end - w.start) as f64)
            .sum();
        assert!(
            (integral - wave_block_time).abs() < 1e-6,
            "integral {integral} != wave ledger {wave_block_time}"
        );
        // Wave kernel indices survived the record sort.
        for w in &trace.waves {
            let r = &trace.records[w.kernel];
            assert_eq!(r.stream, w.stream);
            assert!(w.start >= r.exec_start && w.end <= r.exec_end);
        }
    }

    #[test]
    fn slowdown_window_stretches_covered_waves_only() {
        // Waves of 4/4/2 blocks at t=0/100/200 without fault. A 2×
        // slowdown over [90, 150) catches only the second wave.
        let streams = || {
            vec![StreamSpec {
                priority: 0,
                commands: vec![launch("k", 10, 100, 0)],
            }]
        };
        let base = GpuSim::new(tiny_spec(4, 0), IssueMode::PreCompiled { launch_ns: 0 })
            .run(streams())
            .unwrap();
        assert_eq!(base.makespan(), 300);
        let slow = GpuSim::new(tiny_spec(4, 0), IssueMode::PreCompiled { launch_ns: 0 })
            .with_slowdown(Slowdown {
                factor: 2.0,
                start_ns: 90,
                end_ns: 150,
            })
            .run(streams())
            .unwrap();
        // Second wave takes 200 ns; third starts at 300 and runs clean.
        assert_eq!(slow.makespan(), 400);
        let tl = slow.to_timeline("straggler");
        tl.validate().unwrap();
    }

    #[test]
    fn noop_slowdown_reproduces_baseline_exactly() {
        let streams = || {
            vec![
                StreamSpec {
                    priority: 1,
                    commands: vec![launch("main1", 6, 100, 0), launch("main2", 12, 80, 0)],
                },
                StreamSpec {
                    priority: 0,
                    commands: vec![launch("sub", 5, 120, 0)],
                },
            ]
        };
        let base = GpuSim::new(tiny_spec(8, 10), IssueMode::PreCompiled { launch_ns: 0 })
            .run(streams())
            .unwrap();
        for s in [
            Slowdown {
                factor: 1.0,
                start_ns: 0,
                end_ns: SimTime::MAX,
            },
            Slowdown {
                factor: 4.0,
                start_ns: 50,
                end_ns: 50,
            },
            Slowdown {
                factor: 0.25,
                start_ns: 0,
                end_ns: SimTime::MAX,
            },
        ] {
            assert!(s.is_noop());
            let faulted = GpuSim::new(tiny_spec(8, 10), IssueMode::PreCompiled { launch_ns: 0 })
                .with_slowdown(s)
                .run(streams())
                .unwrap();
            assert_eq!(base.waves, faulted.waves);
            assert_eq!(base.records, faulted.records);
            assert_eq!(base.occupancy, faulted.occupancy);
        }
    }

    #[test]
    fn co_run_speedup_detects_complementary_kernels() {
        let spec = tiny_spec(10, 0);
        // Main kernels underuse the GPU (4 of 10 slots); sub kernels fit
        // in the rest: near-2x from co-running.
        let main: Vec<Kernel> = (0..4)
            .map(|i| Kernel::new(&format!("m{i}"), 4, 100, 0))
            .collect();
        let sub: Vec<Kernel> = (0..4)
            .map(|i| Kernel::new(&format!("s{i}"), 4, 100, 0))
            .collect();
        let (seq, corun, speedup) = co_run_speedup(&spec, &main, &sub).unwrap();
        assert_eq!(seq, 800);
        assert_eq!(corun, 400);
        assert!((speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_kernels_gain_nothing_from_co_run() {
        let spec = tiny_spec(10, 0);
        let main: Vec<Kernel> = (0..3)
            .map(|i| Kernel::new(&format!("m{i}"), 10, 100, 0))
            .collect();
        let sub: Vec<Kernel> = (0..3)
            .map(|i| Kernel::new(&format!("s{i}"), 10, 100, 0))
            .collect();
        let (seq, corun, speedup) = co_run_speedup(&spec, &main, &sub).unwrap();
        assert_eq!(seq, corun);
        assert!((speedup - 1.0).abs() < 1e-9);
    }
}
