//! Kernel descriptions.

use crate::SimTime;

/// One GPU kernel: a grid of identical thread blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name (for traces).
    pub name: String,
    /// Number of thread blocks in the grid.
    pub blocks: u32,
    /// Execution time of one thread block, ns.
    pub block_time_ns: SimTime,
    /// CPU-side issue cost of this kernel, ns (only used in per-kernel
    /// issue mode).
    pub issue_ns: SimTime,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(name: &str, blocks: u32, block_time_ns: SimTime, issue_ns: SimTime) -> Self {
        Kernel {
            name: name.to_string(),
            blocks,
            block_time_ns,
            issue_ns,
        }
    }

    /// Isolated execution time on a GPU with `slots` concurrent block
    /// slots (full waves plus the tail wave), excluding setup.
    pub fn isolated_exec_ns(&self, slots: u32) -> SimTime {
        if self.blocks == 0 || slots == 0 {
            return 0;
        }
        let waves = self.blocks.div_ceil(slots) as SimTime;
        waves * self.block_time_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_exec_counts_waves() {
        let k = Kernel::new("k", 100, 10, 0);
        assert_eq!(k.isolated_exec_ns(100), 10);
        assert_eq!(k.isolated_exec_ns(50), 20);
        assert_eq!(k.isolated_exec_ns(99), 20); // tail wave of 1 block
        assert_eq!(k.isolated_exec_ns(0), 0);
        assert_eq!(Kernel::new("z", 0, 10, 0).isolated_exec_ns(10), 0);
    }
}
