//! GPU hardware specifications.

/// Static description of a GPU, reduced to the quantities the simulator
/// needs. The block-slot counts follow the paper's V100 observation that
/// the SMs can hold 1,520 thread blocks of the DenseBlock-4 weight
/// gradient kernels at once.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Resident thread blocks per SM (for the medium-sized blocks typical
    /// of DNN kernels).
    pub blocks_per_sm: u32,
    /// Fixed gap between kernel executions (SM setup), in ns — the paper
    /// measures 1–2 µs.
    pub kernel_setup_ns: u64,
    /// Relative compute throughput (V100 = 1.0); used by the model cost
    /// profiles to scale kernel times across GPUs.
    pub relative_throughput: f64,
}

impl GpuSpec {
    /// Total concurrently resident thread blocks.
    pub fn block_slots(&self) -> u32 {
        self.num_sms * self.blocks_per_sm
    }

    /// NVIDIA V100 (80 SMs; 1,520 block slots as measured in the paper).
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100",
            num_sms: 80,
            blocks_per_sm: 19,
            kernel_setup_ns: 1_500,
            relative_throughput: 1.0,
        }
    }

    /// NVIDIA P100.
    pub fn p100() -> Self {
        GpuSpec {
            name: "P100",
            num_sms: 56,
            blocks_per_sm: 16,
            kernel_setup_ns: 1_800,
            relative_throughput: 0.65,
        }
    }

    /// NVIDIA Titan XP.
    pub fn titan_xp() -> Self {
        GpuSpec {
            name: "TitanXP",
            num_sms: 30,
            blocks_per_sm: 16,
            kernel_setup_ns: 2_000,
            relative_throughput: 0.55,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_block_capacity() {
        // The paper: "the SMs are capable of running 1,520 of the thread
        // blocks" on V100.
        assert_eq!(GpuSpec::v100().block_slots(), 1_520);
    }

    #[test]
    fn throughput_ordering() {
        assert!(GpuSpec::v100().relative_throughput > GpuSpec::p100().relative_throughput);
        assert!(GpuSpec::p100().relative_throughput > GpuSpec::titan_xp().relative_throughput);
    }
}
