//! GPU hardware specifications, including heterogeneous worker fleets.

use ooo_core::datapar::SpeedFactor;

/// Static description of a GPU, reduced to the quantities the simulator
/// needs. The block-slot counts follow the paper's V100 observation that
/// the SMs can hold 1,520 thread blocks of the DenseBlock-4 weight
/// gradient kernels at once.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Resident thread blocks per SM (for the medium-sized blocks typical
    /// of DNN kernels).
    pub blocks_per_sm: u32,
    /// Fixed gap between kernel executions (SM setup), in ns — the paper
    /// measures 1–2 µs.
    pub kernel_setup_ns: u64,
    /// Relative compute throughput (V100 = 1.0); used by the model cost
    /// profiles to scale kernel times across GPUs.
    pub relative_throughput: f64,
}

impl GpuSpec {
    /// Total concurrently resident thread blocks.
    pub fn block_slots(&self) -> u32 {
        self.num_sms * self.blocks_per_sm
    }

    /// NVIDIA V100 (80 SMs; 1,520 block slots as measured in the paper).
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100",
            num_sms: 80,
            blocks_per_sm: 19,
            kernel_setup_ns: 1_500,
            relative_throughput: 1.0,
        }
    }

    /// NVIDIA P100.
    pub fn p100() -> Self {
        GpuSpec {
            name: "P100",
            num_sms: 56,
            blocks_per_sm: 16,
            kernel_setup_ns: 1_800,
            relative_throughput: 0.65,
        }
    }

    /// NVIDIA Titan XP.
    pub fn titan_xp() -> Self {
        GpuSpec {
            name: "TitanXP",
            num_sms: 30,
            blocks_per_sm: 16,
            kernel_setup_ns: 2_000,
            relative_throughput: 0.55,
        }
    }
}

/// One worker of a (possibly heterogeneous) data-parallel fleet: a GPU
/// model plus a per-worker [`SpeedFactor`] on top of it. The factor
/// models everything the spec does not — thermal throttling, a shared
/// host, an older board revision — and is what the heterogeneous
/// cluster engines and the tournament bench exercise.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// The GPU model of this worker.
    pub gpu: GpuSpec,
    /// Per-worker slowdown on top of the model's nominal speed.
    pub speed: SpeedFactor,
}

impl WorkerSpec {
    /// A nominal-speed worker.
    pub fn nominal(gpu: GpuSpec) -> Self {
        WorkerSpec {
            gpu,
            speed: SpeedFactor::UNIT,
        }
    }
}

/// A data-parallel fleet with per-worker speed factors.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerFleet {
    /// The fleet members, worker 0 first.
    pub workers: Vec<WorkerSpec>,
}

impl WorkerFleet {
    /// A homogeneous fleet: `n` nominal-speed copies of `gpu`.
    pub fn homogeneous(gpu: GpuSpec, n: usize) -> Self {
        WorkerFleet {
            workers: vec![WorkerSpec::nominal(gpu); n],
        }
    }

    /// A fleet of one GPU model with explicit per-worker speed factors.
    pub fn with_speeds(gpu: GpuSpec, percents: &[u32]) -> Self {
        WorkerFleet {
            workers: percents
                .iter()
                .map(|&p| WorkerSpec {
                    gpu: gpu.clone(),
                    speed: SpeedFactor::percent(p),
                })
                .collect(),
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the fleet has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The per-worker speed factors in worker order — the argument the
    /// heterogeneous data-parallel simulator takes.
    pub fn speed_factors(&self) -> Vec<SpeedFactor> {
        self.workers.iter().map(|w| w.speed).collect()
    }

    /// Whether every worker runs at nominal speed (the homogeneous case,
    /// which must reproduce the non-fleet code paths byte for byte).
    pub fn is_uniform(&self) -> bool {
        self.workers.iter().all(|w| w.speed.is_unit())
    }

    /// The slowest worker's factor — the fleet bottleneck that gates
    /// every synchronous all-reduce barrier.
    pub fn bottleneck(&self) -> SpeedFactor {
        self.workers
            .iter()
            .map(|w| w.speed)
            .max()
            .unwrap_or(SpeedFactor::UNIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_bottleneck_and_uniformity() {
        let uniform = WorkerFleet::homogeneous(GpuSpec::v100(), 4);
        assert!(uniform.is_uniform());
        assert_eq!(uniform.bottleneck(), SpeedFactor::UNIT);
        let mixed = WorkerFleet::with_speeds(GpuSpec::v100(), &[100, 110, 150, 125]);
        assert!(!mixed.is_uniform());
        assert_eq!(mixed.bottleneck(), SpeedFactor::percent(150));
        assert_eq!(mixed.len(), 4);
        assert_eq!(mixed.speed_factors()[2], SpeedFactor::percent(150));
    }

    #[test]
    fn speed_factor_scaling_is_exact_and_conservative() {
        assert_eq!(SpeedFactor::UNIT.scale(12_345), 12_345);
        assert_eq!(SpeedFactor::percent(150).scale(100), 150);
        // Rounds up: a slow worker is never optimistically fast.
        assert_eq!(SpeedFactor::percent(150).scale(1), 2);
        assert_eq!(SpeedFactor::percent(125).scale(10), 13);
    }

    #[test]
    fn v100_matches_paper_block_capacity() {
        // The paper: "the SMs are capable of running 1,520 of the thread
        // blocks" on V100.
        assert_eq!(GpuSpec::v100().block_slots(), 1_520);
    }

    #[test]
    fn throughput_ordering() {
        assert!(GpuSpec::v100().relative_throughput > GpuSpec::p100().relative_throughput);
        assert!(GpuSpec::p100().relative_throughput > GpuSpec::titan_xp().relative_throughput);
    }
}
