//! `ooo-serve` — the fault-tolerant scheduling daemon.
//!
//! ```text
//! ooo-serve --daemon  [--workers N] [--queue N] [--cache N] [--retries N]
//!                     [--max-request-bytes N] [--max-layers N]
//!                     [--degrade-hot N] [--socket PATH]
//! ooo-serve --oneshot [same flags]
//! ```
//!
//! `--daemon` reads line-delimited JSON requests from stdin until EOF
//! and writes one response line per request to stdout, in request
//! order (see `ooo_serve::protocol` for the wire format). With
//! `--socket PATH` it listens on a Unix socket instead, serving
//! connections one at a time. `--oneshot` serves exactly one request
//! from stdin and exits `0` when the response status is `ok`, `1` on
//! any other status (error, unsafe, timeout, overloaded), `2` on usage
//! errors — the same contract as the one-shot CLIs.

use ooo_serve::{serve, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

const USAGE: &str = "usage: ooo-serve --daemon  [--workers N] [--queue N] [--cache N] \
                     [--retries N] [--max-request-bytes N] [--max-layers N] \
                     [--degrade-hot N] [--socket PATH]\n\
                     \x20      ooo-serve --oneshot [same flags]";

enum Mode {
    Daemon,
    Oneshot,
}

struct Args {
    mode: Mode,
    config: ServeConfig,
    socket: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next();
    let mut mode = None;
    let mut config = ServeConfig::default();
    let mut socket = None;
    let next_num = |argv: &mut std::env::Args, flag: &str| -> Result<usize, String> {
        argv.next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?
            .parse::<usize>()
            .map_err(|_| format!("{flag} needs a non-negative integer\n{USAGE}"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--daemon" => mode = Some(Mode::Daemon),
            "--oneshot" => mode = Some(Mode::Oneshot),
            "--workers" => config.workers = next_num(&mut argv, "--workers")?.max(1),
            "--queue" => config.queue = next_num(&mut argv, "--queue")?.max(1),
            "--cache" => config.cache = next_num(&mut argv, "--cache")?,
            "--retries" => config.retries = next_num(&mut argv, "--retries")? as u32,
            "--max-request-bytes" => {
                config.limits.max_request_bytes = next_num(&mut argv, "--max-request-bytes")?
            }
            "--max-layers" => config.limits.max_layers = next_num(&mut argv, "--max-layers")?,
            "--degrade-hot" => config.degrade_hot = Some(next_num(&mut argv, "--degrade-hot")?),
            "--socket" => {
                socket = Some(
                    argv.next()
                        .ok_or_else(|| format!("--socket needs a path\n{USAGE}"))?,
                )
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let mode = mode.ok_or_else(|| USAGE.to_string())?;
    if socket.is_some() && matches!(mode, Mode::Oneshot) {
        return Err(format!("--socket only applies to --daemon\n{USAGE}"));
    }
    Ok(Args {
        mode,
        config,
        socket,
    })
}

/// Serves stdin to stdout until EOF; used by both modes (oneshot
/// simply truncates the input to its first line).
fn serve_stdio(config: &ServeConfig, oneshot: bool) -> std::io::Result<ExitCode> {
    let stdin = std::io::stdin();
    // `StdoutLock` is not `Send` (the writer runs on its own thread),
    // so buffer over the `Send` handle instead.
    let mut out = std::io::BufWriter::new(std::io::stdout());
    let summary = if oneshot {
        let mut line = String::new();
        stdin.lock().read_line(&mut line)?;
        serve(std::io::Cursor::new(line.into_bytes()), &mut out, config)?
    } else {
        serve(stdin.lock(), &mut out, config)?
    };
    out.flush()?;
    if oneshot {
        Ok(
            if summary.responses == summary.ok && summary.responses > 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            },
        )
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

#[cfg(unix)]
fn serve_socket(config: &ServeConfig, path: &str) -> std::io::Result<ExitCode> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        // A connection-level I/O failure drops that client only.
        let _ = serve(reader, &mut writer, config);
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(not(unix))]
fn serve_socket(_config: &ServeConfig, _path: &str) -> std::io::Result<ExitCode> {
    Err(std::io::Error::other("--socket requires a unix platform"))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match (&args.mode, &args.socket) {
        (Mode::Daemon, Some(path)) => serve_socket(&args.config, path),
        (Mode::Daemon, None) => serve_stdio(&args.config, false),
        (Mode::Oneshot, _) => serve_stdio(&args.config, true),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ooo-serve: {e}");
            ExitCode::from(2)
        }
    }
}
