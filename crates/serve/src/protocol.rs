//! The line-delimited JSON request/response protocol.
//!
//! One request per input line, one response per input line, always.
//! A request is a JSON object:
//!
//! ```json
//! {"id": 7, "cmd": "order", "layers": 8, "k": 2, "sync": 3}
//! ```
//!
//! `cmd` selects the work: the compute commands `order`, `bundle`,
//! `pipeline`, and `cert` mirror the one-shot CLIs, while the control
//! commands `hold`, `release`, and `stats` exist for deterministic
//! testing and introspection. Common optional fields:
//!
//! - `id` — any JSON value, echoed verbatim in the response (`null`
//!   when absent). The daemon never interprets it.
//! - `budget` — logical work budget (tuner neighborhood scans /
//!   branch-and-bound nodes). Deterministic: same budget, same result.
//! - `timeout_ms` — wall-clock deadline from admission; expired
//!   requests answer `{"status":"timeout"}` without starting, and
//!   in-flight work past the deadline returns best-so-far.
//! - `tier` — explicit degradation tier (`full` / `greedy` /
//!   `heuristic`), overriding the budget- and load-based selection.
//! - `memory_cap_bytes` — static-ledger peak cap for the tuning
//!   commands: the search minimizes makespan subject to
//!   `peak <= cap` ([`ooo_tune::TuneOptions::memory_cap`]) and the
//!   response reports the winner's exact peak. Ignored by `cert`.
//! - `fault` — deterministic fault injection for the chaos harness:
//!   `panic` (worker panics on every attempt), `flaky` (panics on the
//!   first attempt, succeeds on retry), `kill` (worker thread dies
//!   after answering; the pool respawns it).
//!
//! Responses are single-line objects led by `id` then `status`:
//! `ok`, `error`, `unsafe`, `timeout`, or `overloaded`.

use ooo_core::datapar::CommPolicy;
use ooo_core::export::ScheduleBundle;
use ooo_core::json::{ParseLimits, Value};
use ooo_core::pipeline::Strategy;
use ooo_core::SimTime;

/// Per-request resource limits, enforced during admission — the byte
/// cap before the line is even buffered, the structural caps while
/// parsing, the layer cap before any graph is allocated.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request line length in bytes.
    pub max_request_bytes: usize,
    /// Maximum layer count any request may name.
    pub max_layers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_bytes: 1 << 20,
            max_layers: 4096,
        }
    }
}

impl Limits {
    /// The JSON parser limits implied by the request limits.
    pub fn parse_limits(&self) -> ParseLimits {
        ParseLimits {
            max_bytes: self.max_request_bytes,
            ..ParseLimits::default()
        }
    }
}

/// Degradation tier of one request: what the service still promises
/// when deadlines shrink or the queue is hot. Every tier returns a
/// valid, certified schedule — only the search effort degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Full tuning: greedy descent plus seeded restarts.
    Full,
    /// Greedy-only: descent without restarts.
    Greedy,
    /// Heuristic-only: the paper's heuristic baseline, certified but
    /// not searched (a zero-scan tune).
    Heuristic,
}

impl Tier {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Greedy => "greedy",
            Tier::Heuristic => "heuristic",
        }
    }

    /// One tier down (saturating): the degradation step applied when
    /// the queue is hot.
    pub fn degraded(self) -> Tier {
        match self {
            Tier::Full => Tier::Greedy,
            Tier::Greedy | Tier::Heuristic => Tier::Heuristic,
        }
    }
}

/// Deterministic fault directives for the chaos harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// The worker panics on every attempt; retries exhaust and the
    /// request answers a structured error.
    Panic,
    /// The worker panics on the first attempt only — proves the
    /// retry-with-backoff path end to end.
    Flaky,
    /// The worker thread exits after answering; the pool respawns a
    /// replacement at the next admission.
    Kill,
}

/// A parsed compute or control command.
#[derive(Debug, Clone)]
pub enum Command {
    /// Tune a reverse-first-k backward order (mirrors `ooo-tune order`).
    Order {
        /// Layer count of the data-parallel graph.
        layers: usize,
        /// Initial reverse-first-k depth.
        k: usize,
        /// `S[dW]` duration under the uniform cost table.
        sync: SimTime,
        /// Link service policy.
        policy: CommPolicy,
    },
    /// Tune every order/schedule of an inline bundle (mirrors
    /// `ooo-tune bundle`, except the bundle travels in the request).
    Bundle {
        /// The parsed bundle.
        bundle: ScheduleBundle,
        /// Optional single order/schedule name to tune.
        schedule: Option<String>,
        /// Link service policy for data-parallel orders.
        policy: CommPolicy,
        /// Canonical compact encoding of the bundle (cache keying).
        canonical: String,
    },
    /// Tune a pipeline strategy (mirrors `ooo-tune pipeline`).
    Pipeline {
        /// Layer count.
        layers: usize,
        /// Device count.
        devices: usize,
        /// Pipeline strategy.
        strategy: Strategy,
        /// Modulo allocation group.
        group: usize,
    },
    /// Exact optimality certification of a reverse-first-k realization
    /// (mirrors `ooo-cert order`).
    Cert {
        /// Layer count of the data-parallel graph.
        layers: usize,
        /// Reverse-first-k depth.
        k: usize,
        /// `S[dW]` duration under the uniform cost table.
        sync: SimTime,
        /// Link service policy.
        policy: CommPolicy,
    },
    /// Control: occupy one worker until `release` (deterministic
    /// overload testing). Acked with `{"held":true}`.
    Hold,
    /// Control: release every held worker. Handled inline by the
    /// admission loop, so it cannot be stuck behind a full queue.
    Release,
    /// Control: response-stream counters as of this response's
    /// position in the stream (deterministic by construction).
    Stats,
}

/// A fully parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim into the response.
    pub id: Value,
    /// The command.
    pub cmd: Command,
    /// Logical work budget.
    pub budget: Option<u64>,
    /// Wall-clock deadline in milliseconds from admission.
    pub timeout_ms: Option<u64>,
    /// Explicit tier override.
    pub tier: Option<Tier>,
    /// Deterministic fault injection.
    pub fault: Option<FaultDirective>,
    /// Static-ledger peak cap in bytes for the tuning commands.
    pub memory_cap: Option<u64>,
}

/// Response status, used for exit codes and stream statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was served.
    Ok,
    /// Malformed request, limit violation, or worker failure.
    Error,
    /// The input schedule failed the safety gate.
    Unsafe,
    /// The request's deadline expired before it could start.
    Timeout,
    /// The bounded queue was full: explicit backpressure.
    Overloaded,
}

impl Status {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Error => "error",
            Status::Unsafe => "unsafe",
            Status::Timeout => "timeout",
            Status::Overloaded => "overloaded",
        }
    }
}

/// The id-independent part of one response: the status plus the
/// compact serialization of the response object *without* its `id`
/// field. Identical payloads render to byte-identical lines for any
/// fixed id — which is what makes cache hits indistinguishable from
/// cold misses on the wire.
#[derive(Debug, Clone)]
pub struct Payload {
    /// Status, for statistics and oneshot exit codes.
    pub status: Status,
    /// `{"status":...}` — compact JSON without the `id` field.
    pub body: String,
}

impl Payload {
    /// Builds a payload from `(key, value)` pairs; `status` is always
    /// serialized first.
    pub fn new<const N: usize>(status: Status, fields: [(&str, Value); N]) -> Payload {
        let mut pairs = vec![(
            "status".to_string(),
            Value::Str(status.as_str().to_string()),
        )];
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        Payload {
            status,
            body: Value::Obj(pairs).to_compact(),
        }
    }

    /// A bare-status payload.
    pub fn status_only(status: Status) -> Payload {
        Payload::new(status, [])
    }

    /// A structured error.
    pub fn error(message: impl Into<String>) -> Payload {
        Payload::new(Status::Error, [("error", Value::Str(message.into()))])
    }

    /// Renders the full response line for `id` (no trailing newline).
    pub fn render(&self, id: &Value) -> String {
        debug_assert!(self.body.starts_with('{') && self.body.len() > 2);
        format!("{{\"id\":{},{}", id.to_compact(), &self.body[1..])
    }
}

fn policy_of(v: Option<&Value>) -> Result<CommPolicy, String> {
    match v {
        None => Ok(CommPolicy::PriorityByLayer),
        Some(Value::Str(s)) => match s.as_str() {
            "fifo" => Ok(CommPolicy::FifoCompletion),
            "bylayer" => Ok(CommPolicy::PriorityByLayer),
            other => Err(format!("unknown policy: {other:?}")),
        },
        Some(_) => Err("policy must be a string".to_string()),
    }
}

fn policy_name(policy: CommPolicy) -> &'static str {
    match policy {
        CommPolicy::FifoCompletion => "fifo",
        CommPolicy::PriorityByLayer => "bylayer",
    }
}

fn strategy_of(v: Option<&Value>) -> Result<Strategy, String> {
    let Some(Value::Str(s)) = v else {
        return Err("pipeline requests need a string \"strategy\"".to_string());
    };
    Ok(match s.as_str() {
        "mp" | "modelparallel" => Strategy::ModelParallel,
        "gpipe" => Strategy::GPipe,
        "pipedream" => Strategy::PipeDream,
        "dapple" => Strategy::Dapple,
        "megatron" => Strategy::MegatronInterleaved { chunks: 2 },
        "pipe1" => Strategy::OooPipe1,
        "pipe2" => Strategy::OooPipe2,
        other => return Err(format!("unknown strategy: {other:?}")),
    })
}

/// Stable wire name of a strategy (inverse of the parser).
pub fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::ModelParallel => "mp",
        Strategy::GPipe => "gpipe",
        Strategy::PipeDream => "pipedream",
        Strategy::Dapple => "dapple",
        Strategy::MegatronInterleaved { .. } => "megatron",
        Strategy::OooPipe1 => "pipe1",
        Strategy::OooPipe2 => "pipe2",
    }
}

fn usize_field(v: &Value, key: &str, default: Option<usize>, max: usize) -> Result<usize, String> {
    match v.get(key) {
        None => default.ok_or_else(|| format!("missing required field {key:?}")),
        Some(n) => {
            let n = n
                .as_usize()
                .ok_or_else(|| format!("{key} must be a non-negative integer"))?;
            if n > max {
                return Err(format!("{key} is {n}, above the limit of {max}"));
            }
            Ok(n)
        }
    }
}

fn u64_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

/// Parses one request line under `limits`.
///
/// # Errors
///
/// A human-readable message destined for a structured `error`
/// response; parsing never panics on hostile input.
pub fn parse_request(line: &str, limits: &Limits) -> Result<Request, String> {
    let v = Value::parse_with_limits(line, &limits.parse_limits())
        .map_err(|e| format!("bad request: {e}"))?;
    if v.as_obj().is_none() {
        return Err("bad request: a request must be a JSON object".to_string());
    }
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let cmd_name = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "bad request: missing string \"cmd\"".to_string())?;

    let tier = match v.get("tier") {
        None => None,
        Some(Value::Str(s)) => Some(match s.as_str() {
            "full" => Tier::Full,
            "greedy" => Tier::Greedy,
            "heuristic" => Tier::Heuristic,
            other => return Err(format!("unknown tier: {other:?}")),
        }),
        Some(_) => return Err("tier must be a string".to_string()),
    };
    let fault = match v.get("fault") {
        None => None,
        Some(Value::Str(s)) => Some(match s.as_str() {
            "panic" => FaultDirective::Panic,
            "flaky" => FaultDirective::Flaky,
            "kill" => FaultDirective::Kill,
            other => return Err(format!("unknown fault directive: {other:?}")),
        }),
        Some(_) => return Err("fault must be a string".to_string()),
    };

    let cmd = match cmd_name {
        "order" | "cert" => {
            let layers = usize_field(&v, "layers", None, limits.max_layers)?;
            if layers == 0 {
                return Err("layers must be at least 1".to_string());
            }
            let k = usize_field(&v, "k", Some(0), limits.max_layers)?;
            if k > layers {
                return Err(format!("k is {k}, above layers {layers}"));
            }
            let sync = usize_field(&v, "sync", Some(3), 1 << 20)? as SimTime;
            let policy = policy_of(v.get("policy"))?;
            if cmd_name == "order" {
                Command::Order {
                    layers,
                    k,
                    sync,
                    policy,
                }
            } else {
                Command::Cert {
                    layers,
                    k,
                    sync,
                    policy,
                }
            }
        }
        "bundle" => {
            let inline = v
                .get("bundle")
                .ok_or_else(|| "bundle requests need an inline \"bundle\" object".to_string())?;
            let canonical = inline.to_compact();
            let bundle = ScheduleBundle::from_json_lenient(&canonical)
                .map_err(|e| format!("bad bundle: {e}"))?;
            if bundle.graph.layers > limits.max_layers {
                return Err(format!(
                    "bundle names {} layers, above the limit of {}",
                    bundle.graph.layers, limits.max_layers
                ));
            }
            let schedule = match v.get("schedule") {
                None => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err("schedule must be a string".to_string()),
            };
            Command::Bundle {
                bundle,
                schedule,
                policy: policy_of(v.get("policy"))?,
                canonical,
            }
        }
        "pipeline" => {
            let layers = usize_field(&v, "layers", None, limits.max_layers)?;
            let devices = usize_field(&v, "devices", None, limits.max_layers)?;
            if layers == 0 || devices == 0 {
                return Err("layers and devices must be at least 1".to_string());
            }
            let group = usize_field(&v, "group", Some(1), limits.max_layers)?;
            if group == 0 {
                return Err("group must be at least 1".to_string());
            }
            Command::Pipeline {
                layers,
                devices,
                strategy: strategy_of(v.get("strategy"))?,
                group,
            }
        }
        "hold" => Command::Hold,
        "release" => Command::Release,
        "stats" => Command::Stats,
        other => return Err(format!("unknown cmd: {other:?}")),
    };

    Ok(Request {
        id,
        cmd,
        budget: u64_field(&v, "budget")?,
        timeout_ms: u64_field(&v, "timeout_ms")?,
        tier,
        fault,
        memory_cap: u64_field(&v, "memory_cap_bytes")?,
    })
}

impl Request {
    /// The canonical content key this request's *work* is addressed by
    /// in the schedule cache, or `None` when the request is not
    /// cacheable: control commands (no work), fault directives (the
    /// response describes the fault, not the work), and wall-clock
    /// deadlines (the result depends on timing, and a cached response
    /// must be byte-identical to a cold one).
    ///
    /// The resolved `tier` is part of the key — a degraded answer must
    /// never satisfy a full-tier request. The `id` is not — two clients
    /// asking for the same work share one entry.
    pub fn cache_key(&self, tier: Tier) -> Option<String> {
        if self.fault.is_some() || self.timeout_ms.is_some() {
            return None;
        }
        let budget = match self.budget {
            Some(b) => b.to_string(),
            None => "none".to_string(),
        };
        let mcap = match self.memory_cap {
            Some(c) => c.to_string(),
            None => "none".to_string(),
        };
        let work = match &self.cmd {
            Command::Order {
                layers,
                k,
                sync,
                policy,
            } => format!(
                "order:v1:layers={layers};k={k};sync={sync};policy={}",
                policy_name(*policy)
            ),
            Command::Cert {
                layers,
                k,
                sync,
                policy,
            } => format!(
                "cert:v1:layers={layers};k={k};sync={sync};policy={}",
                policy_name(*policy)
            ),
            Command::Pipeline {
                layers,
                devices,
                strategy,
                group,
            } => format!(
                "pipeline:v1:layers={layers};devices={devices};strategy={};group={group}",
                strategy_name(*strategy)
            ),
            Command::Bundle {
                schedule,
                policy,
                canonical,
                ..
            } => format!(
                "bundle:v1:h={:016x};schedule={};policy={}",
                ooo_core::hash::fnv64(canonical.as_bytes()),
                schedule.as_deref().unwrap_or("*"),
                policy_name(*policy)
            ),
            Command::Hold | Command::Release | Command::Stats => return None,
        };
        // A capped answer must never satisfy an uncapped request (or
        // one with a different cap) — the cap is part of the work.
        Some(format!(
            "{work};tier={};budget={budget};mcap={mcap}",
            tier.as_str()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_order_request() {
        let r = parse_request(r#"{"id":1,"cmd":"order","layers":4}"#, &Limits::default()).unwrap();
        assert_eq!(r.id, Value::Num(1.0));
        match r.cmd {
            Command::Order {
                layers, k, sync, ..
            } => {
                assert_eq!((layers, k, sync), (4, 0, 3));
            }
            other => panic!("unexpected cmd {other:?}"),
        }
    }

    #[test]
    fn hostile_lines_error_without_panicking() {
        let limits = Limits::default();
        for bad in [
            "",
            "not json",
            "[]",
            "{\"cmd\":42}",
            "{\"cmd\":\"order\"}",
            "{\"cmd\":\"order\",\"layers\":0}",
            "{\"cmd\":\"order\",\"layers\":99999999}",
            "{\"cmd\":\"order\",\"layers\":4,\"k\":9}",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"pipeline\",\"layers\":2,\"devices\":2,\"strategy\":\"bogus\"}",
            "{\"cmd\":\"bundle\"}",
            "{\"cmd\":\"order\",\"layers\":4,\"fault\":\"meteor\"}",
        ] {
            assert!(parse_request(bad, &limits).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn cache_key_excludes_id_and_faulty_or_timed_requests() {
        let limits = Limits::default();
        let a = parse_request(r#"{"id":1,"cmd":"order","layers":4}"#, &limits).unwrap();
        let b = parse_request(r#"{"id":"two","cmd":"order","layers":4}"#, &limits).unwrap();
        assert_eq!(a.cache_key(Tier::Full), b.cache_key(Tier::Full));
        assert_ne!(a.cache_key(Tier::Full), a.cache_key(Tier::Greedy));
        let f = parse_request(r#"{"cmd":"order","layers":4,"fault":"panic"}"#, &limits).unwrap();
        assert_eq!(f.cache_key(Tier::Full), None);
        let t = parse_request(r#"{"cmd":"order","layers":4,"timeout_ms":5}"#, &limits).unwrap();
        assert_eq!(t.cache_key(Tier::Full), None);
    }

    #[test]
    fn memory_cap_is_parsed_and_keys_the_cache() {
        let limits = Limits::default();
        let capped = parse_request(
            r#"{"cmd":"order","layers":4,"memory_cap_bytes":64}"#,
            &limits,
        )
        .unwrap();
        assert_eq!(capped.memory_cap, Some(64));
        let uncapped = parse_request(r#"{"cmd":"order","layers":4}"#, &limits).unwrap();
        assert_eq!(uncapped.memory_cap, None);
        // A capped answer must not be served from an uncapped entry.
        assert_ne!(capped.cache_key(Tier::Full), uncapped.cache_key(Tier::Full));
        assert!(parse_request(
            r#"{"cmd":"order","layers":4,"memory_cap_bytes":"lots"}"#,
            &limits
        )
        .is_err());
    }

    #[test]
    fn payload_renders_with_id_spliced_first() {
        let p = Payload::new(Status::Ok, [("answer", 42u64.into())]);
        assert_eq!(
            p.render(&Value::Str("x".into())),
            r#"{"id":"x","status":"ok","answer":42}"#
        );
        assert_eq!(
            p.render(&Value::Null),
            r#"{"id":null,"status":"ok","answer":42}"#
        );
    }
}
