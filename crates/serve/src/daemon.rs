//! The daemon event loop: bounded admission, a panic-isolated worker
//! pool, and a sequence-ordered writer.
//!
//! Three roles cooperate over channels:
//!
//! * The **admission loop** (the caller's thread) reads one line at a
//!   time under a byte cap, parses it under structural limits, resolves
//!   the degradation tier, probes the schedule cache, and either
//!   answers immediately (hits, control commands, parse errors,
//!   backpressure) or dispatches a job to the bounded queue with
//!   `try_send` — a full queue answers `{"status":"overloaded"}`
//!   instead of blocking the input.
//! * **Workers** (`std::thread`, sharing one receiver) execute jobs
//!   under `catch_unwind` with retry-and-backoff, honor deadlines, and
//!   fulfill cache reservations. A `kill` fault directive makes the
//!   worker thread exit after answering; the admission loop respawns
//!   replacements. The daemon itself never dies from a worker fault.
//! * The **writer** thread holds responses in a sequence-ordered
//!   reorder buffer and emits them in admission order — so the response
//!   stream is a pure function of the request stream, byte for byte,
//!   regardless of worker interleaving.
//!
//! Determinism invariant: every response's *content* is decided either
//! at admission time (single-threaded, ordered) or by a deterministic
//! computation keyed only on the request — wall-clock only enters
//! through explicit `timeout_ms` requests, which are never cached.

use crate::cache::{Decision, ScheduleCache};
use crate::handlers;
use crate::protocol::{
    parse_request, Command, FaultDirective, Limits, Payload, Request, Status, Tier,
};
use ooo_core::json::{obj, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size (at least 1).
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `overloaded`.
    pub queue: usize,
    /// Schedule-cache capacity in entries; `0` disables caching.
    pub cache: usize,
    /// Per-request byte and structural limits.
    pub limits: Limits,
    /// Queue depth at or above which untiered requests degrade one
    /// tier; `None` disables load-based degradation.
    pub degrade_hot: Option<usize>,
    /// Retries after a worker panic (total attempts = retries + 1),
    /// with exponential backoff between attempts.
    pub retries: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue: 64,
            cache: 256,
            limits: Limits::default(),
            degrade_hot: None,
            retries: 2,
        }
    }
}

/// Deterministic end-of-stream accounting, tallied by the writer in
/// emission (= admission) order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Total response lines emitted.
    pub responses: u64,
    /// `status: ok` responses.
    pub ok: u64,
    /// `status: error` responses.
    pub errors: u64,
    /// `status: unsafe` responses.
    pub unsafe_inputs: u64,
    /// `status: timeout` responses.
    pub timeouts: u64,
    /// `status: overloaded` responses.
    pub overloaded: u64,
    /// Responses served from the cache (hits plus coalesced waiters).
    pub cache_served: u64,
    /// Workers respawned after `kill` faults.
    pub respawned: u64,
}

struct Job {
    seq: u64,
    id: Value,
    cmd: Command,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    fault: Option<FaultDirective>,
    memory_cap: Option<u64>,
    /// `Some` only when this job owns an in-flight cache reservation.
    cache_key: Option<String>,
}

enum Emit {
    Response {
        seq: u64,
        id: Value,
        payload: Payload,
        cached: bool,
    },
    Stats {
        seq: u64,
        id: Value,
        cache_hits: u64,
        cache_misses: u64,
    },
    /// Shutdown sentinel: all responses have been sent.
    Done,
}

impl Emit {
    fn seq(&self) -> u64 {
        match self {
            Emit::Response { seq, .. } | Emit::Stats { seq, .. } => *seq,
            Emit::Done => u64::MAX,
        }
    }
}

#[derive(Default)]
struct HoldState {
    /// Workers currently parked by `hold`.
    active: usize,
    /// Bumped by `release` (and shutdown); parked workers wake when it
    /// changes.
    epoch: u64,
}

#[derive(Default)]
struct HoldGate {
    state: Mutex<HoldState>,
    cv: Condvar,
}

struct Shared {
    cache: Mutex<ScheduleCache>,
    emit_tx: mpsc::Sender<Emit>,
    hold: HoldGate,
    /// Jobs admitted but not yet dequeued (load signal, advisory).
    depth: AtomicUsize,
    /// Live worker threads.
    live: AtomicUsize,
    retries: u32,
}

fn emit(shared: &Shared, msg: Emit) {
    // The writer outlives every sender by construction; a send failure
    // means the writer hit an I/O error and the stream is gone anyway.
    let _ = shared.emit_tx.send(msg);
}

/// Executes the handler under panic isolation with retry-and-backoff.
fn run_with_retries(shared: &Shared, job: &Job) -> Payload {
    for attempt in 0..=shared.retries {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handlers::handle(
                &job.cmd,
                job.tier,
                job.budget,
                job.deadline,
                job.fault,
                job.memory_cap,
                attempt as usize,
            )
        }));
        match outcome {
            Ok(payload) => return payload,
            Err(_) if attempt < shared.retries => {
                std::thread::sleep(Duration::from_millis(1u64 << attempt));
            }
            Err(_) => {}
        }
    }
    Payload::error(format!(
        "worker panicked on all {} attempts",
        shared.retries + 1
    ))
}

/// Runs one dequeued job to its response. Returns `true` when the
/// worker thread must exit afterwards (`kill` fault).
fn process(shared: &Shared, job: Job) -> bool {
    if matches!(job.cmd, Command::Hold) {
        let mut st = shared.hold.state.lock().expect("hold gate poisoned");
        st.active += 1;
        let epoch = st.epoch;
        shared.hold.cv.notify_all();
        emit(
            shared,
            Emit::Response {
                seq: job.seq,
                id: job.id,
                payload: Payload::new(Status::Ok, [("held", true.into())]),
                cached: false,
            },
        );
        while st.epoch == epoch {
            st = shared.hold.cv.wait(st).expect("hold gate poisoned");
        }
        st.active -= 1;
        shared.hold.cv.notify_all();
        return false;
    }

    let payload = if job.deadline.is_some_and(|d| Instant::now() >= d) {
        Payload::status_only(Status::Timeout)
    } else {
        run_with_retries(shared, &job)
    };

    let waiters = match &job.cache_key {
        Some(key) => {
            let cacheable = matches!(payload.status, Status::Ok | Status::Unsafe);
            shared
                .cache
                .lock()
                .expect("cache poisoned")
                .fulfill(key, &payload, cacheable)
        }
        None => Vec::new(),
    };
    emit(
        shared,
        Emit::Response {
            seq: job.seq,
            id: job.id,
            payload: payload.clone(),
            cached: false,
        },
    );
    for (wseq, wid) in waiters {
        emit(
            shared,
            Emit::Response {
                seq: wseq,
                id: wid,
                payload: payload.clone(),
                cached: true,
            },
        );
    }
    job.fault == Some(FaultDirective::Kill)
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().expect("job queue poisoned");
            guard.recv()
        };
        let Ok(job) = job else { break };
        shared.depth.fetch_sub(1, Ordering::SeqCst);
        if process(shared, job) {
            break;
        }
    }
    shared.live.fetch_sub(1, Ordering::SeqCst);
}

fn writer_loop<W: Write>(rx: Receiver<Emit>, out: &mut W) -> std::io::Result<ServeSummary> {
    let mut pending: BTreeMap<u64, Emit> = BTreeMap::new();
    let mut next = 0u64;
    let mut sum = ServeSummary::default();
    for msg in rx {
        if matches!(msg, Emit::Done) {
            break;
        }
        pending.insert(msg.seq(), msg);
        while let Some(ready) = pending.remove(&next) {
            next += 1;
            write_one(out, ready, &mut sum)?;
        }
        out.flush()?;
    }
    debug_assert!(pending.is_empty(), "responses lost in the reorder buffer");
    out.flush()?;
    Ok(sum)
}

fn write_one<W: Write>(out: &mut W, msg: Emit, sum: &mut ServeSummary) -> std::io::Result<()> {
    match msg {
        Emit::Response {
            id,
            payload,
            cached,
            ..
        } => {
            sum.responses += 1;
            match payload.status {
                Status::Ok => sum.ok += 1,
                Status::Error => sum.errors += 1,
                Status::Unsafe => sum.unsafe_inputs += 1,
                Status::Timeout => sum.timeouts += 1,
                Status::Overloaded => sum.overloaded += 1,
            }
            if cached {
                sum.cache_served += 1;
            }
            writeln!(out, "{}", payload.render(&id))
        }
        Emit::Stats {
            id,
            cache_hits,
            cache_misses,
            ..
        } => {
            // The counters describe the stream strictly before this
            // response's position — deterministic by construction.
            let payload = Payload::new(
                Status::Ok,
                [(
                    "stats",
                    obj([
                        ("responses", sum.responses.into()),
                        ("ok", sum.ok.into()),
                        ("error", sum.errors.into()),
                        ("unsafe", sum.unsafe_inputs.into()),
                        ("timeout", sum.timeouts.into()),
                        ("overloaded", sum.overloaded.into()),
                        ("cache_hits", cache_hits.into()),
                        ("cache_misses", cache_misses.into()),
                    ]),
                )],
            );
            sum.responses += 1;
            sum.ok += 1;
            writeln!(out, "{}", payload.render(&id))
        }
        Emit::Done => Ok(()),
    }
}

enum LineRead {
    Line(String),
    /// The line blew the byte cap; it was drained in O(1) memory.
    Oversized,
    Eof,
}

fn read_bounded_line<R: BufRead>(r: &mut R, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflow {
            if buf.len() + take > max {
                overflow = true;
                buf = Vec::new();
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let consumed = take + usize::from(newline.is_some());
        r.consume(consumed);
        if newline.is_some() {
            return Ok(if overflow {
                LineRead::Oversized
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// The tier a request runs at: an explicit `tier` always wins; untiered
/// requests pick by budget (tiny budgets are not worth a full search)
/// and degrade one step when the queue is hot.
fn resolve_tier(req: &Request, depth: usize, degrade_hot: Option<usize>) -> Tier {
    if let Some(t) = req.tier {
        return t;
    }
    let base = match req.budget {
        Some(b) if b < 8 => Tier::Heuristic,
        Some(b) if b < 64 => Tier::Greedy,
        _ => Tier::Full,
    };
    if degrade_hot.is_some_and(|hot| depth >= hot) {
        base.degraded()
    } else {
        base
    }
}

/// Runs the daemon over `input`/`output` until EOF: one response line
/// per request line, in request order, byte-deterministic for any
/// wall-clock-free request stream.
///
/// # Errors
///
/// Only I/O errors on `input`/`output` surface here; request-level
/// failures are structured response lines.
pub fn serve<R: BufRead, W: Write + Send>(
    mut input: R,
    output: &mut W,
    config: &ServeConfig,
) -> std::io::Result<ServeSummary> {
    let workers = config.workers.max(1);
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue.max(1));
    let job_rx = Mutex::new(job_rx);
    let (emit_tx, emit_rx) = mpsc::channel::<Emit>();
    let shared = Shared {
        cache: Mutex::new(ScheduleCache::new(config.cache)),
        emit_tx,
        hold: HoldGate::default(),
        depth: AtomicUsize::new(0),
        live: AtomicUsize::new(workers),
        retries: config.retries,
    };

    std::thread::scope(|s| {
        let writer = s.spawn(|| writer_loop(emit_rx, output));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(s.spawn(|| worker_loop(&shared, &job_rx)));
        }

        let mut seq = 0u64;
        let mut holds = 0usize;
        let mut respawned = 0u64;
        let mut read_error = None;
        loop {
            // Reap-and-respawn: workers lost to kill faults are
            // replaced before the next request is admitted.
            let live = shared.live.load(Ordering::SeqCst);
            for _ in live..workers {
                shared.live.fetch_add(1, Ordering::SeqCst);
                handles.push(s.spawn(|| worker_loop(&shared, &job_rx)));
                respawned += 1;
            }

            let line = match read_bounded_line(&mut input, config.limits.max_request_bytes) {
                Ok(LineRead::Eof) => break,
                Ok(LineRead::Oversized) => {
                    emit(
                        &shared,
                        Emit::Response {
                            seq,
                            id: Value::Null,
                            payload: Payload::error(format!(
                                "request line exceeds {} bytes; dropped before parsing",
                                config.limits.max_request_bytes
                            )),
                            cached: false,
                        },
                    );
                    seq += 1;
                    continue;
                }
                Ok(LineRead::Line(line)) => line,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };

            let req = match parse_request(&line, &config.limits) {
                Ok(req) => req,
                Err(message) => {
                    emit(
                        &shared,
                        Emit::Response {
                            seq,
                            id: Value::Null,
                            payload: Payload::error(message),
                            cached: false,
                        },
                    );
                    seq += 1;
                    continue;
                }
            };

            match req.cmd {
                Command::Release => {
                    let released = holds;
                    {
                        let mut st = shared.hold.state.lock().expect("hold gate poisoned");
                        st.epoch += 1;
                        shared.hold.cv.notify_all();
                        while st.active > 0 {
                            st = shared.hold.cv.wait(st).expect("hold gate poisoned");
                        }
                    }
                    holds = 0;
                    emit(
                        &shared,
                        Emit::Response {
                            seq,
                            id: req.id,
                            payload: Payload::new(
                                Status::Ok,
                                [("released", (released as u64).into())],
                            ),
                            cached: false,
                        },
                    );
                }
                Command::Stats => {
                    let (cache_hits, cache_misses) = {
                        let cache = shared.cache.lock().expect("cache poisoned");
                        (cache.hits(), cache.misses())
                    };
                    emit(
                        &shared,
                        Emit::Stats {
                            seq,
                            id: req.id,
                            cache_hits,
                            cache_misses,
                        },
                    );
                }
                Command::Hold => {
                    // Holding every worker is allowed (deterministic
                    // overload needs it; `release` bypasses the queue,
                    // so it cannot wedge) — but a hold beyond the pool
                    // size would never activate.
                    if holds >= workers {
                        emit(
                            &shared,
                            Emit::Response {
                                seq,
                                id: req.id,
                                payload: Payload::error(format!(
                                    "all {workers} workers are already held"
                                )),
                                cached: false,
                            },
                        );
                    } else {
                        let job = Job {
                            seq,
                            id: req.id.clone(),
                            cmd: Command::Hold,
                            tier: Tier::Full,
                            budget: None,
                            deadline: None,
                            fault: None,
                            memory_cap: None,
                            cache_key: None,
                        };
                        shared.depth.fetch_add(1, Ordering::SeqCst);
                        match job_tx.try_send(job) {
                            Ok(()) => {
                                // Deterministic: the hold is in effect
                                // before the next request is admitted.
                                let mut st = shared.hold.state.lock().expect("hold gate poisoned");
                                while st.active < holds + 1 {
                                    st = shared.hold.cv.wait(st).expect("hold gate poisoned");
                                }
                                holds += 1;
                            }
                            Err(_) => {
                                shared.depth.fetch_sub(1, Ordering::SeqCst);
                                emit(
                                    &shared,
                                    Emit::Response {
                                        seq,
                                        id: req.id,
                                        payload: Payload::status_only(Status::Overloaded),
                                        cached: false,
                                    },
                                );
                            }
                        }
                    }
                }
                _ => {
                    let depth = shared.depth.load(Ordering::SeqCst);
                    let tier = resolve_tier(&req, depth, config.degrade_hot);
                    let deadline = req
                        .timeout_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms));
                    let key = req.cache_key(tier);
                    let decision = match &key {
                        Some(k) => shared
                            .cache
                            .lock()
                            .expect("cache poisoned")
                            .lookup_or_reserve(k, seq, &req.id),
                        None => Decision::Bypass,
                    };
                    match decision {
                        Decision::Hit(payload) => emit(
                            &shared,
                            Emit::Response {
                                seq,
                                id: req.id,
                                payload,
                                cached: true,
                            },
                        ),
                        Decision::Wait => {}
                        reserved @ (Decision::Miss | Decision::Bypass) => {
                            let owns_reservation = matches!(reserved, Decision::Miss);
                            let job = Job {
                                seq,
                                id: req.id.clone(),
                                cmd: req.cmd,
                                tier,
                                budget: req.budget,
                                deadline,
                                fault: req.fault,
                                memory_cap: req.memory_cap,
                                cache_key: if owns_reservation { key.clone() } else { None },
                            };
                            shared.depth.fetch_add(1, Ordering::SeqCst);
                            match job_tx.try_send(job) {
                                Ok(()) => {}
                                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                                    shared.depth.fetch_sub(1, Ordering::SeqCst);
                                    if owns_reservation {
                                        if let Some(k) = &key {
                                            shared.cache.lock().expect("cache poisoned").abort(k);
                                        }
                                    }
                                    emit(
                                        &shared,
                                        Emit::Response {
                                            seq,
                                            id: req.id,
                                            payload: Payload::status_only(Status::Overloaded),
                                            cached: false,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            seq += 1;
        }

        // Shutdown: wake every held worker, close the queue, let the
        // pool drain, then finish any jobs stranded by dead workers.
        {
            let mut st = shared.hold.state.lock().expect("hold gate poisoned");
            st.epoch += 1;
            shared.hold.cv.notify_all();
        }
        drop(job_tx);
        for h in handles {
            let _ = h.join();
        }
        loop {
            let job = {
                let guard = job_rx.lock().expect("job queue poisoned");
                guard.try_recv()
            };
            match job {
                Ok(job) => {
                    shared.depth.fetch_sub(1, Ordering::SeqCst);
                    let _ = process(&shared, job);
                }
                Err(_) => break,
            }
        }
        emit(&shared, Emit::Done);
        let mut summary = writer
            .join()
            .unwrap_or_else(|_| panic!("writer thread panicked"))?;
        summary.respawned = respawned;
        match read_error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(input: &str, config: &ServeConfig) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let sum = serve(Cursor::new(input.as_bytes()), &mut out, config).expect("serve runs");
        (String::from_utf8(out).expect("utf8 output"), sum)
    }

    #[test]
    fn responses_come_back_in_request_order_with_ids_echoed() {
        let input = concat!(
            "{\"id\":\"a\",\"cmd\":\"order\",\"layers\":4,\"tier\":\"heuristic\"}\n",
            "not json\n",
            "{\"id\":3,\"cmd\":\"stats\"}\n",
        );
        let (out, sum) = run(input, &ServeConfig::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(
            lines[0].starts_with("{\"id\":\"a\",\"status\":\"ok\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"id\":null,\"status\":\"error\""),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].starts_with("{\"id\":3,\"status\":\"ok\",\"stats\":"),
            "{}",
            lines[2]
        );
        assert_eq!((sum.responses, sum.ok, sum.errors), (3, 2, 1));
    }

    #[test]
    fn identical_requests_hit_the_cache_with_identical_bytes() {
        let req = "{\"id\":0,\"cmd\":\"order\",\"layers\":5,\"k\":1}\n";
        let input = req.repeat(3);
        let (out, sum) = run(&input, &ServeConfig::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], lines[1]);
        assert_eq!(lines[1], lines[2]);
        assert_eq!(sum.cache_served, 2);
    }

    #[test]
    fn oversized_line_is_rejected_and_the_stream_continues() {
        let limits = Limits {
            max_request_bytes: 128,
            ..Limits::default()
        };
        let config = ServeConfig {
            limits,
            ..ServeConfig::default()
        };
        let big = format!("{{\"cmd\":\"order\",\"pad\":\"{}\"}}\n", "x".repeat(4096));
        let input = format!(
            "{big}{}",
            "{\"id\":1,\"cmd\":\"order\",\"layers\":3,\"tier\":\"heuristic\"}\n"
        );
        let (out, sum) = run(&input, &config);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains("exceeds 128 bytes"), "{}", lines[0]);
        assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
        assert_eq!(sum.errors, 1);
    }

    #[test]
    fn holds_pin_all_workers_and_overflow_is_exact() {
        // Both workers parked by holds, so nothing dequeues: the first
        // two computes fill the queue, the third bounces with
        // `overloaded`, and a hold beyond the pool size is refused.
        // Release drains everything; responses stay in request order.
        let config = ServeConfig {
            workers: 2,
            queue: 2,
            cache: 0,
            ..ServeConfig::default()
        };
        let input = concat!(
            "{\"id\":\"h1\",\"cmd\":\"hold\"}\n",
            "{\"id\":\"h2\",\"cmd\":\"hold\"}\n",
            "{\"id\":\"h3\",\"cmd\":\"hold\"}\n",
            "{\"id\":\"c1\",\"cmd\":\"order\",\"layers\":3,\"tier\":\"heuristic\"}\n",
            "{\"id\":\"c2\",\"cmd\":\"order\",\"layers\":4,\"tier\":\"heuristic\"}\n",
            "{\"id\":\"c3\",\"cmd\":\"order\",\"layers\":5,\"tier\":\"heuristic\"}\n",
            "{\"id\":\"r\",\"cmd\":\"release\"}\n",
        );
        let (out, sum) = run(input, &config);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 7, "{out}");
        assert_eq!(lines[0], "{\"id\":\"h1\",\"status\":\"ok\",\"held\":true}");
        assert_eq!(lines[1], "{\"id\":\"h2\",\"status\":\"ok\",\"held\":true}");
        assert!(
            lines[2].contains("\"status\":\"error\"") && lines[2].contains("already held"),
            "{}",
            lines[2]
        );
        assert!(lines[3].contains("\"status\":\"ok\""), "{}", lines[3]);
        assert!(lines[4].contains("\"status\":\"ok\""), "{}", lines[4]);
        assert_eq!(lines[5], "{\"id\":\"c3\",\"status\":\"overloaded\"}");
        assert_eq!(lines[6], "{\"id\":\"r\",\"status\":\"ok\",\"released\":2}");
        assert_eq!((sum.overloaded, sum.ok), (1, 5));
    }

    #[test]
    fn kill_fault_respawns_and_the_daemon_survives() {
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let input = concat!(
            "{\"id\":1,\"cmd\":\"order\",\"layers\":3,\"tier\":\"heuristic\",\"fault\":\"kill\"}\n",
            "{\"id\":2,\"cmd\":\"order\",\"layers\":3,\"tier\":\"heuristic\",\"fault\":\"kill\"}\n",
            "{\"id\":3,\"cmd\":\"order\",\"layers\":3,\"tier\":\"heuristic\"}\n",
            "{\"id\":4,\"cmd\":\"order\",\"layers\":4,\"tier\":\"heuristic\"}\n",
        );
        let (out, sum) = run(input, &config);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        for line in &lines {
            assert!(line.contains("\"status\":\"ok\""), "{line}");
        }
        assert_eq!(sum.ok, 4);
    }

    #[test]
    fn zero_timeout_answers_timeout_without_computing() {
        let input = "{\"id\":\"t\",\"cmd\":\"order\",\"layers\":6,\"timeout_ms\":0}\n";
        let (out, sum) = run(input, &ServeConfig::default());
        assert_eq!(out, "{\"id\":\"t\",\"status\":\"timeout\"}\n");
        assert_eq!(sum.timeouts, 1);
    }

    #[test]
    fn panic_fault_exhausts_retries_into_a_structured_error() {
        let input = "{\"id\":\"p\",\"cmd\":\"order\",\"layers\":3,\"fault\":\"panic\"}\n";
        let config = ServeConfig {
            retries: 1,
            ..ServeConfig::default()
        };
        let (out, sum) = run(input, &config);
        assert!(
            out.contains("\"status\":\"error\"") && out.contains("2 attempts"),
            "{out}"
        );
        assert_eq!(sum.errors, 1);
    }
}
