//! `ooo-serve`: a fault-tolerant scheduling daemon over the
//! out-of-order backprop toolchain.
//!
//! The one-shot CLIs (`ooo-tune`, `ooo-cert`) pay full process startup
//! and cold search per query. This crate wraps the same certified
//! tuning and certification pipelines in a long-running service with
//! the robustness properties a scheduler embedded in a training
//! control plane needs:
//!
//! * **Bounded everything** — request bytes, JSON parse nodes, layer
//!   counts, and the job queue are all capped; overflow is a
//!   structured response (`{"status":"overloaded"}` for the queue,
//!   `{"status":"error"}` for limits), never unbounded memory.
//! * **Panic isolation** — worker panics are caught, retried with
//!   backoff, and surface as structured errors; a killed worker is
//!   reaped and respawned. The daemon never dies from a request.
//! * **Deadlines and graceful degradation** — per-request
//!   `timeout_ms` and logical `budget`, plus tiered service (`full` →
//!   `greedy` → `heuristic`) where every tier still returns a
//!   verified, certified schedule.
//! * **Content-addressed caching** — identical work requests are
//!   served from an LRU cache whose hits are byte-identical to cold
//!   misses, and concurrent duplicates coalesce onto one computation.
//! * **Determinism** — responses are emitted in request order from a
//!   sequence-ordered reorder buffer; for any wall-clock-free request
//!   stream the full response stream is byte-reproducible.
//!
//! See [`protocol`] for the wire format, [`daemon::serve`] for the
//! event loop, and `tests/serve_conformance.rs` at the workspace root
//! for the replay harness that proves the stream-level guarantees.

pub mod cache;
pub mod daemon;
pub mod handlers;
pub mod protocol;

pub use daemon::{serve, ServeConfig, ServeSummary};
pub use protocol::{Limits, Status, Tier};
