//! Request handlers: the compute commands, executed on pool workers.
//!
//! Each handler mirrors the corresponding one-shot CLI (`ooo-tune
//! order|bundle|pipeline`, `ooo-cert order`) but returns a
//! [`Payload`] instead of printing, and threads the request's
//! degradation tier, logical budget, and wall-clock deadline into the
//! search ([`TuneOptions::budget`] / [`TuneOptions::deadline`] /
//! [`ooo_cert::Budget`]). Every tier returns a certified result —
//! degradation reduces search effort, never correctness.

use crate::protocol::{strategy_name, Command, FaultDirective, Payload, Status, Tier};
use ooo_core::cost::{CostModel, LayerCost, TableCost, UnitCost};
use ooo_core::datapar::CommPolicy;
use ooo_core::export::ScheduleBundle;
use ooo_core::json::{obj, Value};
use ooo_core::pipeline::Strategy;
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::schedule::Schedule;
use ooo_core::{Op, SimTime, TrainGraph};
use ooo_tune::order::{certify_order, tune_backward_order, KFamily};
use ooo_tune::pipeline::tune_pipeline;
use ooo_tune::{certify_schedule, tune_schedule, Error, TuneOptions, Tuned};
use std::time::Instant;

/// Default branch-and-bound node budget for `cert` requests without an
/// explicit `budget` (matches [`ooo_cert::Budget::default`]).
const DEFAULT_CERT_NODES: u64 = 200_000;

/// Search options for one request: tier picks the family, budget and
/// deadline bound the effort. The heuristic tier is a zero-scan tune —
/// the paper's heuristic baseline, still gate-checked and certified.
fn tune_opts(
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    require_complete: bool,
    target: Option<SimTime>,
    memory_cap: Option<u64>,
) -> TuneOptions {
    let base = TuneOptions {
        require_complete,
        // An over-cap incumbent scores above any makespan floor, so a
        // target is only a valid early-exit when no cap is in play.
        target: if memory_cap.is_some() { None } else { target },
        deadline,
        memory_cap,
        ..TuneOptions::default()
    };
    match tier {
        Tier::Full => TuneOptions { budget, ..base },
        Tier::Greedy => TuneOptions {
            restarts: 0,
            budget,
            ..base
        },
        Tier::Heuristic => TuneOptions {
            budget: Some(0),
            ..base
        },
    }
}

/// The certified makespan floor of `schedule`'s op subset on its lane
/// structure; fed to the tuner as its early-termination target.
fn certified_floor<C: CostModel>(graph: &TrainGraph, schedule: &Schedule, cost: &C) -> SimTime {
    let scheduled: Vec<Op> = schedule
        .lanes
        .iter()
        .flat_map(|l| l.ops.iter().copied())
        .collect();
    let compute = schedule
        .lanes
        .iter()
        .filter(|l| l.ops.iter().any(|o| o.is_compute()))
        .count()
        .max(1);
    let link = schedule
        .lanes
        .iter()
        .filter(|l| l.ops.iter().any(|o| o.is_sync()))
        .count()
        .max(1);
    ooo_core::bounds::partial_lower_bound(graph, cost, &scheduled, compute, link)
}

/// One tuned result as a response-object field list (fixed key order —
/// the response stream is byte-compared across runs).
#[allow(clippy::too_many_arguments)]
fn tuned_fields(
    name: &str,
    kind: &str,
    baseline: SimTime,
    tuned: SimTime,
    certified: SimTime,
    floor: SimTime,
    peak: Option<u64>,
    cap: Option<u64>,
    k: Option<usize>,
    moves: usize,
    restarts_adopted: usize,
) -> Value {
    let opt_num = |n: Option<u64>| match n {
        Some(n) => Value::Num(n as f64),
        None => Value::Null,
    };
    obj([
        ("name", name.into()),
        ("kind", kind.into()),
        ("baseline_makespan", Value::Num(baseline as f64)),
        ("tuned_makespan", Value::Num(tuned as f64)),
        ("certified_makespan", Value::Num(certified as f64)),
        ("lower_bound", Value::Num(floor as f64)),
        ("proven_optimal", Value::Bool(certified == floor)),
        ("improved", Value::Bool(tuned < baseline)),
        ("peak", opt_num(peak)),
        ("memory_cap", opt_num(cap)),
        (
            "cap_met",
            match (peak, cap) {
                (Some(p), Some(c)) => Value::Bool(p <= c),
                _ => Value::Null,
            },
        ),
        (
            "k",
            match k {
                Some(k) => Value::Num(k as f64),
                None => Value::Null,
            },
        ),
        ("moves", Value::Num(moves as f64)),
        ("restarts_adopted", Value::Num(restarts_adopted as f64)),
    ])
}

/// Maps a tuner error onto a payload: gate refusals become `unsafe`
/// responses with the fired rule codes, everything else a structured
/// `error`.
fn tune_error(e: Error) -> Payload {
    match e {
        Error::Unsafe(report) => Payload::new(
            Status::Unsafe,
            [(
                "diagnostics",
                Value::Arr(
                    report
                        .rule_codes()
                        .iter()
                        .map(|c| c.to_string().into())
                        .collect(),
                ),
            )],
        ),
        other => Payload::error(other.to_string()),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_order(
    layers: usize,
    k: usize,
    sync: SimTime,
    policy: CommPolicy,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    memory_cap: Option<u64>,
) -> Payload {
    let run = || -> Result<Payload, Error> {
        let graph = TrainGraph::data_parallel(layers);
        let cost = TableCost::uniform(
            layers,
            LayerCost {
                sync_weight: sync,
                ..LayerCost::default()
            },
        );
        let baseline = reverse_first_k(&graph, k, None::<(u64, &TableCost)>)?;
        let realized = ooo_verify::predict::datapar_schedule(&graph, &baseline, &cost, policy)?;
        let floor = certified_floor(&graph, &realized, &cost);
        let tuned = tune_backward_order(
            &graph,
            &baseline,
            Some(k),
            &cost,
            policy,
            KFamily::ReverseFirstK,
            &tune_opts(tier, budget, deadline, true, Some(floor), memory_cap),
        )?;
        let certified = certify_order(&graph, &tuned.order, &cost, policy)?;
        Ok(Payload::new(
            Status::Ok,
            [
                ("tier", tier.as_str().into()),
                (
                    "result",
                    tuned_fields(
                        &format!("reverse-first-k(l={layers}, k={k})"),
                        "order",
                        tuned.baseline,
                        tuned.predicted,
                        certified,
                        floor,
                        tuned.peak,
                        memory_cap,
                        tuned.k,
                        tuned.moves.len(),
                        tuned.restarts_adopted,
                    ),
                ),
            ],
        ))
    };
    run().unwrap_or_else(tune_error)
}

#[allow(clippy::too_many_arguments)]
fn tune_one_schedule(
    graph: &TrainGraph,
    name: &str,
    schedule: &Schedule,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    memory_cap: Option<u64>,
) -> Result<Value, Error> {
    let floor = certified_floor(graph, schedule, &UnitCost);
    let tuned: Tuned = tune_schedule(
        graph,
        schedule,
        &UnitCost,
        &tune_opts(tier, budget, deadline, false, Some(floor), memory_cap),
    )?;
    let certified = certify_schedule(graph, &tuned.schedule, &UnitCost)?;
    Ok(tuned_fields(
        name,
        "schedule",
        tuned.baseline,
        tuned.predicted,
        certified,
        floor,
        tuned.peak,
        memory_cap,
        None,
        tuned.moves.len(),
        tuned.restarts_adopted,
    ))
}

#[allow(clippy::too_many_arguments)]
fn handle_bundle(
    bundle: &ScheduleBundle,
    wanted: Option<&str>,
    policy: CommPolicy,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    memory_cap: Option<u64>,
) -> Payload {
    let graph = match TrainGraph::new(bundle.graph.clone()) {
        Ok(g) => g,
        Err(e) => return Payload::error(format!("invalid graph configuration: {e}")),
    };
    let mut items = Vec::new();
    let mut worst = Status::Ok;
    let mut push = |r: Result<Value, Error>, name: &str| match r {
        Ok(v) => items.push(v),
        Err(Error::Unsafe(report)) => {
            worst = Status::Unsafe;
            items.push(obj([
                ("name", name.into()),
                ("kind", "unsafe".into()),
                (
                    "diagnostics",
                    Value::Arr(
                        report
                            .rule_codes()
                            .iter()
                            .map(|c| c.to_string().into())
                            .collect(),
                    ),
                ),
            ]));
        }
        Err(e) => {
            worst = Status::Error;
            items.push(obj([
                ("name", name.into()),
                ("kind", "error".into()),
                ("error", e.to_string().into()),
            ]));
        }
    };
    for (name, order) in &bundle.orders {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        let item = if graph.config().sync_weight_grads {
            let backward: Vec<_> = order.iter().copied().filter(|o| o.is_backward()).collect();
            ooo_verify::predict::datapar_schedule(&graph, &backward, &UnitCost, policy)
                .map_err(Error::from)
                .and_then(|realized| {
                    let floor = certified_floor(&graph, &realized, &UnitCost);
                    let t = tune_backward_order(
                        &graph,
                        &backward,
                        None,
                        &UnitCost,
                        policy,
                        KFamily::ReverseFirstK,
                        &tune_opts(tier, budget, deadline, true, Some(floor), memory_cap),
                    )?;
                    let certified = certify_order(&graph, &t.order, &UnitCost, policy)?;
                    Ok(tuned_fields(
                        name,
                        "order",
                        t.baseline,
                        t.predicted,
                        certified,
                        floor,
                        t.peak,
                        memory_cap,
                        t.k,
                        t.moves.len(),
                        t.restarts_adopted,
                    ))
                })
        } else {
            let s = Schedule::single_lane(name, order.clone());
            tune_one_schedule(&graph, name, &s, tier, budget, deadline, memory_cap)
        };
        push(item, name);
    }
    for (name, schedule) in &bundle.schedules {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        push(
            tune_one_schedule(&graph, name, schedule, tier, budget, deadline, memory_cap),
            name,
        );
    }
    if items.is_empty() {
        return Payload::error(match wanted {
            Some(w) => format!("no order or schedule named {w:?} in the bundle"),
            None => "bundle holds no orders or schedules".to_string(),
        });
    }
    Payload::new(
        worst,
        [
            ("tier", tier.as_str().into()),
            ("result", Value::Arr(items)),
        ],
    )
}

#[allow(clippy::too_many_arguments)]
fn handle_pipeline(
    layers: usize,
    devices: usize,
    strategy: Strategy,
    group: usize,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    memory_cap: Option<u64>,
) -> Payload {
    let run = || -> Result<Payload, Error> {
        let (pgraph, pschedule) =
            ooo_core::pipeline::op_level_schedule(layers, devices, strategy, group);
        let floor = certified_floor(&pgraph, &pschedule, &UnitCost);
        let tuned = tune_pipeline(
            layers,
            devices,
            strategy,
            group,
            &UnitCost,
            &tune_opts(tier, budget, deadline, true, Some(floor), memory_cap),
        )?;
        let certified = certify_schedule(&tuned.graph, &tuned.schedule, &UnitCost)?;
        Ok(Payload::new(
            Status::Ok,
            [
                ("tier", tier.as_str().into()),
                (
                    "result",
                    tuned_fields(
                        strategy_name(strategy),
                        "pipeline",
                        tuned.baseline,
                        tuned.predicted,
                        certified,
                        floor,
                        tuned.peak,
                        memory_cap,
                        Some(tuned.group),
                        tuned.moves.len(),
                        tuned.restarts_adopted,
                    ),
                ),
            ],
        ))
    };
    run().unwrap_or_else(tune_error)
}

fn handle_cert(
    layers: usize,
    k: usize,
    sync: SimTime,
    policy: CommPolicy,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
) -> Payload {
    let graph = TrainGraph::data_parallel(layers);
    let cost = TableCost::uniform(
        layers,
        LayerCost {
            sync_weight: sync,
            ..LayerCost::default()
        },
    );
    let order = match reverse_first_k(&graph, k, None::<(u64, &TableCost)>) {
        Ok(o) => o,
        Err(e) => return Payload::error(e.to_string()),
    };
    // The heuristic tier skips the search entirely: a zero-node budget
    // reports the static certified bracket.
    let max_nodes = match tier {
        Tier::Heuristic => 0,
        _ => budget.unwrap_or(DEFAULT_CERT_NODES),
    };
    let mut cert_budget = ooo_cert::Budget::nodes(max_nodes);
    if let Some(d) = deadline {
        cert_budget = cert_budget.with_deadline(d);
    }
    match ooo_cert::certify_order(&graph, &order, &cost, policy, &cert_budget) {
        Ok((_, solved)) => {
            let c = &solved.certificate;
            Payload::new(
                Status::Ok,
                [
                    ("tier", tier.as_str().into()),
                    (
                        "result",
                        obj([
                            ("name", format!("reverse-first-k(l={layers}, k={k})").into()),
                            ("kind", "cert".into()),
                            ("cert_status", c.status().into()),
                            (
                                "baseline_makespan",
                                Value::Num(c.baseline_makespan() as f64),
                            ),
                            ("best_makespan", Value::Num(c.best_makespan() as f64)),
                            ("lower_bound", Value::Num(solved.lower_bound as f64)),
                            ("optimal", Value::Bool(solved.is_optimal())),
                            ("nodes", Value::Num(solved.nodes as f64)),
                        ]),
                    ),
                ],
            )
        }
        Err(e) => Payload::error(e.to_string()),
    }
}

/// Executes one compute command at `tier`. Control commands never
/// reach this function.
///
/// The `fault` directive and `attempt` number implement the
/// deterministic chaos contract: `panic` fires on every attempt,
/// `flaky` only on the first (so a retry succeeds).
#[allow(clippy::too_many_arguments)]
pub fn handle(
    cmd: &Command,
    tier: Tier,
    budget: Option<u64>,
    deadline: Option<Instant>,
    fault: Option<FaultDirective>,
    memory_cap: Option<u64>,
    attempt: usize,
) -> Payload {
    match fault {
        Some(FaultDirective::Panic) => panic!("injected fault: worker panic"),
        Some(FaultDirective::Flaky) if attempt == 0 => {
            panic!("injected fault: flaky worker panic")
        }
        _ => {}
    }
    match cmd {
        Command::Order {
            layers,
            k,
            sync,
            policy,
        } => handle_order(
            *layers, *k, *sync, *policy, tier, budget, deadline, memory_cap,
        ),
        Command::Bundle {
            bundle,
            schedule,
            policy,
            ..
        } => handle_bundle(
            bundle,
            schedule.as_deref(),
            *policy,
            tier,
            budget,
            deadline,
            memory_cap,
        ),
        Command::Pipeline {
            layers,
            devices,
            strategy,
            group,
        } => handle_pipeline(
            *layers, *devices, *strategy, *group, tier, budget, deadline, memory_cap,
        ),
        Command::Cert {
            layers,
            k,
            sync,
            policy,
        } => handle_cert(*layers, *k, *sync, *policy, tier, budget, deadline),
        Command::Hold | Command::Release | Command::Stats => {
            Payload::error("control command routed to a compute handler")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_handler_serves_all_tiers_deterministically() {
        for tier in [Tier::Full, Tier::Greedy, Tier::Heuristic] {
            let cmd = Command::Order {
                layers: 4,
                k: 1,
                sync: 3,
                policy: CommPolicy::PriorityByLayer,
            };
            let a = handle(&cmd, tier, None, None, None, None, 0);
            let b = handle(&cmd, tier, None, None, None, None, 0);
            assert_eq!(a.body, b.body, "tier {tier:?}");
            assert_eq!(a.status, Status::Ok);
        }
    }

    #[test]
    fn capped_order_requests_report_the_winner_peak() {
        let cmd = Command::Order {
            layers: 6,
            k: 0,
            sync: 3,
            policy: CommPolicy::PriorityByLayer,
        };
        // Uncapped responses carry null peak/cap fields.
        let free = handle(&cmd, Tier::Full, None, None, None, None, 0);
        assert_eq!(free.status, Status::Ok);
        assert!(free.body.contains("\"peak\":null"), "{}", free.body);
        assert!(free.body.contains("\"cap_met\":null"), "{}", free.body);
        // A generous cap is met and the exact ledger peak is reported.
        let capped = handle(&cmd, Tier::Full, None, None, None, Some(1 << 30), 0);
        assert_eq!(capped.status, Status::Ok, "{}", capped.body);
        assert!(capped.body.contains("\"cap_met\":true"), "{}", capped.body);
        assert!(!capped.body.contains("\"peak\":null"), "{}", capped.body);
        // Deterministic under a cap, like every other request.
        let again = handle(&cmd, Tier::Full, None, None, None, Some(1 << 30), 0);
        assert_eq!(capped.body, again.body);
    }

    #[test]
    fn cert_handler_reports_certificates() {
        let cmd = Command::Cert {
            layers: 3,
            k: 1,
            sync: 2,
            policy: CommPolicy::FifoCompletion,
        };
        let p = handle(&cmd, Tier::Full, None, None, None, None, 0);
        assert_eq!(p.status, Status::Ok);
        assert!(p.body.contains("cert_status"), "{}", p.body);
        // Heuristic tier degrades to the static bracket but still
        // answers.
        let h = handle(&cmd, Tier::Heuristic, None, None, None, None, 0);
        assert_eq!(h.status, Status::Ok);
    }

    #[test]
    fn flaky_fault_panics_only_on_the_first_attempt() {
        let cmd = Command::Order {
            layers: 3,
            k: 0,
            sync: 3,
            policy: CommPolicy::PriorityByLayer,
        };
        let caught = std::panic::catch_unwind(|| {
            handle(
                &cmd,
                Tier::Heuristic,
                None,
                None,
                Some(FaultDirective::Flaky),
                None,
                0,
            )
        });
        assert!(caught.is_err());
        let retried = handle(
            &cmd,
            Tier::Heuristic,
            None,
            None,
            Some(FaultDirective::Flaky),
            None,
            1,
        );
        assert_eq!(retried.status, Status::Ok);
    }
}
