//! The content-addressed, LRU-bounded schedule cache.
//!
//! Keys are canonical request encodings ([`crate::protocol::Request::cache_key`])
//! indexed by their FNV-1a 64 fingerprint ([`ooo_core::hash::fnv64`]).
//! The full key string is stored with each entry and compared on every
//! probe, so a fingerprint collision degrades to a cache bypass, never
//! a wrong answer.
//!
//! All mutation happens under one external mutex **from the admission
//! thread** (lookups/reservations) and the worker that computed an
//! entry (fulfillment). Because admission is single-threaded and
//! ordered by request sequence number, the hit/miss/wait decision for
//! every request of a stream is a pure function of the stream prefix —
//! which is what makes replayed traces byte-identical.
//!
//! An entry is either `Ready` (a finished payload) or `InFlight` (the
//! first request for the key is being computed; later requests park as
//! waiters and are answered from the same payload the moment it
//! lands). Eviction is least-recently-used over `Ready` entries only —
//! an in-flight entry always has a requester waiting on it.

use crate::protocol::Payload;
use ooo_core::hash::fnv64;
use ooo_core::json::Value;
use std::collections::HashMap;

/// The admission-time decision for one request.
#[derive(Debug)]
pub enum Decision {
    /// A finished entry matched: answer immediately with this payload.
    Hit(Payload),
    /// The key is being computed; this request was parked as a waiter
    /// and will be answered when the computation lands.
    Wait,
    /// No entry: the key was reserved in-flight; compute and
    /// [`ScheduleCache::fulfill`].
    Miss,
    /// Caching is off (capacity 0) or the fingerprint collided with a
    /// different key: compute without touching the cache.
    Bypass,
}

enum State {
    Ready(Payload),
    InFlight { waiters: Vec<(u64, Value)> },
}

struct Entry {
    key: String,
    state: State,
    last_used: u64,
}

/// See the module docs.
pub struct ScheduleCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    entries: HashMap<u64, Entry>,
}

impl ScheduleCache {
    /// A cache holding at most `capacity` finished entries; `0`
    /// disables caching (every probe is a [`Decision::Bypass`]).
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            entries: HashMap::new(),
        }
    }

    /// Cache hits so far (admission-ordered, hence deterministic).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (reservations plus bypasses of cacheable
    /// keys).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Probes `key` for the request `(seq, id)`: returns the decision
    /// and performs the matching bookkeeping (LRU touch, waiter park,
    /// or in-flight reservation).
    pub fn lookup_or_reserve(&mut self, key: &str, seq: u64, id: &Value) -> Decision {
        if self.capacity == 0 {
            return Decision::Bypass;
        }
        self.tick += 1;
        let h = fnv64(key.as_bytes());
        match self.entries.get_mut(&h) {
            Some(entry) if entry.key == key => {
                entry.last_used = self.tick;
                match &mut entry.state {
                    State::Ready(payload) => {
                        self.hits += 1;
                        Decision::Hit(payload.clone())
                    }
                    State::InFlight { waiters } => {
                        self.hits += 1;
                        waiters.push((seq, id.clone()));
                        Decision::Wait
                    }
                }
            }
            Some(_) => Decision::Bypass,
            None => {
                self.misses += 1;
                self.entries.insert(
                    h,
                    Entry {
                        key: key.to_string(),
                        state: State::InFlight {
                            waiters: Vec::new(),
                        },
                        last_used: self.tick,
                    },
                );
                Decision::Miss
            }
        }
    }

    /// Resolves an in-flight reservation: returns the parked waiters
    /// (each to be answered with a clone of `payload`) and, when
    /// `cacheable`, stores the payload as a `Ready` entry — evicting
    /// the least-recently-used `Ready` entry if over capacity.
    /// Non-cacheable outcomes (worker failures) drop the reservation so
    /// the next request recomputes.
    pub fn fulfill(&mut self, key: &str, payload: &Payload, cacheable: bool) -> Vec<(u64, Value)> {
        let h = fnv64(key.as_bytes());
        let Some(entry) = self.entries.get_mut(&h) else {
            return Vec::new();
        };
        if entry.key != key || matches!(entry.state, State::Ready(_)) {
            return Vec::new();
        }
        let State::InFlight { waiters } =
            std::mem::replace(&mut entry.state, State::Ready(payload.clone()))
        else {
            unreachable!("checked InFlight above");
        };
        if cacheable {
            self.evict_over_capacity();
        } else {
            self.entries.remove(&h);
        }
        waiters
    }

    /// Drops an unfulfilled reservation (e.g. the dispatch was refused
    /// by a full queue right after reserving). Only the admission
    /// thread calls this, immediately after reserving, so no waiter can
    /// have parked in between.
    pub fn abort(&mut self, key: &str) {
        let h = fnv64(key.as_bytes());
        if let Some(entry) = self.entries.get(&h) {
            if entry.key == key && matches!(entry.state, State::InFlight { .. }) {
                self.entries.remove(&h);
            }
        }
    }

    fn evict_over_capacity(&mut self) {
        while self.ready_len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.state, State::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&h, _)| h);
            match victim {
                Some(h) => {
                    self.entries.remove(&h);
                }
                None => break,
            }
        }
    }

    fn ready_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.state, State::Ready(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;

    fn payload(tag: &str) -> Payload {
        Payload::new(Status::Ok, [("tag", tag.into())])
    }

    #[test]
    fn miss_then_hit_returns_identical_payload() {
        let mut c = ScheduleCache::new(4);
        assert!(matches!(
            c.lookup_or_reserve("k1", 0, &Value::Null),
            Decision::Miss
        ));
        let waiters = c.fulfill("k1", &payload("a"), true);
        assert!(waiters.is_empty());
        match c.lookup_or_reserve("k1", 1, &Value::Null) {
            Decision::Hit(p) => assert_eq!(p.body, payload("a").body),
            other => panic!("expected Hit, got {other:?}"),
        }
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn concurrent_duplicates_park_and_drain_in_order() {
        let mut c = ScheduleCache::new(4);
        assert!(matches!(
            c.lookup_or_reserve("k", 0, &Value::Num(0.0)),
            Decision::Miss
        ));
        assert!(matches!(
            c.lookup_or_reserve("k", 1, &Value::Num(1.0)),
            Decision::Wait
        ));
        assert!(matches!(
            c.lookup_or_reserve("k", 2, &Value::Num(2.0)),
            Decision::Wait
        ));
        let waiters = c.fulfill("k", &payload("x"), true);
        assert_eq!(
            waiters.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn uncacheable_fulfillment_still_answers_waiters_but_stores_nothing() {
        let mut c = ScheduleCache::new(4);
        let _ = c.lookup_or_reserve("k", 0, &Value::Null);
        assert!(matches!(
            c.lookup_or_reserve("k", 1, &Value::Null),
            Decision::Wait
        ));
        let waiters = c.fulfill("k", &payload("err"), false);
        assert_eq!(waiters.len(), 1);
        // Next request recomputes.
        assert!(matches!(
            c.lookup_or_reserve("k", 2, &Value::Null),
            Decision::Miss
        ));
    }

    #[test]
    fn lru_evicts_the_coldest_ready_entry() {
        let mut c = ScheduleCache::new(2);
        for key in ["a", "b"] {
            let _ = c.lookup_or_reserve(key, 0, &Value::Null);
            c.fulfill(key, &payload(key), true);
        }
        // Touch "a" so "b" is coldest.
        assert!(matches!(
            c.lookup_or_reserve("a", 1, &Value::Null),
            Decision::Hit(_)
        ));
        let _ = c.lookup_or_reserve("c", 2, &Value::Null);
        c.fulfill("c", &payload("c"), true);
        assert!(matches!(
            c.lookup_or_reserve("b", 3, &Value::Null),
            Decision::Miss
        ));
        c.abort("b");
        assert!(matches!(
            c.lookup_or_reserve("a", 4, &Value::Null),
            Decision::Hit(_)
        ));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ScheduleCache::new(0);
        assert!(matches!(
            c.lookup_or_reserve("k", 0, &Value::Null),
            Decision::Bypass
        ));
        assert!(c.fulfill("k", &payload("x"), true).is_empty());
    }
}
