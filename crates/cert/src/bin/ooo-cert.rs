//! `ooo-cert` — exact schedule-optimality certification.
//!
//! Three modes, mirroring `ooo-tune`:
//!
//! ```text
//! ooo-cert order --layers N [--k K] [--sync NS] [--policy fifo|bylayer]
//!                [--budget NODES] [--json] [--out FILE]
//! ooo-cert bundle <bundle.json> [--schedule NAME] [--policy fifo|bylayer]
//!                [--budget NODES] [--json] [--out FILE]
//! ooo-cert pipeline --layers N --devices D --strategy NAME [--group G]
//!                [--budget NODES] [--json] [--out FILE]
//! ```
//!
//! `order` certifies the data-parallel realization of a reverse-first-k
//! backward order; `bundle` certifies every order and schedule of a
//! JSON-exported [`ScheduleBundle`]; `pipeline` certifies one
//! strategy's op-level schedule under fixed device placement (the lane
//! assignment is part of the problem statement there).
//!
//! Output is deterministic: the same input produces byte-identical
//! output (CI runs every invocation twice and compares). Exit status:
//! `0` when every certificate is `Optimal` or `Unknown` (the analysis
//! found nothing wrong within budget), `1` when any input is proven
//! `Improvable` (the analysis found a defect, with a witness), `2` on
//! usage, I/O, or parse problems.

use ooo_cert::{certify_order, certify_with, Budget, Certificate, Placement, Solved};
use ooo_core::cost::{LayerCost, TableCost, UnitCost};
use ooo_core::datapar::CommPolicy;
use ooo_core::export::ScheduleBundle;
use ooo_core::json::{obj, Value};
use ooo_core::pipeline::Strategy;
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::schedule::Schedule;
use ooo_core::{SimTime, TrainGraph};
use std::process::ExitCode;

const USAGE: &str = "usage: ooo-cert order --layers N [--k K] [--sync NS] \
                     [--policy fifo|bylayer] [--budget NODES] [--json] [--out FILE]\n\
                     \x20      ooo-cert bundle <bundle.json> [--schedule NAME] \
                     [--policy fifo|bylayer] [--budget NODES] [--json] [--out FILE]\n\
                     \x20      ooo-cert pipeline --layers N --devices D --strategy NAME \
                     [--group G] [--budget NODES] [--json] [--out FILE]";

enum Mode {
    Order {
        layers: usize,
        k: usize,
        sync: SimTime,
        policy: CommPolicy,
    },
    Bundle {
        path: String,
        schedule: Option<String>,
        policy: CommPolicy,
    },
    Pipeline {
        layers: usize,
        devices: usize,
        strategy: Strategy,
        group: usize,
    },
}

struct Args {
    mode: Mode,
    budget: Budget,
    json: bool,
    out: Option<String>,
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "mp" | "modelparallel" => Strategy::ModelParallel,
        "gpipe" => Strategy::GPipe,
        "pipedream" => Strategy::PipeDream,
        "dapple" => Strategy::Dapple,
        "megatron" => Strategy::MegatronInterleaved { chunks: 2 },
        "pipe1" => Strategy::OooPipe1,
        "pipe2" => Strategy::OooPipe2,
        other => return Err(format!("unknown strategy: {other:?}")),
    })
}

fn parse_policy(name: &str) -> Result<CommPolicy, String> {
    Ok(match name {
        "fifo" => CommPolicy::FifoCompletion,
        "bylayer" => CommPolicy::PriorityByLayer,
        other => return Err(format!("unknown policy: {other:?}")),
    })
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mode_word = argv.next().ok_or_else(|| USAGE.to_string())?;
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_usize = |flag: &str, v: String| {
        v.parse::<usize>()
            .map_err(|_| format!("{flag}: not a count: {v:?}"))
    };
    let mut budget = Budget::default();
    let mut json = false;
    let mut out = None;

    let mode = match mode_word.as_str() {
        "order" => {
            let mut layers = None;
            let mut k = 0usize;
            let mut sync: SimTime = 3;
            let mut policy = CommPolicy::PriorityByLayer;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--layers" => {
                        layers = Some(parse_usize("--layers", need_value(&mut argv, "--layers")?)?)
                    }
                    "--k" => k = parse_usize("--k", need_value(&mut argv, "--k")?)?,
                    "--sync" => {
                        sync = parse_usize("--sync", need_value(&mut argv, "--sync")?)? as SimTime
                    }
                    "--policy" => policy = parse_policy(&need_value(&mut argv, "--policy")?)?,
                    "--budget" => {
                        budget = Budget::nodes(parse_usize(
                            "--budget",
                            need_value(&mut argv, "--budget")?,
                        )? as u64)
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            match layers {
                Some(layers) if layers > 0 && k <= layers => Mode::Order {
                    layers,
                    k,
                    sync,
                    policy,
                },
                _ => return Err(USAGE.to_string()),
            }
        }
        "bundle" => {
            let mut path = String::new();
            let mut schedule = None;
            let mut policy = CommPolicy::PriorityByLayer;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--schedule" => schedule = Some(need_value(&mut argv, "--schedule")?),
                    "--policy" => policy = parse_policy(&need_value(&mut argv, "--policy")?)?,
                    "--budget" => {
                        budget = Budget::nodes(parse_usize(
                            "--budget",
                            need_value(&mut argv, "--budget")?,
                        )? as u64)
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other if other.starts_with('-') => {
                        return Err(format!("unknown flag: {other}"))
                    }
                    other if path.is_empty() => path = other.to_string(),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if path.is_empty() {
                return Err(USAGE.to_string());
            }
            Mode::Bundle {
                path,
                schedule,
                policy,
            }
        }
        "pipeline" => {
            let mut layers = None;
            let mut devices = None;
            let mut strategy = None;
            let mut group = 1usize;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--layers" => {
                        layers = Some(parse_usize("--layers", need_value(&mut argv, "--layers")?)?)
                    }
                    "--devices" => {
                        devices = Some(parse_usize(
                            "--devices",
                            need_value(&mut argv, "--devices")?,
                        )?)
                    }
                    "--strategy" => {
                        strategy = Some(parse_strategy(&need_value(&mut argv, "--strategy")?)?)
                    }
                    "--group" => group = parse_usize("--group", need_value(&mut argv, "--group")?)?,
                    "--budget" => {
                        budget = Budget::nodes(parse_usize(
                            "--budget",
                            need_value(&mut argv, "--budget")?,
                        )? as u64)
                    }
                    "--json" => json = true,
                    "--out" => out = Some(need_value(&mut argv, "--out")?),
                    "--help" | "-h" => return Err(USAGE.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            match (layers, devices, strategy) {
                (Some(layers), Some(devices), Some(strategy))
                    if layers > 0 && devices > 0 && group >= 1 =>
                {
                    Mode::Pipeline {
                        layers,
                        devices,
                        strategy,
                        group,
                    }
                }
                _ => return Err(USAGE.to_string()),
            }
        }
        "--help" | "-h" => return Err(USAGE.to_string()),
        other => return Err(format!("unknown mode: {other:?}\n{USAGE}")),
    };
    Ok(Args {
        mode,
        budget,
        json,
        out,
    })
}

/// One certified input, ready for rendering.
struct Item {
    name: String,
    kind: &'static str,
    placement: Placement,
    solved: Solved,
}

fn witness_to_json(witness: &Schedule) -> Value {
    Value::Arr(
        witness
            .lanes
            .iter()
            .map(|lane| {
                obj([
                    ("lane", lane.name.as_str().into()),
                    (
                        "ops",
                        Value::Arr(lane.ops.iter().map(|op| op.to_string().into()).collect()),
                    ),
                ])
            })
            .collect(),
    )
}

fn item_to_json(item: &Item) -> Value {
    let s = &item.solved;
    let c = &s.certificate;
    let (witness_makespan, witness_optimal, witness) = match c {
        Certificate::Improvable {
            witness_makespan,
            witness_optimal,
            witness,
            ..
        } => (
            Value::Num(*witness_makespan as f64),
            Value::Bool(*witness_optimal),
            witness_to_json(witness),
        ),
        _ => (Value::Null, Value::Null, Value::Null),
    };
    obj([
        ("name", item.name.as_str().into()),
        ("kind", item.kind.into()),
        (
            "placement",
            match item.placement {
                Placement::ByClass => "by-class",
                Placement::Fixed => "fixed",
            }
            .into(),
        ),
        ("status", c.status().into()),
        (
            "baseline_makespan",
            Value::Num(c.baseline_makespan() as f64),
        ),
        ("best_makespan", Value::Num(c.best_makespan() as f64)),
        ("lower_bound", Value::Num(s.lower_bound as f64)),
        ("optimal", Value::Bool(s.is_optimal())),
        ("witness_makespan", witness_makespan),
        ("witness_optimal", witness_optimal),
        ("witness", witness),
        ("nodes", Value::Num(s.nodes as f64)),
        ("memo_hits", Value::Num(s.memo_hits as f64)),
        ("pruned", Value::Num(s.pruned as f64)),
        ("delta_rescored", Value::Num(s.delta_rescored as f64)),
        (
            "delta_full_equivalent",
            Value::Num(s.delta_full_equivalent as f64),
        ),
        ("delta_checks", Value::Num(s.delta_checks as f64)),
    ])
}

fn item_to_human(item: &Item) -> String {
    let s = &item.solved;
    match &s.certificate {
        Certificate::Optimal { makespan } => format!(
            "{}: makespan {makespan} is OPTIMAL (lower bound {}, {} nodes)\n",
            item.name, s.lower_bound, s.nodes
        ),
        Certificate::Improvable {
            baseline,
            witness_makespan,
            witness_optimal,
            witness,
        } => {
            let mut out = format!(
                "{}: makespan {baseline} is IMPROVABLE -> witness {witness_makespan}{} \
                 (lower bound {}, {} nodes)\n",
                item.name,
                if *witness_optimal {
                    " (proven optimal)"
                } else {
                    ""
                },
                s.lower_bound,
                s.nodes
            );
            for lane in &witness.lanes {
                let ops: Vec<String> = lane.ops.iter().map(|op| op.to_string()).collect();
                out.push_str(&format!("  {}: {}\n", lane.name, ops.join(" ")));
            }
            out
        }
        Certificate::Unknown { lower, upper } => format!(
            "{}: budget exhausted, optimum in [{lower}, {upper}] ({} nodes)\n",
            item.name, s.nodes
        ),
    }
}

fn run_order_mode(
    layers: usize,
    k: usize,
    sync: SimTime,
    policy: CommPolicy,
    budget: &Budget,
) -> Result<Item, String> {
    let graph = TrainGraph::data_parallel(layers);
    let cost = TableCost::uniform(
        layers,
        LayerCost {
            sync_weight: sync,
            ..LayerCost::default()
        },
    );
    let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).map_err(|e| e.to_string())?;
    let (_, solved) =
        certify_order(&graph, &order, &cost, policy, budget).map_err(|e| e.to_string())?;
    Ok(Item {
        name: format!("reverse-first-k(l={layers}, k={k})"),
        kind: "order",
        placement: Placement::ByClass,
        solved,
    })
}

fn run_bundle_mode(
    path: &str,
    wanted: Option<&str>,
    policy: CommPolicy,
    budget: &Budget,
) -> Result<Vec<Item>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let bundle = ScheduleBundle::from_json_lenient(&text)
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    let graph = TrainGraph::new(bundle.graph.clone())
        .map_err(|e| format!("invalid graph configuration: {e}"))?;

    let mut items = Vec::new();
    for (name, order) in &bundle.orders {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        // Backward orders of a data-parallel graph certify against the
        // link lane the engine would add; anything else certifies as a
        // flat single-lane schedule.
        let solved = if graph.config().sync_weight_grads {
            let backward: Vec<_> = order.iter().copied().filter(|o| o.is_backward()).collect();
            certify_order(&graph, &backward, &UnitCost, policy, budget).map(|(_, s)| s)
        } else {
            let s = Schedule::single_lane(name, order.clone());
            certify_with(&graph, &s, &UnitCost, Placement::ByClass, budget)
        };
        items.push(Item {
            name: name.clone(),
            kind: "order",
            placement: Placement::ByClass,
            solved: solved.map_err(|e| format!("{name}: {e}"))?,
        });
    }
    for (name, schedule) in &bundle.schedules {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        let solved = certify_with(&graph, schedule, &UnitCost, Placement::ByClass, budget)
            .map_err(|e| format!("{name}: {e}"))?;
        items.push(Item {
            name: name.clone(),
            kind: "schedule",
            placement: Placement::ByClass,
            solved,
        });
    }
    if items.is_empty() {
        return Err(match wanted {
            Some(w) => format!("no order or schedule named {w:?} in the bundle"),
            None => "bundle holds no orders or schedules".to_string(),
        });
    }
    Ok(items)
}

fn run_pipeline_mode(
    layers: usize,
    devices: usize,
    strategy: Strategy,
    group: usize,
    budget: &Budget,
) -> Result<Item, String> {
    let (graph, schedule) = ooo_core::pipeline::op_level_schedule(layers, devices, strategy, group);
    // Device placement is part of the pipeline strategy: certify the
    // per-lane orderings only.
    let solved = certify_with(&graph, &schedule, &UnitCost, Placement::Fixed, budget)
        .map_err(|e| e.to_string())?;
    let name = match strategy {
        Strategy::ModelParallel => "model-parallel",
        Strategy::GPipe => "gpipe",
        Strategy::PipeDream => "pipedream",
        Strategy::Dapple => "dapple",
        Strategy::MegatronInterleaved { .. } => "megatron-interleaved",
        Strategy::OooPipe1 => "ooo-pipe1",
        Strategy::OooPipe2 => "ooo-pipe2",
    };
    Ok(Item {
        name: format!("{name}(l={layers}, d={devices}, g={group})"),
        kind: "pipeline",
        placement: Placement::Fixed,
        solved,
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let items = match &args.mode {
        Mode::Order {
            layers,
            k,
            sync,
            policy,
        } => run_order_mode(*layers, *k, *sync, *policy, &args.budget).map(|i| vec![i]),
        Mode::Bundle {
            path,
            schedule,
            policy,
        } => run_bundle_mode(path, schedule.as_deref(), *policy, &args.budget),
        Mode::Pipeline {
            layers,
            devices,
            strategy,
            group,
        } => run_pipeline_mode(*layers, *devices, *strategy, *group, &args.budget).map(|i| vec![i]),
    };
    let items = match items {
        Ok(items) => items,
        Err(msg) => {
            eprintln!("ooo-cert: {msg}");
            return ExitCode::from(2);
        }
    };

    let json_output = || {
        let docs: Vec<String> = items.iter().map(|i| item_to_json(i).to_pretty()).collect();
        if docs.len() == 1 {
            docs[0].clone()
        } else {
            format!("[\n{}\n]", docs.join(",\n"))
        }
    };
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, json_output() + "\n") {
            eprintln!("ooo-cert: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", json_output());
    } else {
        for i in &items {
            print!("{}", item_to_human(i));
        }
    }

    // A proven-improvable schedule is a finding; optimal and
    // budget-exhausted certificates are clean runs.
    if items
        .iter()
        .any(|i| matches!(i.solved.certificate, Certificate::Improvable { .. }))
    {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
