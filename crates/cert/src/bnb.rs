//! The branch-and-bound exact solver.
//!
//! Search states are partial placements built exclusively through
//! [`DeltaEval::place`] appends (and undone with
//! [`DeltaEval::unplace_last`]), so every node is scored incrementally:
//! an append's cone is the single new op, an O(deps) update. The
//! enumeration is *chronological semi-active* — a ready op is appended
//! to a lane and starts as early as its lane and dependencies allow —
//! which covers some optimal schedule for any regular objective, and
//! every reachable schedule exactly once up to append interleaving
//! (the visited-state memo collapses the interleavings).
//!
//! Soundness of the `Optimal` claim rests on three invariants:
//!
//! 1. completeness of the enumeration (above);
//! 2. validity of the node lower bounds — each is a bound on *any*
//!    completion of the partial placement, so pruning at
//!    `bound >= incumbent` never cuts a strict improvement;
//! 3. exact scoring — every incumbent improvement (and the input) is
//!    cross-checked against a full re-evaluation with tolerance 0.

use ooo_core::cost::CostModel;
use ooo_core::{Op, Schedule, SimTime, TrainGraph};
use ooo_verify::predict::{predict_makespan, DeltaEval};
use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};

use crate::{Budget, Certificate, Error, Placement, Result, Solved};

/// Largest certifiable instance: the visited-state memo keys placements
/// as a `u128` bitmask.
const MAX_OPS: usize = 128;

/// Resource class of a lane, inferred from the input schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneClass {
    Compute,
    Link,
    Mixed,
}

impl LaneClass {
    fn admits(self, op: Op) -> bool {
        match self {
            LaneClass::Mixed => true,
            LaneClass::Compute => op.is_compute(),
            LaneClass::Link => op.is_sync(),
        }
    }
}

/// Infers a lane's class from its contents; empty lanes fall back to
/// their name (the workspace convention names communication lanes
/// "link"/"nic").
fn lane_class(name: &str, ops: &[Op]) -> LaneClass {
    if ops.is_empty() {
        let lower = name.to_ascii_lowercase();
        return if lower.contains("link") || lower.contains("nic") {
            LaneClass::Link
        } else {
            LaneClass::Compute
        };
    }
    let sync = ops.iter().filter(|o| o.is_sync()).count();
    if sync == 0 {
        LaneClass::Compute
    } else if sync == ops.len() {
        LaneClass::Link
    } else {
        LaneClass::Mixed
    }
}

/// The certified instance: the op set of the input schedule with its
/// in-set dependency structure and the lane universe, all in dense set
/// indices (graph-index order, which is topological).
struct Instance {
    ops: Vec<Op>,
    dur: Vec<SimTime>,
    /// In-set dependencies / dependents per op.
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
    /// Static in-set earliest start (outside deps finish at time zero,
    /// matching partial-schedule semantics).
    est: Vec<SimTime>,
    /// Longest in-set dependency chain strictly after each op.
    tail: Vec<SimTime>,
    lane_names: Vec<String>,
    /// Symmetry group per lane: lanes of one group are interchangeable
    /// for every op that may occupy them.
    lane_group: Vec<u8>,
    /// Lanes each op may occupy under the chosen placement.
    allowed: Vec<Vec<usize>>,
    /// Capacity groups for the load bounds: `cap_lanes[g]` hold all of
    /// `cap_members[g]`'s work.
    cap_lanes: Vec<Vec<usize>>,
    cap_members: Vec<Vec<usize>>,
}

impl Instance {
    fn build(
        graph: &TrainGraph,
        schedule: &Schedule,
        cost: &impl CostModel,
        placement: Placement,
    ) -> std::result::Result<Instance, ooo_core::Error> {
        // The certified set, keyed by dense graph index.
        let mut in_lane: HashMap<usize, usize> = HashMap::new();
        for (li, lane) in schedule.lanes.iter().enumerate() {
            for &op in &lane.ops {
                let v = graph.op_index(op).ok_or(ooo_core::Error::UnknownOp(op))?;
                if in_lane.insert(v, li).is_some() {
                    return Err(ooo_core::Error::DuplicateOp(op));
                }
            }
        }
        let mut gidx: Vec<usize> = in_lane.keys().copied().collect();
        // Graph-index order is the canonical storage order, which is
        // topological — so ascending set indices are too.
        gidx.sort_unstable();
        let set_of: HashMap<usize, usize> = gidx.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let n = gidx.len();

        let ops: Vec<Op> = gidx.iter().map(|&v| graph.ops()[v]).collect();
        let dur: Vec<SimTime> = ops.iter().map(|&op| cost.duration(op)).collect();
        let mut deps = vec![Vec::new(); n];
        let mut dependents = vec![Vec::new(); n];
        for (i, &v) in gidx.iter().enumerate() {
            for &d in graph.dep_indices(v) {
                if let Some(&j) = set_of.get(&d) {
                    deps[i].push(j);
                    dependents[j].push(i);
                }
            }
        }
        let mut est = vec![0; n];
        for i in 0..n {
            est[i] = deps[i].iter().map(|&d| est[d] + dur[d]).max().unwrap_or(0);
        }
        let mut tail = vec![0; n];
        for i in (0..n).rev() {
            tail[i] = dependents[i]
                .iter()
                .map(|&d| dur[d] + tail[d])
                .max()
                .unwrap_or(0);
        }

        let lane_names: Vec<String> = schedule.lanes.iter().map(|l| l.name.clone()).collect();
        let classes: Vec<LaneClass> = schedule
            .lanes
            .iter()
            .map(|l| lane_class(&l.name, &l.ops))
            .collect();
        let (lane_group, allowed, cap_lanes, cap_members) = match placement {
            Placement::ByClass => {
                let lane_group: Vec<u8> = classes
                    .iter()
                    .map(|c| match c {
                        LaneClass::Compute => 0,
                        LaneClass::Link => 1,
                        LaneClass::Mixed => 2,
                    })
                    .collect();
                let allowed: Vec<Vec<usize>> = ops
                    .iter()
                    .map(|&op| {
                        (0..classes.len())
                            .filter(|&l| classes[l].admits(op))
                            .collect()
                    })
                    .collect();
                // Two capacity groups: compute work on compute-capable
                // lanes, sync work on link-capable lanes. A mixed lane
                // counts toward both — that only adds capacity, so the
                // bounds stay valid.
                let mut cap_lanes = Vec::new();
                let mut cap_members = Vec::new();
                for class_is_sync in [false, true] {
                    let lanes: Vec<usize> = (0..classes.len())
                        .filter(|&l| {
                            matches!(classes[l], LaneClass::Mixed)
                                || (classes[l] == LaneClass::Link) == class_is_sync
                        })
                        .collect();
                    let members: Vec<usize> = (0..n)
                        .filter(|&i| ops[i].is_sync() == class_is_sync)
                        .collect();
                    if !lanes.is_empty() && !members.is_empty() {
                        cap_lanes.push(lanes);
                        cap_members.push(members);
                    }
                }
                (lane_group, allowed, cap_lanes, cap_members)
            }
            Placement::Fixed => {
                // Every lane is its own symmetry and capacity group.
                let lane_group: Vec<u8> = (0..classes.len()).map(|l| l as u8).collect();
                let allowed: Vec<Vec<usize>> = gidx.iter().map(|v| vec![in_lane[v]]).collect();
                let mut cap_lanes = Vec::new();
                let mut cap_members = Vec::new();
                for l in 0..classes.len() {
                    let members: Vec<usize> = (0..n).filter(|&i| in_lane[&gidx[i]] == l).collect();
                    if !members.is_empty() {
                        cap_lanes.push(vec![l]);
                        cap_members.push(members);
                    }
                }
                (lane_group, allowed, cap_lanes, cap_members)
            }
        };

        Ok(Instance {
            ops,
            dur,
            deps,
            dependents,
            est,
            tail,
            lane_names,
            lane_group,
            allowed,
            cap_lanes,
            cap_members,
        })
    }

    /// The root lower bound: the in-set critical path and the static
    /// per-capacity-group head/tail load bounds (the set-restricted
    /// analogue of [`ooo_core::bounds::lower_bound`], valid for partial
    /// schedules where the whole-graph bound is not).
    fn static_lower_bound(&self) -> SimTime {
        let n = self.ops.len();
        let mut lb = 0;
        for i in 0..n {
            lb = lb.max(self.est[i] + self.dur[i] + self.tail[i]);
        }
        for (g, lanes) in self.cap_lanes.iter().enumerate() {
            let m = lanes.len().max(1) as SimTime;
            let mut work: SimTime = 0;
            let mut head = SimTime::MAX;
            let mut tailmin = SimTime::MAX;
            for &i in &self.cap_members[g] {
                let d = self.dur[i];
                if d == 0 {
                    continue;
                }
                work += d;
                head = head.min(self.est[i]);
                tailmin = tailmin.min(self.tail[i]);
            }
            if work > 0 {
                lb = lb.max(head + work.div_ceil(m) + tailmin);
            }
        }
        lb
    }
}

type MemoKey = (u128, Vec<(u8, SimTime)>, Vec<(u32, SimTime)>);

struct Solver<'a, 'g, C: CostModel> {
    inst: &'a Instance,
    graph: &'g TrainGraph,
    cost: &'a C,
    de: DeltaEval<'g>,
    /// Bitmask of placed set indices.
    placed: u128,
    n_placed: usize,
    /// Unplaced in-set dependency count per op (ready when zero).
    remaining: Vec<usize>,
    /// Finish time per placed op.
    ends: Vec<SimTime>,
    incumbent: SimTime,
    witness: Option<Schedule>,
    root_lb: SimTime,
    max_nodes: u64,
    deadline: Option<std::time::Instant>,
    nodes: u64,
    memo: HashSet<MemoKey>,
    memo_hits: u64,
    pruned: u64,
    delta_checks: u64,
    exhausted: bool,
    /// Set when the incumbent meets the root bound: nothing better can
    /// exist, so the search is complete regardless of what remains.
    done: bool,
}

impl<C: CostModel> Solver<'_, '_, C> {
    fn is_placed(&self, i: usize) -> bool {
        self.placed >> i & 1 == 1
    }

    fn dfs(&mut self) -> Result<()> {
        if self.n_placed == self.inst.ops.len() {
            let m = self.de.makespan();
            if m < self.incumbent {
                self.incumbent = m;
                let w = self.de.to_schedule();
                // Exercise the delta == full invariant on every
                // incumbent before trusting it as a witness.
                let full = predict_makespan(self.graph, &w, self.cost)?.makespan();
                self.delta_checks += 1;
                if full != m {
                    return Err(Error::DeltaMismatch { delta: m, full });
                }
                self.witness = Some(w);
                if m <= self.root_lb {
                    self.done = true;
                }
            }
            return Ok(());
        }
        self.nodes += 1;
        // Node cap first (logical, deterministic); the wall-clock
        // deadline is only polled when one is set, so purely logical
        // budgets never touch the clock.
        if self.nodes > self.max_nodes
            || self
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
        {
            self.exhausted = true;
            return Ok(());
        }
        if self.lower_bound_here() >= self.incumbent {
            self.pruned += 1;
            return Ok(());
        }
        if !self.memo.insert(self.memo_key()) {
            self.memo_hits += 1;
            return Ok(());
        }
        for (i, lane) in self.children() {
            let op = self.inst.ops[i];
            self.de.place(lane, op).expect(
                "branch-and-bound appends cannot deadlock: all dependencies \
                 are placed and no dependent is",
            );
            self.placed |= 1 << i;
            self.n_placed += 1;
            self.ends[i] = self.de.finish_of(op).expect("op was just placed");
            for &d in &self.inst.dependents[i] {
                self.remaining[d] -= 1;
            }
            let r = self.dfs();
            for &d in &self.inst.dependents[i] {
                self.remaining[d] += 1;
            }
            self.n_placed -= 1;
            self.placed &= !(1 << i);
            let popped = self.de.unplace_last(lane);
            debug_assert_eq!(popped, Some(op));
            r?;
            if self.exhausted || self.done {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Child moves of the current node: every ready op on every allowed
    /// lane, with interchangeable lanes (same symmetry group, same
    /// availability) collapsed to one representative, ordered by
    /// earliest start then longest remaining chain — so depth-first
    /// descent reaches good incumbents early.
    fn children(&self) -> Vec<(usize, usize)> {
        let mut kids: Vec<(SimTime, Reverse<SimTime>, usize, usize)> = Vec::new();
        for i in 0..self.inst.ops.len() {
            if self.is_placed(i) || self.remaining[i] != 0 {
                continue;
            }
            let ready = self.inst.deps[i]
                .iter()
                .map(|&d| self.ends[d])
                .max()
                .unwrap_or(0);
            let mut seen: Vec<(u8, SimTime)> = Vec::new();
            for &l in &self.inst.allowed[i] {
                let avail = self.de.lane_available(l);
                let key = (self.inst.lane_group[l], avail);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                kids.push((
                    ready.max(avail),
                    Reverse(self.inst.dur[i] + self.inst.tail[i]),
                    i,
                    l,
                ));
            }
        }
        kids.sort_unstable();
        kids.into_iter().map(|(_, _, i, l)| (i, l)).collect()
    }

    /// A lower bound on any completion of the current partial
    /// placement: the largest of
    ///
    /// - the placed makespan (appends never shrink it),
    /// - the dynamic critical path — each unplaced op's earliest finish
    ///   (dependencies, least-loaded allowed lane, static est) plus its
    ///   in-set tail,
    /// - per capacity group, the average-load bound
    ///   `ceil((sum of lane availabilities + remaining work) / lanes)`,
    /// - per capacity group, the energetic bound
    ///   `min est + ceil(remaining work / lanes) + min tail` over its
    ///   positive-duration unplaced members.
    fn lower_bound_here(&self) -> SimTime {
        let n = self.inst.ops.len();
        let mut lb = self.de.makespan();
        let mut fin = vec![0; n];
        for i in 0..n {
            if self.is_placed(i) {
                fin[i] = self.ends[i];
            } else {
                let mut est = self.inst.deps[i].iter().map(|&d| fin[d]).max().unwrap_or(0);
                let lane_floor = self.inst.allowed[i]
                    .iter()
                    .map(|&l| self.de.lane_available(l))
                    .min()
                    .unwrap_or(0);
                est = est.max(lane_floor).max(self.inst.est[i]);
                fin[i] = est + self.inst.dur[i];
            }
            lb = lb.max(fin[i] + self.inst.tail[i]);
        }
        for (g, lanes) in self.inst.cap_lanes.iter().enumerate() {
            let m = lanes.len().max(1) as SimTime;
            let sum_avail: SimTime = lanes.iter().map(|&l| self.de.lane_available(l)).sum();
            let mut work: SimTime = 0;
            let mut head = SimTime::MAX;
            let mut tailmin = SimTime::MAX;
            for &i in &self.inst.cap_members[g] {
                if self.is_placed(i) {
                    continue;
                }
                let d = self.inst.dur[i];
                if d == 0 {
                    continue;
                }
                work += d;
                head = head.min(fin[i] - d);
                tailmin = tailmin.min(self.inst.tail[i]);
            }
            if work > 0 {
                lb = lb.max((sum_avail + work).div_ceil(m));
                lb = lb.max(head + work.div_ceil(m) + tailmin);
            }
        }
        lb
    }

    /// Two states with equal keys have identical completion sets: the
    /// placed op set, the availability profile per symmetry group, and
    /// the finish times of *open* placed ops (those an unplaced in-set
    /// dependent still waits on) determine every future start time.
    fn memo_key(&self) -> MemoKey {
        let mut lanes: Vec<(u8, SimTime)> = (0..self.inst.lane_names.len())
            .map(|l| (self.inst.lane_group[l], self.de.lane_available(l)))
            .collect();
        lanes.sort_unstable();
        let mut open: Vec<(u32, SimTime)> = Vec::new();
        for i in 0..self.inst.ops.len() {
            if self.is_placed(i) && self.inst.dependents[i].iter().any(|&d| !self.is_placed(d)) {
                open.push((i as u32, self.ends[i]));
            }
        }
        (self.placed, lanes, open)
    }
}

/// Certifies `schedule` over `placement`'s schedule space. See
/// [`crate::certify_with`].
pub(crate) fn solve<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
    placement: Placement,
    budget: &Budget,
) -> Result<Solved> {
    // Score the input incrementally and cross-check against the full
    // predictor: every certified instance exercises delta == full.
    let input = DeltaEval::new(graph, schedule, cost)?;
    let input_m = input.makespan();
    let full = predict_makespan(graph, schedule, cost)?.makespan();
    if input_m != full {
        return Err(Error::DeltaMismatch {
            delta: input_m,
            full,
        });
    }
    let mut delta_rescored = input.rescored();
    let mut delta_full_equivalent = input.full_equivalent();
    let mut delta_checks = 1;

    let inst = Instance::build(graph, schedule, cost, placement)?;
    let root_lb = inst.static_lower_bound();

    // Root shortcut: a schedule meeting the set's lower bound is
    // optimal without any search.
    if input_m <= root_lb {
        return Ok(Solved {
            certificate: Certificate::Optimal { makespan: input_m },
            lower_bound: root_lb,
            nodes: 0,
            memo_hits: 0,
            pruned: 0,
            delta_rescored,
            delta_full_equivalent,
            delta_checks,
        });
    }
    // The memo keys placements as a u128; larger instances report their
    // static bracket instead of searching.
    if inst.ops.len() > MAX_OPS {
        return Ok(Solved {
            certificate: Certificate::Unknown {
                lower: root_lb,
                upper: input_m,
            },
            lower_bound: root_lb,
            nodes: 0,
            memo_hits: 0,
            pruned: 0,
            delta_rescored,
            delta_full_equivalent,
            delta_checks,
        });
    }

    let n = inst.ops.len();
    let remaining: Vec<usize> = (0..n).map(|i| inst.deps[i].len()).collect();
    let mut solver = Solver {
        de: DeltaEval::empty(graph, inst.lane_names.iter().cloned(), cost),
        inst: &inst,
        graph,
        cost,
        placed: 0,
        n_placed: 0,
        remaining,
        ends: vec![0; n],
        incumbent: input_m,
        witness: None,
        root_lb,
        max_nodes: budget.max_nodes,
        deadline: budget.deadline,
        nodes: 0,
        memo: HashSet::new(),
        memo_hits: 0,
        pruned: 0,
        delta_checks: 0,
        exhausted: false,
        done: false,
    };
    solver.dfs()?;

    delta_rescored += solver.de.rescored();
    delta_full_equivalent += solver.de.full_equivalent();
    delta_checks += solver.delta_checks;

    let complete = solver.done || !solver.exhausted;
    let certificate = match solver.witness {
        // A witness is a proof of improvability no matter how the
        // search ended; completeness upgrades it to proven-optimal.
        Some(witness) => Certificate::Improvable {
            baseline: input_m,
            witness_makespan: solver.incumbent,
            witness_optimal: complete,
            witness,
        },
        None if complete => Certificate::Optimal { makespan: input_m },
        None => Certificate::Unknown {
            lower: root_lb,
            upper: input_m,
        },
    };
    Ok(Solved {
        certificate,
        lower_bound: root_lb,
        nodes: solver.nodes,
        memo_hits: solver.memo_hits,
        pruned: solver.pruned,
        delta_rescored,
        delta_full_equivalent,
        delta_checks,
    })
}
