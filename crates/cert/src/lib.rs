//! # ooo-cert — exact schedule-optimality certification
//!
//! The paper's Section 2 scheduling problem is NP-hard, so everything
//! else in this workspace is a heuristic: the three schedulers
//! approximate, [`ooo_tune`](../ooo_tune/index.html) local-searches, and
//! [`ooo_core::bounds`] brackets the result from below. This crate
//! closes the loop with a static analysis pass that **proves** schedule
//! optimality (or refutes it with a counter-example): a branch-and-bound
//! exact solver over the *union graph* — per-lane program order plus the
//! dependency edges — of the certified operation set.
//!
//! ## How the solver works
//!
//! - **Branching** is chronological semi-active enumeration: a *ready*
//!   op (all in-set dependencies placed) is appended to a lane and
//!   starts at `max(lane available, dependencies finished)`. For
//!   makespan some optimal schedule is always semi-active, and every
//!   semi-active schedule is reached by appending along a topological
//!   order of its union graph, so the enumeration is complete.
//! - **Scoring** is incremental: every partial placement is maintained
//!   by [`ooo_verify::predict::DeltaEval`], which re-scores only the
//!   affected cone of each append. Every certificate cross-checks the
//!   delta result against a full re-evaluation
//!   ([`ooo_verify::predict::predict_makespan`]) with tolerance 0 — a
//!   disagreement aborts with [`Error::DeltaMismatch`] rather than
//!   emitting an unsound proof.
//! - **Pruning** combines a dynamic critical-path bound, the per-class
//!   head/tail load bounds of [`ooo_core::bounds::class_load_bound`]
//!   recomputed against live lane availabilities, lane-symmetry
//!   dominance (interchangeable same-class lanes with equal
//!   availability), and a visited-state memo.
//!
//! ## Certificates
//!
//! [`Certificate`] is three-valued: [`Certificate::Optimal`] (no
//! schedule of the certified space beats the input),
//! [`Certificate::Improvable`] (a strictly better *witness* schedule,
//! itself optimal when the search completed), or
//! [`Certificate::Unknown`] with certified lower/upper bounds when the
//! node budget runs out. The certified space is controlled by
//! [`Placement`]: `ByClass` lets every op move to any lane of its
//! resource class (compute vs. communication link), `Fixed` keeps the
//! input's lane assignment and certifies the per-lane *orderings* only
//! — the right notion for pipeline schedules whose device placement is
//! part of the problem statement.
//!
//! ```
//! use ooo_cert::{certify, Budget, Certificate};
//! use ooo_core::cost::UnitCost;
//! use ooo_core::{Schedule, TrainGraph};
//!
//! let graph = TrainGraph::single_gpu(3);
//! let s = Schedule::single_lane("gpu", graph.conventional_backprop());
//! let solved = certify(&graph, &s, &UnitCost, &Budget::default()).unwrap();
//! assert!(matches!(solved.certificate, Certificate::Optimal { .. }));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ooo_core::cost::CostModel;
use ooo_core::datapar::CommPolicy;
use ooo_core::{Op, Schedule, SimTime, TrainGraph};
use std::fmt;

mod bnb;

/// Errors of the certification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input schedule does not evaluate (unknown/duplicate ops,
    /// deadlocked lanes, malformed configuration).
    Core(ooo_core::Error),
    /// The incremental delta evaluation disagreed with a full
    /// re-evaluation — the solver refuses to emit a certificate built
    /// on inconsistent scores.
    DeltaMismatch {
        /// Makespan reported by the incremental evaluator.
        delta: SimTime,
        /// Makespan of the full re-evaluation of the same placement.
        full: SimTime,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::DeltaMismatch { delta, full } => write!(
                f,
                "delta evaluation diverged from full re-evaluation: delta {delta} vs full {full}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::DeltaMismatch { .. } => None,
        }
    }
}

impl From<ooo_core::Error> for Error {
    fn from(e: ooo_core::Error) -> Self {
        Error::Core(e)
    }
}

/// Result alias for certification.
pub type Result<T> = std::result::Result<T, Error>;

/// Which schedule space the certificate quantifies over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Any op may occupy any lane of its resource class: compute ops on
    /// compute lanes, synchronizations on link lanes (a lane carrying
    /// both classes in the input admits both). This is the full
    /// scheduling freedom of the single-GPU and data-parallel engines.
    #[default]
    ByClass,
    /// Every op stays on the lane the input schedule assigns it; only
    /// the per-lane orderings vary. Pipeline schedules certify under
    /// this placement — device assignment is part of the problem
    /// statement, so a cross-device witness would be meaningless.
    Fixed,
}

/// Search budget. The primary limit is the number of branch-and-bound
/// nodes the solver may expand — a *logical* budget, so certificates
/// stay byte-deterministic across machines. An optional wall-clock
/// deadline can back it up for serving contexts; past the deadline the
/// search stops at the next node and reports best-so-far, which trades
/// determinism for latency, so keep `deadline` as a safety net around
/// `max_nodes`, not a substitute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum branch-and-bound nodes to expand before giving up with
    /// [`Certificate::Unknown`].
    pub max_nodes: u64,
    /// Optional wall-clock cutoff, polled cooperatively at every node
    /// expansion. `None` (the default) keeps the search purely logical.
    pub deadline: Option<std::time::Instant>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_nodes: 200_000,
            deadline: None,
        }
    }
}

impl Budget {
    /// A budget capped at `max_nodes` expanded nodes.
    pub fn nodes(max_nodes: u64) -> Self {
        Budget {
            max_nodes,
            ..Budget::default()
        }
    }

    /// The same budget with a wall-clock cutoff attached.
    pub fn with_deadline(self, deadline: std::time::Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            ..self
        }
    }
}

/// The three-valued outcome of certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The input's makespan is exactly optimal: the exhaustive search
    /// found no schedule in the certified space that beats it.
    Optimal {
        /// The proven-optimal makespan.
        makespan: SimTime,
    },
    /// A strictly better schedule exists; `witness` realizes
    /// `witness_makespan` (cross-checked delta == full). When
    /// `witness_optimal` the search completed and the witness is itself
    /// proven optimal.
    Improvable {
        /// The input schedule's makespan.
        baseline: SimTime,
        /// The witness schedule's makespan (`< baseline`).
        witness_makespan: SimTime,
        /// Whether the witness is proven optimal (search completed).
        witness_optimal: bool,
        /// A concrete schedule realizing `witness_makespan`.
        witness: Schedule,
    },
    /// The node budget ran out before the space was exhausted; the
    /// optimum is certified to lie in `[lower, upper]`.
    Unknown {
        /// Certified lower bound on any schedule of the space.
        lower: SimTime,
        /// Best makespan realized so far (the input's, if nothing
        /// better was found).
        upper: SimTime,
    },
}

impl Certificate {
    /// Short status tag: `"optimal"`, `"improvable"`, or `"unknown"`.
    pub fn status(&self) -> &'static str {
        match self {
            Certificate::Optimal { .. } => "optimal",
            Certificate::Improvable { .. } => "improvable",
            Certificate::Unknown { .. } => "unknown",
        }
    }

    /// The best makespan the certificate vouches for: the proven
    /// optimum, the witness makespan, or the `Unknown` upper bound.
    pub fn best_makespan(&self) -> SimTime {
        match *self {
            Certificate::Optimal { makespan } => makespan,
            Certificate::Improvable {
                witness_makespan, ..
            } => witness_makespan,
            Certificate::Unknown { upper, .. } => upper,
        }
    }

    /// The input schedule's makespan (for `Unknown`, the upper bound —
    /// the input is the best schedule realized when no witness exists).
    pub fn baseline_makespan(&self) -> SimTime {
        match *self {
            Certificate::Optimal { makespan } => makespan,
            Certificate::Improvable { baseline, .. } => baseline,
            Certificate::Unknown { upper, .. } => upper,
        }
    }
}

/// A certificate plus the search statistics that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solved {
    /// The certificate.
    pub certificate: Certificate,
    /// Static lower bound on the certified space (root node bound):
    /// the largest of the in-set critical path and the per-class
    /// head/tail load bounds.
    pub lower_bound: SimTime,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Nodes cut by the visited-state memo.
    pub memo_hits: u64,
    /// Nodes cut by the lower-bound test.
    pub pruned: u64,
    /// Ops re-scored by incremental delta evaluation across the run.
    pub delta_rescored: u64,
    /// Ops a full re-evaluation would have scored over the same edits.
    pub delta_full_equivalent: u64,
    /// Delta-vs-full cross-checks performed (input + every incumbent
    /// improvement); each demanded exact agreement.
    pub delta_checks: u64,
}

impl Solved {
    /// `true` when the input was proven optimal.
    pub fn is_optimal(&self) -> bool {
        matches!(self.certificate, Certificate::Optimal { .. })
    }

    /// How many ops full re-evaluation would have scored per op the
    /// delta evaluator actually re-scored (the measured speedup of
    /// delta evaluation; ≥ 1.0 by construction).
    pub fn delta_speedup(&self) -> f64 {
        if self.delta_rescored == 0 {
            return 1.0;
        }
        self.delta_full_equivalent as f64 / self.delta_rescored as f64
    }
}

/// Certifies `schedule` against all same-class lane placements
/// ([`Placement::ByClass`]) under the default interpretation of its
/// lanes. See [`certify_with`].
///
/// # Errors
///
/// [`Error::Core`] when the input does not evaluate,
/// [`Error::DeltaMismatch`] if incremental and full evaluation ever
/// disagree.
pub fn certify<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
    budget: &Budget,
) -> Result<Solved> {
    certify_with(graph, schedule, cost, Placement::ByClass, budget)
}

/// Certifies `schedule` over the space selected by `placement`.
///
/// The certified operation set is exactly the set of ops `schedule`
/// mentions (partial schedules certify against partial-schedule
/// semantics: dependencies outside the set are treated as finished at
/// time zero, matching the predictor and the simulator). Instances
/// larger than 128 ops return [`Certificate::Unknown`] with the static
/// bounds instead of searching.
///
/// # Errors
///
/// [`Error::Core`] when the input does not evaluate,
/// [`Error::DeltaMismatch`] if incremental and full evaluation ever
/// disagree.
pub fn certify_with<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
    placement: Placement,
    budget: &Budget,
) -> Result<Solved> {
    bnb::solve(graph, schedule, cost, placement, budget)
}

/// Certifies the data-parallel realization of a backward `order`:
/// builds the two-lane schedule
/// [`ooo_verify::predict::datapar_schedule`] reconstructs for the order
/// under `policy`, certifies it [`Placement::ByClass`], and returns
/// both.
///
/// # Errors
///
/// Propagates [`Error::Core`] when `order` is not a valid partial
/// order of `graph`, plus the [`certify_with`] errors.
pub fn certify_order<C: CostModel>(
    graph: &TrainGraph,
    order: &[Op],
    cost: &C,
    policy: CommPolicy,
    budget: &Budget,
) -> Result<(Schedule, Solved)> {
    let schedule = ooo_verify::predict::datapar_schedule(graph, order, cost, policy)?;
    let solved = certify_with(graph, &schedule, cost, Placement::ByClass, budget)?;
    Ok((schedule, solved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::{LayerCost, TableCost, UnitCost};
    use ooo_core::op::LayerId;

    /// The tuner's worst-case fixture: all dW/U work piled at the end
    /// of the sub lane.
    fn lazy_two_lane(l: usize) -> (TrainGraph, Schedule) {
        let graph = TrainGraph::single_gpu(l);
        let mut main = vec![Op::Loss];
        for i in (2..=l).rev() {
            main.push(Op::OutputGrad(LayerId(i)));
        }
        for i in 1..=l {
            main.push(Op::Forward(LayerId(i)));
        }
        let mut sub = Vec::new();
        for i in 1..=l {
            sub.push(Op::WeightGrad(LayerId(i)));
            sub.push(Op::Update(LayerId(i)));
        }
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        (graph, s)
    }

    /// `single_gpu(3)` with a 5-unit `dW_3` queued at the head of the
    /// sub lane: `dW_1` lands at 7 and the forward chain waits, for a
    /// makespan of 10 against an optimum of 7 (move `dW_1`/`dW_2` onto
    /// the main lane between `dO_2` and the forwards).
    fn heavy_dw3() -> (TrainGraph, TableCost, Schedule) {
        let g = TrainGraph::single_gpu(3);
        let mut cost = TableCost::uniform(3, LayerCost::default());
        cost.layer_mut(LayerId(3)).weight_grad = 5;
        let mut s = Schedule::new();
        s.add_lane(
            "main",
            vec![
                Op::Loss,
                Op::OutputGrad(LayerId(3)),
                Op::OutputGrad(LayerId(2)),
                Op::Forward(LayerId(1)),
                Op::Forward(LayerId(2)),
                Op::Forward(LayerId(3)),
            ],
        );
        s.add_lane(
            "sub",
            vec![
                Op::WeightGrad(LayerId(3)),
                Op::Update(LayerId(3)),
                Op::WeightGrad(LayerId(2)),
                Op::Update(LayerId(2)),
                Op::WeightGrad(LayerId(1)),
                Op::Update(LayerId(1)),
            ],
        );
        (g, cost, s)
    }

    #[test]
    fn single_lane_conventional_is_certified_optimal() {
        // On one lane the conventional order meets the work bound, so
        // the root shortcut proves optimality without expanding nodes.
        let g = TrainGraph::single_gpu(4);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let solved = certify(&g, &s, &UnitCost, &Budget::default()).unwrap();
        assert!(solved.is_optimal(), "{:?}", solved.certificate);
        assert_eq!(solved.nodes, 0);
        // 3 dO + 4 dW + 4 F, one unit each.
        assert_eq!(solved.certificate.best_makespan(), 11);
        assert!(solved.delta_checks >= 1);
    }

    #[test]
    fn lazy_two_lane_is_already_optimal_under_unit_cost() {
        // Free updates let the dW chain interleave at no cost: the
        // "lazy" fixture meets its critical path, and the solver proves
        // it rather than guessing from the heuristic's failure to
        // improve it.
        let (g, s) = lazy_two_lane(4);
        let solved = certify(&g, &s, &UnitCost, &Budget::default()).unwrap();
        assert!(solved.is_optimal(), "{:?}", solved.certificate);
        assert_eq!(solved.certificate.best_makespan(), 8);
    }

    #[test]
    fn bad_schedule_is_refuted_with_an_optimal_witness() {
        let (g, cost, s) = heavy_dw3();
        let solved = certify(&g, &s, &cost, &Budget::default()).unwrap();
        match &solved.certificate {
            Certificate::Improvable {
                baseline,
                witness_makespan,
                witness_optimal,
                witness,
            } => {
                assert_eq!(*baseline, 10);
                assert_eq!(*witness_makespan, 7);
                assert!(*witness_optimal);
                assert!(solved.lower_bound <= *witness_makespan);
                // The witness certifies Optimal in its own right.
                let again = certify(&g, witness, &cost, &Budget::default()).unwrap();
                assert!(again.is_optimal(), "{:?}", again.certificate);
                assert_eq!(again.certificate.best_makespan(), *witness_makespan);
            }
            other => panic!("expected Improvable, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_reports_certified_bounds() {
        let (g, cost, s) = heavy_dw3();
        let solved = certify(&g, &s, &cost, &Budget::nodes(1)).unwrap();
        match solved.certificate {
            Certificate::Unknown { lower, upper } => {
                assert!(lower <= upper);
                assert_eq!(lower, solved.lower_bound);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_reports_certified_bounds() {
        // heavy_dw3 needs real search (the root shortcut does not
        // apply), so an already-expired deadline stops it at the first
        // node with a valid bracket instead of a long run.
        let (g, cost, s) = heavy_dw3();
        let budget = Budget::default()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let solved = certify(&g, &s, &cost, &budget).unwrap();
        match solved.certificate {
            Certificate::Unknown { lower, upper } => {
                assert!(lower <= upper);
                assert_eq!(upper, 10);
                assert_eq!(lower, solved.lower_bound);
            }
            Certificate::Improvable {
                witness_optimal, ..
            } => assert!(!witness_optimal),
            other => panic!("expected best-so-far bracket, got {other:?}"),
        }
        // A generous deadline changes nothing about the certificate.
        let relaxed = Budget::default()
            .with_deadline(std::time::Instant::now() + std::time::Duration::from_secs(600));
        let solved = certify(&g, &s, &cost, &relaxed).unwrap();
        assert_eq!(solved.certificate.best_makespan(), 7);
    }

    #[test]
    fn fixed_placement_certifies_per_lane_orderings_only() {
        // Under Fixed placement the dW work may not migrate to the main
        // lane, so the best reordering of the sub lane (dW_2, dW_1,
        // then the heavy dW_3) reaches 9, not the cross-lane optimum 7.
        let (g, cost, s) = heavy_dw3();
        let solved = certify_with(&g, &s, &cost, Placement::Fixed, &Budget::default()).unwrap();
        match &solved.certificate {
            Certificate::Improvable {
                baseline,
                witness_makespan,
                witness_optimal,
                witness,
            } => {
                assert_eq!(*baseline, 10);
                assert_eq!(*witness_makespan, 9);
                assert!(*witness_optimal);
                // The witness preserves the input's lane assignment.
                for (li, lane) in witness.lanes.iter().enumerate() {
                    for &op in &lane.ops {
                        assert!(s.lanes[li].ops.contains(&op), "{op:?} moved off lane {li}");
                    }
                }
            }
            other => panic!("expected Improvable, got {other:?}"),
        }
    }

    #[test]
    fn certification_is_deterministic() {
        let (g, s) = lazy_two_lane(3);
        let cost = TableCost::uniform(
            3,
            LayerCost {
                forward: 2,
                weight_grad: 3,
                update: 1,
                ..LayerCost::default()
            },
        );
        let a = certify(&g, &s, &cost, &Budget::default()).unwrap();
        let b = certify(&g, &s, &cost, &Budget::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn certify_order_brackets_the_datapar_realization() {
        let l = 3;
        let g = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 2,
                ..LayerCost::default()
            },
        );
        let order = ooo_core::reverse_k::reverse_first_k(&g, 1, None::<(u64, &TableCost)>).unwrap();
        let (schedule, solved) = certify_order(
            &g,
            &order,
            &cost,
            CommPolicy::FifoCompletion,
            &Budget::default(),
        )
        .unwrap();
        assert!(!schedule.lanes.is_empty());
        let input = ooo_verify::predict::predict_makespan(&g, &schedule, &cost)
            .unwrap()
            .makespan();
        assert!(solved.lower_bound <= solved.certificate.best_makespan());
        assert!(solved.certificate.best_makespan() <= input);
    }

    #[test]
    fn empty_schedule_is_vacuously_optimal() {
        let g = TrainGraph::single_gpu(2);
        let s = Schedule::new();
        let solved = certify(&g, &s, &UnitCost, &Budget::default()).unwrap();
        assert_eq!(solved.certificate, Certificate::Optimal { makespan: 0 });
    }
}
