//! Property-based tests of the tensor substrate.
//!
//! The key invariant is *adjointness*: the backward kernels must be the
//! mathematical adjoints of the forward kernels, i.e.
//! `<f(x), y> = <x, f_grad(y)>`. Adjointness plus determinism is what
//! makes gradient results independent of schedule order.

use ooo_tensor::conv::{conv2d, conv2d_input_grad, conv2d_weight_grad, Conv2dParams};
use ooo_tensor::ops::{
    add, matmul, matmul_nt, matmul_tn, relu, relu_grad, softmax_rows, sub, sum, transpose,
};
use ooo_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-2.0f32..2.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &dims).expect("sized"))
}

fn dot(a: &Tensor, b: &Tensor) -> f32 {
    a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn add_commutes_and_sub_inverts(
        a in tensor_strategy(vec![3, 4]),
        b in tensor_strategy(vec![3, 4]),
    ) {
        let ab = add(&a, &b).unwrap();
        let ba = add(&b, &a).unwrap();
        prop_assert_eq!(ab.data().to_vec(), ba.data().to_vec());
        let back = sub(&ab, &b).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_identity(a in tensor_strategy(vec![4, 4])) {
        let i = Tensor::eye(4);
        let right = matmul(&a, &i).unwrap();
        let left = matmul(&i, &a).unwrap();
        prop_assert_eq!(right.data(), a.data());
        prop_assert_eq!(left.data(), a.data());
    }

    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(vec![3, 5]),
        b in tensor_strategy(vec![5, 4]),
    ) {
        // (A B)^T == B^T A^T.
        let ab_t = transpose(&matmul(&a, &b).unwrap()).unwrap();
        let bt_at = matmul(&transpose(&b).unwrap(), &transpose(&a).unwrap()).unwrap();
        prop_assert!(ab_t.max_abs_diff(&bt_at).unwrap() < 1e-4);
    }

    #[test]
    fn fused_transpose_matmuls_consistent(
        a in tensor_strategy(vec![3, 5]),
        b in tensor_strategy(vec![4, 5]),
        c in tensor_strategy(vec![3, 4]),
    ) {
        // matmul_nt(a, b) == a x b^T; matmul_tn(a, c)... checked against
        // explicit transposes.
        let nt = matmul_nt(&a, &b).unwrap();
        let explicit = matmul(&a, &transpose(&b).unwrap()).unwrap();
        prop_assert!(nt.max_abs_diff(&explicit).unwrap() < 1e-4);
        let tn = matmul_tn(&a, &c).unwrap();
        let explicit = matmul(&transpose(&a).unwrap(), &c).unwrap();
        prop_assert!(tn.max_abs_diff(&explicit).unwrap() < 1e-4);
    }

    /// The dense backward pair is the adjoint of the forward:
    /// <xW, dy> == <x, dy W^T> and <xW, dy> == <W, x^T dy>.
    #[test]
    fn dense_gradients_are_adjoint(
        x in tensor_strategy(vec![3, 5]),
        w in tensor_strategy(vec![5, 4]),
        dy in tensor_strategy(vec![3, 4]),
    ) {
        let y = matmul(&x, &w).unwrap();
        let lhs = dot(&y, &dy);
        let dx = matmul_nt(&dy, &w).unwrap();
        prop_assert!((lhs - dot(&x, &dx)).abs() < 1e-2 * (1.0 + lhs.abs()));
        let dw = matmul_tn(&x, &dy).unwrap();
        prop_assert!((lhs - dot(&w, &dw)).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// The convolution input-gradient kernel is the adjoint of the
    /// forward convolution: <conv(x, w), dy> == <x, conv_input_grad(dy, w)>.
    #[test]
    fn conv_input_grad_is_adjoint(
        x in tensor_strategy(vec![1, 2, 5, 5]),
        w in tensor_strategy(vec![3, 2, 3, 3]),
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let p = Conv2dParams { stride, padding };
        let Ok(y) = conv2d(&x, &w, &p) else { return Ok(()) };
        let dims = y.dims().to_vec();
        let n: usize = dims.iter().product();
        let dy = Tensor::from_vec((0..n).map(|i| ((i % 7) as f32) - 3.0).collect(), &dims).unwrap();
        let lhs = dot(&y, &dy);
        let dx = conv2d_input_grad(&dy, &w, (5, 5), &p).unwrap();
        prop_assert!((lhs - dot(&x, &dx)).abs() < 1e-2 * (1.0 + lhs.abs()),
            "<y,dy>={lhs} <x,dx>={}", dot(&x, &dx));
        // And the weight gradient: <conv(x, w), dy> == <w, wgrad>.
        let dw = conv2d_weight_grad(&x, &dy, (3, 3), &p).unwrap();
        prop_assert!((lhs - dot(&w, &dw)).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn relu_properties(x in tensor_strategy(vec![4, 4])) {
        let y = relu(&x);
        // Idempotent and non-negative.
        let yy = relu(&y);
        prop_assert_eq!(yy.data(), y.data());
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        // Gradient masks exactly the non-positive entries.
        let dy = Tensor::ones(&[4, 4]);
        let g = relu_grad(&x, &dy).unwrap();
        for (xv, gv) in x.data().iter().zip(g.data()) {
            prop_assert_eq!(*gv, if *xv > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn softmax_rows_are_distributions(x in tensor_strategy(vec![3, 6])) {
        let s = softmax_rows(&x).unwrap();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        for r in 0..3 {
            let row: f32 = s.data()[r * 6..(r + 1) * 6].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_linearity(
        x1 in tensor_strategy(vec![1, 1, 4, 4]),
        x2 in tensor_strategy(vec![1, 1, 4, 4]),
        w in tensor_strategy(vec![2, 1, 3, 3]),
    ) {
        // conv(x1 + x2) == conv(x1) + conv(x2).
        let p = Conv2dParams { stride: 1, padding: 1 };
        let lhs = conv2d(&add(&x1, &x2).unwrap(), &w, &p).unwrap();
        let rhs = add(&conv2d(&x1, &w, &p).unwrap(), &conv2d(&x2, &w, &p).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn sum_is_linear(a in tensor_strategy(vec![2, 8]), s in -3.0f32..3.0) {
        let scaled = a.scale(s);
        prop_assert!((sum(&scaled) - s * sum(&a)).abs() < 1e-2);
    }
}
