//! Max and average pooling with their backward kernels.
//!
//! Layout is NCHW, matching [`crate::conv`]. Pooling layers have no
//! weights, so their backward pass consists only of an input-gradient
//! kernel (a `dO` operation in the paper's terms).

use crate::conv::Conv2dParams;
use crate::error::{Error, Result};
use crate::tensor::Tensor;

fn check4(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(Error::RankMismatch {
            got: t.shape().rank(),
            expected: 4,
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

/// Max pooling with square window `k` and the given stride/padding.
/// Returns the pooled tensor and the argmax indices (into the flattened
/// input) needed by [`max_pool2d_grad`].
///
/// # Errors
///
/// Returns shape/argument errors for malformed inputs.
pub fn max_pool2d(input: &Tensor, k: usize, p: &Conv2dParams) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = check4(input, "max_pool2d")?;
    let (oh, ow) = p.output_size(h, w, k, k)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            let idx = base + iy as usize * w + ix as usize;
                            if input.data()[idx] > best {
                                best = input.data()[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((b * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, arg))
}

/// Backward of max pooling: routes each output gradient to the input
/// position that won the max.
///
/// # Errors
///
/// Returns shape/argument errors for malformed inputs.
pub fn max_pool2d_grad(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    check4(grad_out, "max_pool2d_grad")?;
    if argmax.len() != grad_out.numel() {
        return Err(Error::InvalidArgument(format!(
            "{} argmax entries for {} outputs",
            argmax.len(),
            grad_out.numel()
        )));
    }
    let mut dx = Tensor::zeros(input_dims);
    for (o, &idx) in argmax.iter().enumerate() {
        if idx >= dx.numel() {
            return Err(Error::InvalidArgument(format!(
                "argmax {idx} out of input range"
            )));
        }
        dx.data_mut()[idx] += grad_out.data()[o];
    }
    Ok(dx)
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
///
/// # Errors
///
/// Returns [`Error::RankMismatch`] for non-rank-4 inputs.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check4(input, "global_avg_pool")?;
    let hw = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            out[b * c + ch] = input.data()[base..base + h * w].iter().sum::<f32>() / hw;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward of global average pooling: spreads each gradient uniformly.
///
/// # Errors
///
/// Returns shape errors for malformed inputs.
pub fn global_avg_pool_grad(grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if grad_out.shape().rank() != 2 || input_dims.len() != 4 {
        return Err(Error::RankMismatch {
            got: grad_out.shape().rank(),
            expected: 2,
            op: "global_avg_pool_grad",
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_out.dims() != [n, c] {
        return Err(Error::ShapeMismatch {
            left: grad_out.dims().to_vec(),
            right: input_dims.to_vec(),
            op: "global_avg_pool_grad",
        });
    }
    let hw = (h * w) as f32;
    let mut dx = Tensor::zeros(input_dims);
    for b in 0..n {
        for ch in 0..c {
            let g = grad_out.data()[b * c + ch] / hw;
            let base = (b * c + ch) * h * w;
            for v in &mut dx.data_mut()[base..base + h * w] {
                *v = g;
            }
        }
    }
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, arg) = max_pool2d(
            &x,
            2,
            &Conv2dParams {
                stride: 2,
                padding: 0,
            },
        )
        .unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_grad_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let (_, arg) = max_pool2d(
            &x,
            2,
            &Conv2dParams {
                stride: 2,
                padding: 0,
            },
        )
        .unwrap();
        let dy = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let dx = max_pool2d_grad(&dy, &arg, &[1, 1, 2, 2]).unwrap();
        assert_eq!(dx.data(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_grad_validates() {
        let dy = Tensor::ones(&[1, 1, 1, 1]);
        assert!(max_pool2d_grad(&dy, &[0, 1], &[1, 1, 2, 2]).is_err());
        assert!(max_pool2d_grad(&dy, &[99], &[1, 1, 2, 2]).is_err());
    }

    #[test]
    fn global_avg_pool_means() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn global_avg_pool_grad_uniform() {
        let dy = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let dx = global_avg_pool_grad(&dy, &[1, 2, 2, 2]).unwrap();
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
        assert!(global_avg_pool_grad(&dy, &[1, 3, 2, 2]).is_err());
    }

    #[test]
    fn pool_grad_matches_finite_difference() {
        let x = Tensor::from_vec(
            (0..16).map(|i| ((i * 13 % 7) as f32) - 3.0).collect(),
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = Conv2dParams {
            stride: 2,
            padding: 0,
        };
        let (y, arg) = max_pool2d(&x, 2, &p).unwrap();
        let dy = Tensor::ones(y.dims());
        let dx = max_pool2d_grad(&dy, &arg, x.dims()).unwrap();
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let (yp, _) = max_pool2d(&xp, 2, &p).unwrap();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let (ym, _) = max_pool2d(&xm, 2, &p).unwrap();
            let fd = (crate::ops::sum(&yp) - crate::ops::sum(&ym)) / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-2, "i={i}");
        }
    }
}
