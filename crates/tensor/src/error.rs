//! Tensor error types.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by tensor construction and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The element count does not match the requested shape.
    SizeMismatch {
        /// Elements provided.
        elements: usize,
        /// Elements the shape requires.
        expected: usize,
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Left operand shape.
        left: Vec<usize>,
        /// Right operand shape.
        right: Vec<usize>,
        /// The operation that failed.
        op: &'static str,
    },
    /// The operation requires a different rank (e.g. matmul needs rank 2).
    RankMismatch {
        /// Rank provided.
        got: usize,
        /// Rank required.
        expected: usize,
        /// The operation that failed.
        op: &'static str,
    },
    /// A configuration value is invalid (zero kernel size, stride, ...).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SizeMismatch { elements, expected } => {
                write!(f, "{elements} elements do not fill a shape of {expected}")
            }
            Error::ShapeMismatch { left, right, op } => {
                write!(f, "{op}: incompatible shapes {left:?} and {right:?}")
            }
            Error::RankMismatch { got, expected, op } => {
                write!(f, "{op}: rank {got} where {expected} is required")
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = Error::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4],
            op: "add",
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 3]"));
    }
}
