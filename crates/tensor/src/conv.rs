//! 2-D convolution via im2col, with the three kernels exposed separately.
//!
//! The forward pass, the input-gradient pass (`conv2d_input_grad`,
//! a `dO` kernel in the paper's terms), and the weight-gradient pass
//! (`conv2d_weight_grad`, a `dW` kernel) are independent functions: the
//! training stack schedules them as separate operations, which is what
//! allows out-of-order backprop to move the weight gradient.
//!
//! Tensors use NCHW layout: inputs `[n, c, h, w]`, weights
//! `[k, c, kh, kw]`, outputs `[n, k, oh, ow]`.

use crate::error::{Error, Result};
use crate::ops::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Output spatial size for an input of `(h, w)` under kernel
    /// `(kh, kw)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when the kernel does not fit.
    pub fn output_size(&self, h: usize, w: usize, kh: usize, kw: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(Error::InvalidArgument("stride must be positive".into()));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if kh == 0 || kw == 0 || kh > ph || kw > pw {
            return Err(Error::InvalidArgument(format!(
                "kernel {kh}x{kw} does not fit padded input {ph}x{pw}"
            )));
        }
        Ok(((ph - kh) / self.stride + 1, (pw - kw) / self.stride + 1))
    }
}

/// Unfolds image patches into columns: input `[c, h, w]` becomes
/// `[c*kh*kw, oh*ow]`.
#[allow(clippy::too_many_arguments)] // the 9 values are one transform's coordinates
fn im2col(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let cols = oh * ow;
    let mut out = vec![0.0f32; c * kh * kw * cols];
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            input[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
    out
}

/// Folds columns back into an image, accumulating overlaps — the adjoint
/// of [`im2col`].
#[allow(clippy::too_many_arguments)] // mirror of `im2col`
fn col2im(
    cols_data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let cols = oh * ow;
    let mut out = vec![0.0f32; c * h * w];
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            out[(ch * h + iy as usize) * w + ix as usize] +=
                                cols_data[row * cols + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
    out
}

fn check_conv_shapes(input: &Tensor, weight: &Tensor, op: &'static str) -> Result<()> {
    if input.shape().rank() != 4 || weight.shape().rank() != 4 {
        return Err(Error::RankMismatch {
            got: input.shape().rank().max(weight.shape().rank()),
            expected: 4,
            op,
        });
    }
    if input.dims()[1] != weight.dims()[1] {
        return Err(Error::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
            op,
        });
    }
    Ok(())
}

/// Forward convolution: `input [n,c,h,w] * weight [k,c,kh,kw] ->
/// [n,k,oh,ow]`.
///
/// # Errors
///
/// Returns shape/argument errors for incompatible operands.
pub fn conv2d(input: &Tensor, weight: &Tensor, p: &Conv2dParams) -> Result<Tensor> {
    check_conv_shapes(input, weight, "conv2d")?;
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (k, _, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let (oh, ow) = p.output_size(h, w, kh, kw)?;
    let wmat = weight.reshape(&[k, c * kh * kw])?;
    let mut out = vec![0.0f32; n * k * oh * ow];
    let img = c * h * w;
    for b in 0..n {
        let cols = im2col(
            &input.data()[b * img..(b + 1) * img],
            c,
            h,
            w,
            kh,
            kw,
            p,
            oh,
            ow,
        );
        let cols = Tensor::from_vec(cols, &[c * kh * kw, oh * ow])?;
        let y = matmul(&wmat, &cols)?; // [k, oh*ow]
        out[b * k * oh * ow..(b + 1) * k * oh * ow].copy_from_slice(y.data());
    }
    Tensor::from_vec(out, &[n, k, oh, ow])
}

/// Input gradient of a convolution (`dX = Wᵀ ⊛ dY`): the output-gradient
/// kernel the main stream runs.
///
/// # Errors
///
/// Returns shape/argument errors for incompatible operands.
pub fn conv2d_input_grad(
    grad_out: &Tensor,
    weight: &Tensor,
    input_hw: (usize, usize),
    p: &Conv2dParams,
) -> Result<Tensor> {
    if grad_out.shape().rank() != 4 || weight.shape().rank() != 4 {
        return Err(Error::RankMismatch {
            got: grad_out.shape().rank().max(weight.shape().rank()),
            expected: 4,
            op: "conv2d_input_grad",
        });
    }
    let (n, k, oh, ow) = (
        grad_out.dims()[0],
        grad_out.dims()[1],
        grad_out.dims()[2],
        grad_out.dims()[3],
    );
    let (kk, c, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    if k != kk {
        return Err(Error::ShapeMismatch {
            left: grad_out.dims().to_vec(),
            right: weight.dims().to_vec(),
            op: "conv2d_input_grad",
        });
    }
    let (h, w) = input_hw;
    let wmat = weight.reshape(&[k, c * kh * kw])?;
    let mut out = vec![0.0f32; n * c * h * w];
    let oimg = k * oh * ow;
    let img = c * h * w;
    for b in 0..n {
        let dy = Tensor::from_vec(
            grad_out.data()[b * oimg..(b + 1) * oimg].to_vec(),
            &[k, oh * ow],
        )?;
        // dcols = Wᵀ × dY : [c*kh*kw, oh*ow]
        let dcols = matmul_tn(&wmat, &dy)?;
        let dx = col2im(dcols.data(), c, h, w, kh, kw, p, oh, ow);
        out[b * img..(b + 1) * img].copy_from_slice(&dx);
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

/// Weight gradient of a convolution (`dW = dY ⊛ X`): the weight-gradient
/// kernel out-of-order backprop reorders.
///
/// # Errors
///
/// Returns shape/argument errors for incompatible operands.
pub fn conv2d_weight_grad(
    input: &Tensor,
    grad_out: &Tensor,
    kernel_hw: (usize, usize),
    p: &Conv2dParams,
) -> Result<Tensor> {
    if input.shape().rank() != 4 || grad_out.shape().rank() != 4 {
        return Err(Error::RankMismatch {
            got: input.shape().rank().max(grad_out.shape().rank()),
            expected: 4,
            op: "conv2d_weight_grad",
        });
    }
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (n2, k, oh, ow) = (
        grad_out.dims()[0],
        grad_out.dims()[1],
        grad_out.dims()[2],
        grad_out.dims()[3],
    );
    if n != n2 {
        return Err(Error::ShapeMismatch {
            left: input.dims().to_vec(),
            right: grad_out.dims().to_vec(),
            op: "conv2d_weight_grad",
        });
    }
    let (kh, kw) = kernel_hw;
    let mut acc = Tensor::zeros(&[k, c * kh * kw]);
    let img = c * h * w;
    let oimg = k * oh * ow;
    for b in 0..n {
        let cols = im2col(
            &input.data()[b * img..(b + 1) * img],
            c,
            h,
            w,
            kh,
            kw,
            p,
            oh,
            ow,
        );
        let cols = Tensor::from_vec(cols, &[c * kh * kw, oh * ow])?;
        let dy = Tensor::from_vec(
            grad_out.data()[b * oimg..(b + 1) * oimg].to_vec(),
            &[k, oh * ow],
        )?;
        // dW += dY × colsᵀ : [k, c*kh*kw]
        let dw = matmul_nt(&dy, &cols)?;
        crate::ops::axpy(&mut acc, 1.0, &dw)?;
    }
    acc.reshape(&[k, c, kh, kw])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn output_size_math() {
        let p = Conv2dParams {
            stride: 1,
            padding: 0,
        };
        assert_eq!(p.output_size(5, 5, 3, 3).unwrap(), (3, 3));
        let p = Conv2dParams {
            stride: 2,
            padding: 1,
        };
        assert_eq!(p.output_size(4, 4, 3, 3).unwrap(), (2, 2));
        assert!(Conv2dParams {
            stride: 0,
            padding: 0
        }
        .output_size(4, 4, 3, 3)
        .is_err());
        assert!(Conv2dParams::default().output_size(2, 2, 3, 3).is_err());
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1 is the identity.
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let w = t(&[1.0], &[1, 1, 1, 1]);
        let y = conv2d(&x, &w, &Conv2dParams::default()).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_convolution() {
        // 3x3 input, 2x2 averaging-like kernel of ones.
        let x = t(
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let w = t(&[1.0, 1.0, 1.0, 1.0], &[1, 1, 2, 2]);
        let y = conv2d(&x, &w, &Conv2dParams::default()).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn padding_grows_output() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(
            &x,
            &w,
            &Conv2dParams {
                stride: 1,
                padding: 1,
            },
        )
        .unwrap();
        assert_eq!(y.dims(), &[1, 1, 3, 3]);
        // Center sees all 9 ones; corners only 4.
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 9.0);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 4.0);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let x = Tensor::ones(&[1, 2, 3, 3]);
        let w = Tensor::ones(&[1, 3, 2, 2]);
        assert!(conv2d(&x, &w, &Conv2dParams::default()).is_err());
    }

    /// Finite-difference check of both gradient kernels on a small conv.
    #[test]
    fn gradients_match_finite_difference() {
        let p = Conv2dParams {
            stride: 1,
            padding: 1,
        };
        let x = t(
            &(0..18).map(|i| (i as f32) * 0.1 - 0.9).collect::<Vec<_>>(),
            &[1, 2, 3, 3],
        );
        let w = t(
            &(0..16)
                .map(|i| ((i * 7 % 5) as f32) * 0.2 - 0.4)
                .collect::<Vec<_>>(),
            &[2, 2, 2, 2],
        );
        let y = conv2d(&x, &w, &p).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let dy = Tensor::ones(y.dims());
        let dx = conv2d_input_grad(&dy, &w, (3, 3), &p).unwrap();
        let dw = conv2d_weight_grad(&x, &dy, (2, 2), &p).unwrap();
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = crate::ops::sum(&conv2d(&xp, &w, &p).unwrap());
            let fm = crate::ops::sum(&conv2d(&xm, &w, &p).unwrap());
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < 1e-2,
                "dx[{i}]: {} vs {fd}",
                dx.data()[i]
            );
        }
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fp = crate::ops::sum(&conv2d(&x, &wp, &p).unwrap());
            let fm = crate::ops::sum(&conv2d(&x, &wm, &p).unwrap());
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (dw.data()[i] - fd).abs() < 1e-2,
                "dw[{i}]: {} vs {fd}",
                dw.data()[i]
            );
        }
    }

    #[test]
    fn batched_inputs_independent() {
        // Two identical images in a batch give identical outputs.
        let single = t(&[1.0, -1.0, 0.5, 2.0], &[1, 1, 2, 2]);
        let mut batch_data = single.data().to_vec();
        batch_data.extend_from_slice(single.data());
        let batch = t(&batch_data, &[2, 1, 2, 2]);
        let w = t(&[0.5, -0.5, 1.0, 1.0], &[1, 1, 2, 2]);
        let y1 = conv2d(&single, &w, &Conv2dParams::default()).unwrap();
        let y2 = conv2d(&batch, &w, &Conv2dParams::default()).unwrap();
        assert_eq!(&y2.data()[..y1.numel()], y1.data());
        assert_eq!(&y2.data()[y1.numel()..], y1.data());
    }
}
