//! Elementwise operations, matrix multiplication, activations, softmax,
//! losses, and reductions.
//!
//! Gradient kernels are provided as separate functions (e.g.
//! [`matmul_nt`]/[`matmul_tn`] compose the two halves of a dense layer's
//! backward pass) so that the `ooo-nn` layers can expose output- and
//! weight-gradient computations as independently schedulable operations.

use crate::error::{Error, Result};
use crate::tensor::Tensor;

fn same_shape(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if a.dims() != b.dims() {
        return Err(Error::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
            op,
        });
    }
    Ok(())
}

/// Elementwise sum `a + b`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    same_shape(a, b, "add")?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(data, a.dims())
}

/// Elementwise difference `a - b`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    same_shape(a, b, "sub")?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x - y).collect();
    Tensor::from_vec(data, a.dims())
}

/// Elementwise (Hadamard) product `a ⊙ b`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    same_shape(a, b, "mul")?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(data, a.dims())
}

/// Scalar scaling `s * a`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let data = a.data().iter().map(|x| x * s).collect();
    Tensor::from_vec(data, a.dims()).expect("same element count")
}

/// In-place `a += s * b` (the optimizer's workhorse).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when shapes differ.
pub fn axpy(a: &mut Tensor, s: f32, b: &Tensor) -> Result<()> {
    same_shape(a, b, "axpy")?;
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += s * y;
    }
    Ok(())
}

/// Adds a row vector `bias` (shape `[n]`) to every row of `a`
/// (shape `[m, n]`).
///
/// # Errors
///
/// Returns [`Error::RankMismatch`] / [`Error::ShapeMismatch`] on
/// incompatible shapes.
pub fn add_row(a: &Tensor, bias: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(Error::RankMismatch {
            got: a.shape().rank(),
            expected: 2,
            op: "add_row",
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if bias.dims() != [n] {
        return Err(Error::ShapeMismatch {
            left: a.dims().to_vec(),
            right: bias.dims().to_vec(),
            op: "add_row",
        });
    }
    let mut out = a.clone();
    for r in 0..m {
        for c in 0..n {
            out.data_mut()[r * n + c] += bias.data()[c];
        }
    }
    Ok(out)
}

fn matmul_dims(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(Error::RankMismatch {
            got: a.shape().rank().max(b.shape().rank()),
            expected: 2,
            op,
        });
    }
    Ok(())
}

/// Matrix product `a[m,k] × b[k,n] -> [m,n]`.
///
/// # Errors
///
/// Returns rank/shape errors on incompatible operands.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_dims(a, b, "matmul")?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(Error::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a[m,k] × bᵀ` where `b` is `[n,k]` — computes `[m,n]` without
/// materializing the transpose (used for input gradients:
/// `dX = dY × Wᵀ`).
///
/// # Errors
///
/// Returns rank/shape errors on incompatible operands.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_dims(a, b, "matmul_nt")?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(Error::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
            op: "matmul_nt",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a.data()[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b.data()[j * k..(j + 1) * k];
            out[i * n + j] = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `aᵀ × b` where `a` is `[k,m]`, `b` is `[k,n]` — computes `[m,n]`
/// without materializing the transpose (used for weight gradients:
/// `dW = Xᵀ × dY`).
///
/// # Errors
///
/// Returns rank/shape errors on incompatible operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_dims(a, b, "matmul_tn")?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(Error::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
            op: "matmul_tn",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let arow = &a.data()[p * m..(p + 1) * m];
        let brow = &b.data()[p * n..(p + 1) * n];
        for i in 0..m {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`Error::RankMismatch`] for non-matrices.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(Error::RankMismatch {
            got: a.shape().rank(),
            expected: 2,
            op: "transpose",
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a.data()[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// ReLU activation.
pub fn relu(a: &Tensor) -> Tensor {
    let data = a.data().iter().map(|&x| x.max(0.0)).collect();
    Tensor::from_vec(data, a.dims()).expect("same element count")
}

/// ReLU gradient: `dx = dy ⊙ [x > 0]`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when shapes differ.
pub fn relu_grad(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(x, dy, "relu_grad")?;
    let data = x
        .data()
        .iter()
        .zip(dy.data())
        .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(data, x.dims())
}

/// GELU activation (tanh approximation, as used by BERT/GPT).
pub fn gelu(a: &Tensor) -> Tensor {
    let c = (2.0f32 / std::f32::consts::PI).sqrt();
    let data = a
        .data()
        .iter()
        .map(|&x| 0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh()))
        .collect();
    Tensor::from_vec(data, a.dims()).expect("same element count")
}

/// GELU gradient (tanh approximation).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when shapes differ.
pub fn gelu_grad(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(x, dy, "gelu_grad")?;
    let c = (2.0f32 / std::f32::consts::PI).sqrt();
    let data = x
        .data()
        .iter()
        .zip(dy.data())
        .map(|(&x, &g)| {
            let u = c * (x + 0.044715 * x * x * x);
            let t = u.tanh();
            let du = c * (1.0 + 3.0 * 0.044715 * x * x);
            g * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
        })
        .collect();
    Tensor::from_vec(data, x.dims())
}

/// Sigmoid activation.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let data = a.data().iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect();
    Tensor::from_vec(data, a.dims()).expect("same element count")
}

/// Tanh activation.
pub fn tanh(a: &Tensor) -> Tensor {
    let data = a.data().iter().map(|&x| x.tanh()).collect();
    Tensor::from_vec(data, a.dims()).expect("same element count")
}

/// Row-wise softmax of a `[m, n]` matrix, numerically stabilized.
///
/// # Errors
///
/// Returns [`Error::RankMismatch`] for non-matrices.
pub fn softmax_rows(a: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(Error::RankMismatch {
            got: a.shape().rank(),
            expected: 2,
            op: "softmax_rows",
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        let row = &a.data()[r * n..(r + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (o, &x) in out[r * n..(r + 1) * n].iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[r * n..(r + 1) * n] {
            *o /= denom;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Mean cross-entropy of logits `[m, n]` against integer labels, plus the
/// gradient w.r.t. the logits (`(softmax - onehot) / m`) — returned
/// together because the loss layer produces both in one kernel.
///
/// # Errors
///
/// Returns rank/argument errors for malformed inputs.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.shape().rank() != 2 {
        return Err(Error::RankMismatch {
            got: logits.shape().rank(),
            expected: 2,
            op: "softmax_cross_entropy",
        });
    }
    let (m, n) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != m {
        return Err(Error::InvalidArgument(format!(
            "{} labels for {m} rows",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&c| c >= n) {
        return Err(Error::InvalidArgument(format!(
            "label {bad} out of {n} classes"
        )));
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (r, &c) in labels.iter().enumerate() {
        let p = probs.data()[r * n + c].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[r * n + c] -= 1.0;
    }
    let grad = scale(&grad, 1.0 / m as f32);
    Ok((loss / m as f32, grad))
}

/// Sum of all elements.
pub fn sum(a: &Tensor) -> f32 {
    a.data().iter().sum()
}

/// Mean of all elements (0 for empty tensors).
pub fn mean(a: &Tensor) -> f32 {
    if a.numel() == 0 {
        return 0.0;
    }
    sum(a) / a.numel() as f32
}

/// Column sums of a `[m, n]` matrix — the bias gradient.
///
/// # Errors
///
/// Returns [`Error::RankMismatch`] for non-matrices.
pub fn sum_rows(a: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(Error::RankMismatch {
            got: a.shape().rank(),
            expected: 2,
            op: "sum_rows",
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; n];
    for r in 0..m {
        for c in 0..n {
            out[c] += a.data()[r * n + c];
        }
    }
    Tensor::from_vec(out, &[n])
}

/// Method-style conveniences mirroring the free functions.
impl Tensor {
    /// Elementwise sum; see [`add`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        add(self, other)
    }

    /// Elementwise difference; see [`sub`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        sub(self, other)
    }

    /// Hadamard product; see [`mul`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        mul(self, other)
    }

    /// Scalar scaling; see [`scale`].
    pub fn scale(&self, s: f32) -> Tensor {
        scale(self, s)
    }

    /// Matrix product; see [`matmul`].
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors on incompatible operands.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Matrix transpose; see [`transpose`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        transpose(self)
    }

    /// ReLU activation; see [`relu`].
    pub fn relu(&self) -> Tensor {
        relu(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 5.0], &[2]);
        assert_eq!(add(&a, &b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(scale(&a, 2.0).data(), &[2.0, 4.0]);
        assert!(add(&a, &t(&[1.0], &[1])).is_err());
    }

    #[test]
    fn axpy_in_place() {
        let mut a = t(&[1.0, 1.0], &[2]);
        axpy(&mut a, -0.5, &t(&[2.0, 4.0], &[2])).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn add_row_broadcasts() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        assert_eq!(add_row(&a, &b).unwrap().data(), &[11.0, 22.0, 13.0, 24.0]);
        assert!(add_row(&a, &t(&[1.0], &[1])).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[2, 3]);
        // a × bᵀ == a × transpose(b)
        let nt = matmul_nt(&a, &b).unwrap();
        let explicit = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(nt.data(), explicit.data());
        // aᵀ × b == transpose(a) × b
        let tn = matmul_tn(&a, &b).unwrap();
        let explicit = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(tn.data(), explicit.data());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt.data(), a.data());
        assert_eq!(tt.dims(), a.dims());
    }

    #[test]
    fn relu_and_grad() {
        let x = t(&[-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        let dy = t(&[1.0, 1.0, 1.0], &[3]);
        assert_eq!(relu_grad(&x, &dy).unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_matches_finite_difference() {
        let x = t(&[-2.0, -0.5, 0.0, 0.7, 1.5], &[5]);
        let dy = Tensor::ones(&[5]);
        let g = gelu_grad(&x, &dy).unwrap();
        let eps = 1e-3;
        for i in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (gelu(&xp).data()[i] - gelu(&xm).data()[i]) / (2.0 * eps);
            assert!(
                (g.data()[i] - fd).abs() < 1e-3,
                "i={i}: {} vs {fd}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn softmax_rows_normalized() {
        let a = t(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = softmax_rows(&a).unwrap();
        for r in 0..2 {
            let row_sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // The huge-but-equal row must not overflow.
        assert!(s.all_finite());
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = t(&[100.0, 0.0, 0.0, 0.0, 100.0, 0.0], &[2, 3]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
        assert!(grad.all_finite());
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = t(&[0.5, -0.2, 0.1, 1.0, 0.3, -0.7], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-2;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - fd).abs() < 1e-3,
                "i={i}: {} vs {fd}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(sum(&a), 10.0);
        assert_eq!(mean(&a), 2.5);
        assert_eq!(sum_rows(&a).unwrap().data(), &[4.0, 6.0]);
    }
}
