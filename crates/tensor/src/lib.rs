//! # ooo-tensor — dense CPU tensors for the ooo-backprop workspace
//!
//! A small, dependency-light tensor library providing exactly the
//! operations the `ooo-nn` training stack needs: elementwise arithmetic,
//! matrix multiplication, 2-D convolution via im2col (with the input- and
//! weight-gradient kernels exposed *separately* — the split that
//! out-of-order backprop schedules), pooling, activations, softmax, and
//! reductions.
//!
//! Determinism is a design goal: every operation iterates in a fixed
//! order, so results are bitwise reproducible across runs and — crucially
//! for validating out-of-order backprop — independent of *when* an
//! operation executes relative to unrelated operations.
//!
//! # Example
//!
//! ```
//! use ooo_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]
// Index-based loops mirror the papers' subscripted formulas in the
// numeric kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod conv;
pub mod error;
pub mod init;
pub mod ops;
pub mod pool;
pub mod shape;
pub mod tensor;

pub use error::{Error, Result};
pub use shape::Shape;
pub use tensor::Tensor;
