//! Seeded weight initialization.
//!
//! All initializers take an explicit RNG so that entire training runs are
//! reproducible — a prerequisite for the bitwise schedule-equivalence
//! tests in `ooo-nn`.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], limit: f32) -> Tensor {
    let dist = Uniform::new_inclusive(-limit, limit);
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, dims).expect("size matches by construction")
}

/// Xavier/Glorot uniform initialization for a weight of the given fan-in
/// and fan-out.
pub fn xavier<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(rng, dims, limit)
}

/// He/Kaiming uniform initialization (ReLU networks).
pub fn he<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(rng, dims, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeded_init_is_reproducible() {
        let a = xavier(&mut StdRng::seed_from_u64(7), &[4, 4], 4, 4);
        let b = xavier(&mut StdRng::seed_from_u64(7), &[4, 4], 4, 4);
        assert_eq!(a.data(), b.data());
        let c = xavier(&mut StdRng::seed_from_u64(8), &[4, 4], 4, 4);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn values_within_limit() {
        let t = uniform(&mut StdRng::seed_from_u64(1), &[100], 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn he_scales_with_fan_in() {
        let big = he(&mut StdRng::seed_from_u64(2), &[1000], 10);
        let small = he(&mut StdRng::seed_from_u64(2), &[1000], 1000);
        let max_big = big.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let max_small = small.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max_big > max_small);
    }
}
