//! Shapes and row-major index arithmetic.

use crate::error::{Error, Result};
use std::fmt;

/// A tensor shape (row-major).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when the index rank or any
    /// coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(Error::InvalidArgument(format!(
                "index rank {} != shape rank {}",
                index.len(),
                self.rank()
            )));
        }
        let mut off = 0;
        for ((&i, &d), s) in index.iter().zip(self.0.iter()).zip(self.strides()) {
            if i >= d {
                return Err(Error::InvalidArgument(format!(
                    "index {i} out of bound {d}"
                )));
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0.get(axis).copied().ok_or_else(|| {
            Error::InvalidArgument(format!("axis {axis} out of rank {}", self.rank()))
        })
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[7, 9]);
        assert_eq!(s.dim(1).unwrap(), 9);
        assert!(s.dim(2).is_err());
    }
}
