//! The dense f32 tensor type.

use crate::error::{Error, Result};
use crate::shape::Shape;
use std::fmt;

/// A dense, row-major, `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SizeMismatch`] when `data.len()` does not equal the
    /// shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(Error::SizeMismatch {
                elements: data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![1.0; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] on out-of-range indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] on out-of-range indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SizeMismatch`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// The single value of a scalar (or one-element) tensor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SizeMismatch`] when the tensor has more than one
    /// element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(Error::SizeMismatch {
                elements: self.data.len(),
                expected: 1,
            });
        }
        Ok(self.data[0])
    }

    /// Whether all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().copied().take(8).collect();
        write!(
            f,
            "Tensor{} {:?}{}",
            self.shape,
            preview,
            if self.data.len() > 8 { "…" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_size() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[2]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.get(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 42.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 42.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(3.5).item().unwrap(), 3.5);
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 1.0], &[2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert!(a.max_abs_diff(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
