//! Minimal JSON document model, writer, and parser.
//!
//! The build environment is offline, so instead of `serde_json` the
//! schedule/diagnostics interchange formats are built on this small
//! hand-rolled module: a [`Value`] tree, a pretty printer, and a strict
//! recursive-descent parser. Objects preserve insertion order so that
//! exported documents are byte-stable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `usize`, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The numeric payload, if this is a number node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array node.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object node.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Value::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }

    /// Parses a JSON document. Rejects trailing garbage.
    ///
    /// Size is unbounded (bundles and traces can be large); nesting is
    /// still capped at [`MAX_PARSE_DEPTH`]. Streaming consumers that face
    /// hostile input should use [`Value::parse_with_limits`] instead.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        Value::parse_with_limits(text, &ParseLimits::unbounded())
    }

    /// Parses a JSON document under explicit resource limits.
    ///
    /// The byte limit is checked before any parsing starts, and the node
    /// budget is enforced as the tree is built, so a hostile document is
    /// rejected with a structured error before it can exhaust memory —
    /// never a panic, never an allocation proportional to the attack.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error or
    /// exceeded limit.
    pub fn parse_with_limits(text: &str, limits: &ParseLimits) -> Result<Value, String> {
        if text.len() > limits.max_bytes {
            return Err(format!(
                "document is {} bytes, above the {}-byte limit",
                text.len(),
                limits.max_bytes
            ));
        }
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
            nodes: 0,
            max_depth: limits.max_depth,
            max_nodes: limits.max_nodes,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Resource limits for [`Value::parse_with_limits`].
///
/// Each field bounds one axis a hostile document could use to exhaust
/// the process: raw length (`max_bytes`), recursion (`max_depth`), and
/// total tree size (`max_nodes` — every scalar, array, and object
/// counts as one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input length in bytes, checked before parsing starts.
    pub max_bytes: usize,
    /// Maximum container-nesting depth.
    pub max_depth: usize,
    /// Maximum number of nodes in the parsed tree.
    pub max_nodes: usize,
}

impl Default for ParseLimits {
    /// Streaming-friendly defaults: 1 MiB of input, the standard depth
    /// cap, and 256 Ki nodes (far above any legitimate request line).
    fn default() -> Self {
        ParseLimits {
            max_bytes: 1 << 20,
            max_depth: MAX_PARSE_DEPTH,
            max_nodes: 1 << 18,
        }
    }
}

impl ParseLimits {
    /// No byte/node limits; depth stays capped at [`MAX_PARSE_DEPTH`]
    /// because the parser recursion would overflow the stack otherwise.
    pub fn unbounded() -> Self {
        ParseLimits {
            max_bytes: usize::MAX,
            max_depth: MAX_PARSE_DEPTH,
            max_nodes: usize::MAX,
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Maximum container-nesting depth the parser accepts.
///
/// The parser is recursive-descent, so unbounded nesting in a malicious
/// or corrupt document (`[[[[…`) would overflow the stack. Real bundle
/// and trace documents nest a handful of levels deep; 512 is far above
/// anything legitimate while keeping recursion well inside stack limits.
const MAX_PARSE_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    nodes: usize,
    max_depth: usize,
    max_nodes: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            return Err(format!(
                "document has more than {} nodes at byte {}",
                self.max_nodes, self.pos
            ));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.descend()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'{') => {
                self.descend()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(format!(
                "nesting deeper than {} levels at byte {}",
                self.max_depth, self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid utf-8 in \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl<V: Into<Value>> From<Vec<V>> for Value {
    fn from(items: Vec<V>) -> Self {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Value>> From<BTreeMap<String, V>> for Value {
    fn from(map: BTreeMap<String, V>) -> Self {
        Value::Obj(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

/// Builds an object node from `(key, value)` pairs, preserving order.
pub fn obj<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(MAX_PARSE_DEPTH + 1);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // Nesting at exactly the limit still parses.
        let ok = format!(
            "{}{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn oversized_input_rejected_before_parsing() {
        let limits = ParseLimits {
            max_bytes: 64,
            ..ParseLimits::default()
        };
        let big = format!("[{}]", "1,".repeat(200));
        let err = Value::parse_with_limits(&big, &limits).unwrap_err();
        assert!(
            err.contains("byte-limit") || err.contains("byte limit"),
            "{err}"
        );
        // At or under the byte limit, the same shape parses.
        assert!(Value::parse_with_limits("[1,2,3]", &limits).is_ok());
    }

    #[test]
    fn node_bomb_rejected_with_structured_error() {
        // A flat array with a huge element count attacks memory, not
        // depth; the node budget stops it mid-parse.
        let limits = ParseLimits {
            max_bytes: usize::MAX,
            max_nodes: 100,
            ..ParseLimits::default()
        };
        let bomb = format!("[{}0]", "0,".repeat(10_000));
        let err = Value::parse_with_limits(&bomb, &limits).unwrap_err();
        assert!(err.contains("more than 100 nodes"), "{err}");
        // Exactly at the budget parses: 99 elements + the array = 100.
        let ok = format!("[{}0]", "0,".repeat(98));
        assert!(Value::parse_with_limits(&ok, &limits).is_ok());
        let over = format!("[{}0]", "0,".repeat(99));
        assert!(Value::parse_with_limits(&over, &limits).is_err());
    }

    #[test]
    fn hostile_limit_inputs_never_panic() {
        let limits = ParseLimits {
            max_bytes: 4096,
            max_depth: 16,
            max_nodes: 256,
        };
        let cases = [
            "[".repeat(4096),
            format!("{}1{}", "[".repeat(17), "]".repeat(17)),
            format!("{{\"k\":{}}}", "9".repeat(4000)),
            "\"".to_string() + &"\\u0041".repeat(600),
            format!("[{}]", "{},".repeat(300)),
        ];
        for case in cases {
            // Errors are fine; panics or unbounded allocation are not.
            let _ = Value::parse_with_limits(&case, &limits);
        }
    }

    #[test]
    fn malformed_numbers_error_cleanly() {
        for bad in ["-", "1e", "1.2.3", "--4", "1e+"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn round_trips_structures() {
        let v = obj([
            ("name", "sched \"a\"\n".into()),
            ("layers", 12usize.into()),
            ("ratio", 0.25.into()),
            ("flags", Value::Arr(vec![true.into(), Value::Null])),
            ("empty", Value::Obj(vec![])),
        ]);
        for text in [v.to_pretty(), v.to_compact()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Value::parse(r#"{"s": "a\u0041\n\\", "n": -2.5e2, "i": 90071992547}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n\\");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -250.0);
        assert_eq!(v.get("i").unwrap().as_u64().unwrap(), 90_071_992_547);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\""] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn surrogate_pairs() {
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }
}
