//! Multi-region joint scheduling (the paper's Algorithm 1).
//!
//! Single-GPU training runs two GPU streams: the *main stream* executes
//! the critical path (forward and output-gradient computations, at high
//! priority) and the *sub stream* executes the weight-gradient
//! computations. Because the GPU assigns SMs dynamically, exact kernel
//! pairing is infeasible; instead the main-stream timeline is split into
//! *regions* of similar compute characteristics (a DenseBlock or ResNet
//! block per region) and each weight-gradient kernel is assigned to the
//! region where profiling says co-running it yields the largest speedup.

use crate::cost::CostModel;
use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::memory::memory_profile;
use crate::op::{LayerId, Op};
use crate::schedule::Schedule;
use crate::SimTime;

/// A contiguous region of the main-stream schedule.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Region name (e.g. "DenseBlock-3 bwd").
    pub name: String,
    /// Main-stream kernels of the region with their execution times, in
    /// issue order.
    pub entries: Vec<(Op, SimTime)>,
}

impl RegionSpec {
    /// Total main-stream execution time of the region, the paper's
    /// `T_main(R[i])`.
    pub fn main_time(&self) -> SimTime {
        self.entries.iter().map(|&(_, d)| d).sum()
    }
}

/// Profiling results feeding Algorithm 1: for each (sub-stream kernel,
/// region) pair, the speedup of co-running versus sequential execution and
/// the kernel's execution time inside that region.
pub trait SpeedupProfile {
    /// Speedup of co-running `op` with region `region`'s main-stream
    /// kernels, relative to running it sequentially (1.0 = no benefit).
    fn speedup(&self, op: Op, region: usize) -> f64;

    /// Execution time of `op` when run in the sub-stream during `region`
    /// — the paper's `T_sub(k, R[i])` (usually slightly longer than the
    /// isolated time because of SM contention).
    fn sub_time(&self, op: Op, region: usize) -> SimTime;
}

/// A profile with region-independent constants, useful for tests and for
/// models whose kernels are uniform.
#[derive(Debug, Clone, Copy)]
pub struct ConstantProfile {
    /// Uniform co-run speedup.
    pub speedup: f64,
    /// Uniform sub-stream execution time.
    pub sub_time: SimTime,
}

impl SpeedupProfile for ConstantProfile {
    fn speedup(&self, _op: Op, _region: usize) -> f64 {
        self.speedup
    }

    fn sub_time(&self, _op: Op, _region: usize) -> SimTime {
        self.sub_time
    }
}

/// The sub-stream assignment produced by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRegionSchedule {
    /// Sub-stream kernels per region, in sub-stream issue order
    /// (the paper's `S[1..N]`).
    pub per_region: Vec<Vec<Op>>,
}

impl MultiRegionSchedule {
    /// Flattens the assignment into a two-lane [`Schedule`]: lane 0 is the
    /// main stream (regions concatenated), lane 1 the sub stream.
    pub fn to_schedule(&self, regions: &[RegionSpec]) -> Schedule {
        let mut s = Schedule::new();
        let main: Vec<Op> = regions
            .iter()
            .flat_map(|r| r.entries.iter().map(|&(op, _)| op))
            .collect();
        s.add_lane("main-stream", main);
        let sub: Vec<Op> = self.per_region.iter().flatten().copied().collect();
        s.add_lane("sub-stream", sub);
        s
    }

    /// Total number of assigned sub-stream kernels.
    pub fn num_assigned(&self) -> usize {
        self.per_region.iter().map(Vec::len).sum()
    }
}

/// Finish time of every main-stream op under sequential execution,
/// indexed by op. Used to decide when a weight gradient becomes runnable.
fn main_finish_times(regions: &[RegionSpec]) -> Vec<(Op, SimTime)> {
    let mut t = 0;
    let mut out = Vec::new();
    for r in regions {
        for &(op, d) in &r.entries {
            t += d;
            out.push((op, t));
        }
    }
    out
}

/// Absolute start time of each region under sequential main-stream
/// execution.
fn region_starts(regions: &[RegionSpec]) -> Vec<SimTime> {
    let mut starts = Vec::with_capacity(regions.len());
    let mut t = 0;
    for r in regions {
        starts.push(t);
        t += r.main_time();
    }
    starts
}

/// The paper's Algorithm 1: assigns each weight-gradient kernel of
/// `sub_kernels` to a region, greedily maximizing co-run speedup, while
/// respecting each kernel's readiness (its incoming gradient must have
/// been produced by the main stream before the kernel's sub-stream slot).
///
/// Kernels that no remaining region has capacity for are appended to the
/// last region (overflowing its nominal main time), so every kernel is
/// always scheduled.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `regions` is empty and sub
/// kernels exist.
pub fn multi_region_joint_schedule<P: SpeedupProfile>(
    graph: &TrainGraph,
    regions: &[RegionSpec],
    sub_kernels: &[Op],
    profile: &P,
) -> Result<MultiRegionSchedule> {
    if regions.is_empty() {
        if sub_kernels.is_empty() {
            return Ok(MultiRegionSchedule {
                per_region: Vec::new(),
            });
        }
        return Err(Error::InvalidConfig("no regions to schedule into".into()));
    }
    let finishes = main_finish_times(regions);
    let dep_finish = |op: Op| -> SimTime {
        let deps = graph.deps(op).unwrap_or_default();
        deps.iter()
            .filter_map(|d| finishes.iter().find(|(o, _)| o == d).map(|&(_, t)| t))
            .max()
            .unwrap_or(0)
    };
    let starts = region_starts(regions);
    let n = regions.len();
    let mut now: Vec<SimTime> = vec![0; n];
    let mut per_region: Vec<Vec<Op>> = vec![Vec::new(); n];
    let mut unscheduled: Vec<Op> = sub_kernels.to_vec();
    let mut candidates: Vec<usize> = (0..n).collect();

    while !unscheduled.is_empty() {
        // For each candidate region find the runnable kernel with the best
        // speedup; then commit the globally best (region, kernel) pair
        // (Algorithm 1 lines 4–9).
        let mut best: Option<(f64, usize, usize)> = None; // (speedup, region, kernel idx)
        for &ri in &candidates {
            let slot = starts[ri] + now[ri];
            let mut region_best: Option<(f64, usize)> = None;
            for (ki, &k) in unscheduled.iter().enumerate() {
                if dep_finish(k) > slot {
                    continue;
                }
                let p = profile.speedup(k, ri);
                if region_best.is_none_or(|(bp, _)| p > bp) {
                    region_best = Some((p, ki));
                }
            }
            if let Some((p, ki)) = region_best {
                if best.is_none_or(|(bp, _, _)| p > bp) {
                    best = Some((p, ri, ki));
                }
            }
        }
        match best {
            Some((_, ri, ki)) => {
                let k = unscheduled.remove(ki);
                per_region[ri].push(k);
                now[ri] += profile.sub_time(k, ri);
                if now[ri] >= regions[ri].main_time() {
                    candidates.retain(|&c| c != ri);
                }
            }
            None => {
                if candidates.is_empty() {
                    // All regions exhausted: overflow into the last region
                    // in readiness order so nothing is dropped.
                    let mut rest = std::mem::take(&mut unscheduled);
                    rest.sort_by_key(|&k| dep_finish(k));
                    per_region[n - 1].extend(rest);
                } else {
                    // No kernel is runnable yet in any open region: the
                    // earliest-start open region is advanced to the next
                    // readiness point.
                    let next_ready = unscheduled
                        .iter()
                        .map(|&k| dep_finish(k))
                        .min()
                        .expect("non-empty");
                    let ri = *candidates
                        .iter()
                        .min_by_key(|&&c| starts[c] + now[c])
                        .expect("candidates non-empty");
                    let slot = starts[ri] + now[ri];
                    if next_ready > slot {
                        now[ri] += next_ready - slot;
                    }
                    if now[ri] >= regions[ri].main_time() {
                        candidates.retain(|&c| c != ri);
                    }
                }
            }
        }
    }
    Ok(MultiRegionSchedule { per_region })
}

/// Memory-aware wrapper: runs Algorithm 1, estimates peak memory of the
/// merged execution, and if it exceeds `budget_bytes` pre-schedules the
/// first `k` regions eagerly (weight gradients as soon as ready, keeping
/// lifetimes short), retrying with growing `k` exactly as the paper
/// describes after Algorithm 1.
///
/// # Errors
///
/// Returns [`Error::MemoryBudgetExceeded`] when even fully eager
/// pre-scheduling cannot meet the budget.
pub fn schedule_with_memory_budget<P, C>(
    graph: &TrainGraph,
    regions: &[RegionSpec],
    sub_kernels: &[Op],
    profile: &P,
    cost: &C,
    budget_bytes: u64,
) -> Result<MultiRegionSchedule>
where
    P: SpeedupProfile,
    C: CostModel,
{
    let n = regions.len();
    for k in 0..=n {
        let schedule = if k == 0 {
            multi_region_joint_schedule(graph, regions, sub_kernels, profile)?
        } else {
            eager_prefix_schedule(graph, regions, sub_kernels, profile, k)?
        };
        let order = merged_order(regions, &schedule);
        let peak = memory_profile(graph, &order, cost)?.peak;
        if peak <= budget_bytes {
            return Ok(schedule);
        }
    }
    let order = merged_order(
        regions,
        &eager_prefix_schedule(graph, regions, sub_kernels, profile, n)?,
    );
    let peak = memory_profile(graph, &order, cost)?.peak;
    Err(Error::MemoryBudgetExceeded {
        peak,
        budget: budget_bytes,
    })
}

/// Pre-schedules weight gradients eagerly in the first `k` regions (each
/// kernel goes to the first region in which it is runnable), then runs
/// Algorithm 1 for the remainder.
fn eager_prefix_schedule<P: SpeedupProfile>(
    graph: &TrainGraph,
    regions: &[RegionSpec],
    sub_kernels: &[Op],
    profile: &P,
    k: usize,
) -> Result<MultiRegionSchedule> {
    let finishes = main_finish_times(regions);
    let dep_finish = |op: Op| -> SimTime {
        graph
            .deps(op)
            .unwrap_or_default()
            .iter()
            .filter_map(|d| finishes.iter().find(|(o, _)| o == d).map(|&(_, t)| t))
            .max()
            .unwrap_or(0)
    };
    let starts = region_starts(regions);
    let k = k.min(regions.len());
    let mut eager: Vec<Vec<Op>> = vec![Vec::new(); k];
    let mut rest: Vec<Op> = Vec::new();
    for &op in sub_kernels {
        let ready = dep_finish(op);
        // First of the k prefix regions whose span begins at or after the
        // kernel's readiness (so the kernel runs as soon as possible).
        let region = (0..k).find(|&ri| {
            let end = starts[ri] + regions[ri].main_time();
            ready < end
        });
        match region {
            Some(ri) => eager[ri].push(op),
            // A kernel only ready at (or after) the end of the prefix goes
            // to Algorithm 1 for the tail — unless the prefix covers every
            // region, in which case it overflows into the last one.
            None if k == regions.len() => eager[k - 1].push(op),
            None => rest.push(op),
        }
    }
    let tail = multi_region_joint_schedule(
        graph,
        &regions[k..],
        &rest,
        &ShiftedProfile {
            inner: profile,
            shift: k,
        },
    )?;
    let mut per_region = eager;
    per_region.extend(tail.per_region);
    Ok(MultiRegionSchedule { per_region })
}

/// Adapter shifting region indices for the tail of an eager-prefix run.
struct ShiftedProfile<'a, P> {
    inner: &'a P,
    shift: usize,
}

impl<P: SpeedupProfile> SpeedupProfile for ShiftedProfile<'_, P> {
    fn speedup(&self, op: Op, region: usize) -> f64 {
        self.inner.speedup(op, region + self.shift)
    }

    fn sub_time(&self, op: Op, region: usize) -> SimTime {
        self.inner.sub_time(op, region + self.shift)
    }
}

/// Approximate single-sequence execution order of a two-stream region
/// schedule, used for memory accounting: main-stream ops at their
/// sequential times, sub-stream ops interleaved at their region slots.
pub fn merged_order(regions: &[RegionSpec], schedule: &MultiRegionSchedule) -> Vec<Op> {
    let starts = region_starts(regions);
    let mut timed: Vec<(SimTime, u8, Op)> = Vec::new();
    let mut t = 0;
    for r in regions {
        for &(op, d) in &r.entries {
            timed.push((t, 0, op));
            t += d;
        }
    }
    for (ri, ops) in schedule.per_region.iter().enumerate() {
        let start = starts.get(ri).copied().unwrap_or(t);
        let span = regions
            .get(ri)
            .map(RegionSpec::main_time)
            .unwrap_or(1)
            .max(1);
        let step = (span / (ops.len() as SimTime + 1)).max(1);
        let mut slot = start + step;
        for &op in ops {
            timed.push((slot, 1, op));
            slot += step;
        }
    }
    timed.sort_by_key(|&(time, lane, op)| (time, lane, op));
    timed.into_iter().map(|(_, _, op)| op).collect()
}

/// Builds backward-pass regions from a graph and a cost model by grouping
/// `layers_per_region` consecutive layers (in backward order) into one
/// region each — the "DenseBlock per region" structure of the paper.
///
/// The main stream holds the loss and output-gradient chain; the returned
/// sub-kernel list holds every weight gradient.
pub fn backward_regions<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    layers_per_region: usize,
) -> (Vec<RegionSpec>, Vec<Op>) {
    let l = graph.layers();
    let per = layers_per_region.max(1);
    let mut regions: Vec<RegionSpec> = Vec::new();
    let mut current: Vec<(Op, SimTime)> = vec![(Op::Loss, cost.duration(Op::Loss))];
    let mut count = 0;
    for i in (1..=l).rev() {
        let op = Op::OutputGrad(LayerId(i));
        if graph.contains(op) {
            current.push((op, cost.duration(op)));
        }
        count += 1;
        if count == per {
            regions.push(RegionSpec {
                name: format!("R{}", regions.len() + 1),
                entries: std::mem::take(&mut current),
            });
            count = 0;
        }
    }
    if !current.is_empty() {
        regions.push(RegionSpec {
            name: format!("R{}", regions.len() + 1),
            entries: current,
        });
    }
    let subs = graph.weight_grads();
    (regions, subs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::list_scheduling::simulate;

    fn setup(l: usize, per: usize) -> (TrainGraph, Vec<RegionSpec>, Vec<Op>) {
        let g = TrainGraph::single_gpu(l);
        let (regions, subs) = backward_regions(&g, &UnitCost, per);
        (g, regions, subs)
    }

    #[test]
    fn all_sub_kernels_scheduled_exactly_once() {
        let (g, regions, subs) = setup(12, 3);
        let p = ConstantProfile {
            speedup: 1.2,
            sub_time: 1,
        };
        let s = multi_region_joint_schedule(&g, &regions, &subs, &p).unwrap();
        assert_eq!(s.num_assigned(), subs.len());
        let mut all: Vec<Op> = s.per_region.iter().flatten().copied().collect();
        all.sort();
        let mut expect = subs.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn readiness_respected() {
        // dW_1 depends on dO_2, which the main stream finishes last; it
        // must not land in the first region.
        let (g, regions, subs) = setup(8, 2);
        let p = ConstantProfile {
            speedup: 1.5,
            sub_time: 1,
        };
        let s = multi_region_joint_schedule(&g, &regions, &subs, &p).unwrap();
        assert!(!s.per_region[0].contains(&Op::WeightGrad(LayerId(1))));
        // dW_8 only needs the loss and may go anywhere, including region 0.
        let two_lane = s.to_schedule(&regions);
        // The two-lane schedule must simulate without deadlock.
        simulate(&g, &two_lane, &UnitCost).unwrap();
    }

    #[test]
    fn higher_speedup_region_preferred() {
        let (g, regions, subs) = setup(4, 2);
        // Region 1 gives much better speedups than region 0.
        struct P;
        impl SpeedupProfile for P {
            fn speedup(&self, _op: Op, region: usize) -> f64 {
                if region == 1 {
                    2.0
                } else {
                    1.01
                }
            }
            fn sub_time(&self, _op: Op, _region: usize) -> SimTime {
                1
            }
        }
        let s = multi_region_joint_schedule(&g, &regions, &subs, &P).unwrap();
        // Region 1 fills to (at least) its capacity.
        assert!(!s.per_region[1].is_empty());
    }

    #[test]
    fn capacity_exhaustion_overflows_into_last_region() {
        let (g, regions, subs) = setup(6, 3);
        // Sub kernels are so slow that regions exhaust quickly.
        let p = ConstantProfile {
            speedup: 1.1,
            sub_time: 100,
        };
        let s = multi_region_joint_schedule(&g, &regions, &subs, &p).unwrap();
        assert_eq!(s.num_assigned(), subs.len());
    }

    #[test]
    fn empty_regions_with_no_kernels_is_ok() {
        let g = TrainGraph::single_gpu(2);
        let p = ConstantProfile {
            speedup: 1.0,
            sub_time: 1,
        };
        let s = multi_region_joint_schedule(&g, &[], &[], &p).unwrap();
        assert_eq!(s.num_assigned(), 0);
    }

    #[test]
    fn empty_regions_with_kernels_is_error() {
        let g = TrainGraph::single_gpu(2);
        let p = ConstantProfile {
            speedup: 1.0,
            sub_time: 1,
        };
        assert!(multi_region_joint_schedule(&g, &[], &g.weight_grads(), &p).is_err());
    }

    #[test]
    fn memory_budget_falls_back_to_eager_prefix() {
        let (g, regions, subs) = setup(10, 2);
        let p = ConstantProfile {
            speedup: 1.2,
            sub_time: 1,
        };
        // A generous budget succeeds outright.
        let ok = schedule_with_memory_budget(&g, &regions, &subs, &p, &UnitCost, 1_000).unwrap();
        assert_eq!(ok.num_assigned(), subs.len());
        // The tightest possible budget still succeeds with eager
        // scheduling (unit sizes keep the eager peak small) or reports the
        // precise overshoot.
        match schedule_with_memory_budget(&g, &regions, &subs, &p, &UnitCost, 12) {
            Ok(s) => assert_eq!(s.num_assigned(), subs.len()),
            Err(Error::MemoryBudgetExceeded { peak, budget }) => {
                assert!(peak > budget);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn merged_order_contains_everything_once() {
        let (g, regions, subs) = setup(8, 2);
        let p = ConstantProfile {
            speedup: 1.2,
            sub_time: 1,
        };
        let s = multi_region_joint_schedule(&g, &regions, &subs, &p).unwrap();
        let order = merged_order(&regions, &s);
        let mains: usize = regions.iter().map(|r| r.entries.len()).sum();
        assert_eq!(order.len(), mains + subs.len());
        // The merged order must be a valid partial order of the graph.
        crate::schedule::validate_partial_order(&g, &order).unwrap();
    }

    #[test]
    fn two_lane_schedule_reduces_makespan() {
        let (g, regions, subs) = setup(16, 4);
        let p = ConstantProfile {
            speedup: 1.3,
            sub_time: 1,
        };
        let s = multi_region_joint_schedule(&g, &regions, &subs, &p).unwrap();
        let two = s.to_schedule(&regions);
        let t2 = simulate(&g, &two, &UnitCost).unwrap();
        // Sequential single-stream backward: 15 dO + 16 dW + loss = 31.
        let mut single = Vec::new();
        for r in &regions {
            single.extend(r.entries.iter().map(|&(op, _)| op));
        }
        single.extend(subs.iter().copied());
        let t1 = simulate(
            &g,
            &crate::schedule::Schedule::single_lane("gpu", single),
            &UnitCost,
        )
        .unwrap();
        assert!(
            t2.makespan() < t1.makespan(),
            "{} vs {}",
            t2.makespan(),
            t1.makespan()
        );
    }
}
