//! The training-iteration dependency graph.
//!
//! One scheduling unit is a whole training iteration, modelled as in the
//! paper's Section 2: the iteration *starts with the backward pass* (the
//! loss gradient is pinned to time zero) and *ends with the next
//! iteration's forward pass*, so the objective `T(F_L) + F_L` is the
//! completion of the last forward computation.
//!
//! The dependency set is exactly the constraint system of the paper:
//!
//! ```text
//! T(dO_{L+1}) = 0
//! {T(dW_i), T(dO_i)} >= T(S[dO_{i+1}]) + S[dO_{i+1}]
//! T(S[dO_i]) >= T(dO_i) + dO_i
//! T(S[dW_i]) >= T(dW_i) + dW_i
//! T(F_i)     >= T(S[dW_i]) + S[dW_i]
//! T(F_{i+1}) >= T(F_i) + F_i
//! ```
//!
//! with `S[..]` collapsing to a no-op when the corresponding
//! synchronization does not exist (single-GPU training has neither; pure
//! data-parallel training has no `S[dO]`; pure pipeline-parallel training
//! has no `S[dW]`).
//!
//! The crucial structural fact exploited by out-of-order backprop is
//! visible directly in the constraints: `dW_i` has *no dependents other
//! than its own synchronization/update*. Nothing in the backward chain
//! waits for it, so it may execute at any point after `dO_{i+1}`.

use crate::arena::GraphArena;
use crate::error::{Error, Result};
use crate::op::{LayerId, Op};

/// Configuration for building a [`TrainGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphConfig {
    /// Number of layers `L` (must be at least 1).
    pub layers: usize,
    /// Whether each `dW_i` is followed by a parameter synchronization
    /// `S[dW_i]` (data-parallel training).
    pub sync_weight_grads: bool,
    /// Whether each `dO_i` is followed by an activation-gradient transfer
    /// `S[dO_i]` (pipeline-parallel training across device boundaries).
    pub sync_output_grads: bool,
    /// Whether weight updates `U_i` are modelled as explicit operations.
    pub include_updates: bool,
    /// Whether the next iteration's forward pass `F_1..F_L` is part of the
    /// graph (it is in the paper's formulation; leaving it out is useful
    /// when scheduling the backward pass in isolation).
    pub include_forward: bool,
    /// Whether `dO_1` exists. The first layer has no predecessor to feed,
    /// so frameworks skip its input-gradient kernel; the paper's unit-time
    /// figures (e.g. Figure 5's makespan of 23) assume it is skipped.
    pub compute_first_output_grad: bool,
}

impl GraphConfig {
    /// Configuration for single-GPU training: no synchronizations.
    pub fn single_gpu(layers: usize) -> Self {
        GraphConfig {
            layers,
            sync_weight_grads: false,
            sync_output_grads: false,
            include_updates: true,
            include_forward: true,
            compute_first_output_grad: false,
        }
    }

    /// Configuration for data-parallel training: `S[dW_i]` present,
    /// `S[dO_i]` absent (the paper sets it to a no-op in Section 5.1).
    pub fn data_parallel(layers: usize) -> Self {
        GraphConfig {
            sync_weight_grads: true,
            ..GraphConfig::single_gpu(layers)
        }
    }

    /// Configuration for pipeline-parallel training: `S[dO_i]` present,
    /// `S[dW_i]` absent (the paper sets it to a no-op in Section 5.2).
    pub fn pipeline_parallel(layers: usize) -> Self {
        GraphConfig {
            sync_output_grads: true,
            ..GraphConfig::single_gpu(layers)
        }
    }
}

/// The dependency graph of one training iteration.
///
/// Operations are stored densely; [`TrainGraph::ops`] yields them in a
/// fixed canonical order (not an execution order). Dependencies are the
/// *true* data dependencies only — in particular `dW_i` does **not**
/// depend on `dO_i` having been consumed by layer `i-1`, which is the
/// false dependency conventional frameworks introduce (e.g. through
/// TensorFlow's `tf.group`) and which out-of-order backprop removes.
#[derive(Debug, Clone)]
pub struct TrainGraph {
    config: GraphConfig,
    arena: GraphArena,
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
}

impl TrainGraph {
    /// Builds the graph for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `config.layers == 0`.
    pub fn new(config: GraphConfig) -> Result<Self> {
        if config.layers == 0 {
            return Err(Error::InvalidConfig(
                "layer count must be at least 1".into(),
            ));
        }
        let l = config.layers;
        let mut ops = Vec::new();
        ops.push(Op::Loss);
        let lo = if config.compute_first_output_grad {
            1
        } else {
            2
        };
        // The canonical storage order is: loss, per-layer backward ops from
        // layer L down to 1, then updates, then forwards. Any execution
        // order is a permutation validated against `deps`.
        for i in (1..=l).rev() {
            if i >= lo {
                ops.push(Op::OutputGrad(LayerId(i)));
                if config.sync_output_grads {
                    ops.push(Op::SyncOutputGrad(LayerId(i)));
                }
            }
            ops.push(Op::WeightGrad(LayerId(i)));
            if config.sync_weight_grads {
                ops.push(Op::SyncWeightGrad(LayerId(i)));
            }
            if config.include_updates {
                ops.push(Op::Update(LayerId(i)));
            }
        }
        if config.include_forward {
            for i in 1..=l {
                ops.push(Op::Forward(LayerId(i)));
            }
        }

        // The arena gives every op an O(1) computed slot; ids are the
        // positions in the canonical storage order built above.
        let arena = GraphArena::from_ops(l, &ops);
        let index =
            |op: Op| -> usize { arena.id_of(op).expect("dependency op is in the graph") as usize };
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];

        // The incoming gradient available to layer i's computations: for
        // layer L it is the loss gradient, otherwise layer i+1's output
        // gradient (or its synchronization when one exists).
        let grad_source = |i: usize| -> Op {
            if i == l {
                Op::Loss
            } else if config.sync_output_grads {
                Op::SyncOutputGrad(LayerId(i + 1))
            } else {
                Op::OutputGrad(LayerId(i + 1))
            }
        };

        for (idx, &op) in ops.iter().enumerate() {
            match op {
                Op::Loss => {}
                Op::OutputGrad(LayerId(i)) | Op::WeightGrad(LayerId(i)) => {
                    deps[idx].push(index(grad_source(i)));
                }
                Op::SyncOutputGrad(LayerId(i)) => {
                    deps[idx].push(index(Op::OutputGrad(LayerId(i))));
                }
                Op::SyncWeightGrad(LayerId(i)) => {
                    deps[idx].push(index(Op::WeightGrad(LayerId(i))));
                }
                Op::Update(LayerId(i)) => {
                    let dep = if config.sync_weight_grads {
                        Op::SyncWeightGrad(LayerId(i))
                    } else {
                        Op::WeightGrad(LayerId(i))
                    };
                    deps[idx].push(index(dep));
                }
                Op::Forward(LayerId(i)) => {
                    // The next iteration's forward computation of layer i
                    // needs the layer's updated (and synchronized) weights
                    // and the previous layer's forward output.
                    let weight_ready = if config.include_updates {
                        Op::Update(LayerId(i))
                    } else if config.sync_weight_grads {
                        Op::SyncWeightGrad(LayerId(i))
                    } else {
                        Op::WeightGrad(LayerId(i))
                    };
                    deps[idx].push(index(weight_ready));
                    if i > 1 {
                        deps[idx].push(index(Op::Forward(LayerId(i - 1))));
                    }
                }
            }
        }
        for d in &mut deps {
            d.sort_unstable();
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                dependents[d].push(i);
            }
        }
        Ok(TrainGraph {
            config,
            arena,
            deps,
            dependents,
        })
    }

    /// Builds a single-GPU graph (no synchronizations) for `layers` layers.
    ///
    /// # Panics
    ///
    /// Panics when `layers == 0`; use [`TrainGraph::new`] for fallible
    /// construction.
    pub fn single_gpu(layers: usize) -> Self {
        TrainGraph::new(GraphConfig::single_gpu(layers)).expect("layers >= 1")
    }

    /// Builds a data-parallel graph (`S[dW]` present) for `layers` layers.
    ///
    /// # Panics
    ///
    /// Panics when `layers == 0`.
    pub fn data_parallel(layers: usize) -> Self {
        TrainGraph::new(GraphConfig::data_parallel(layers)).expect("layers >= 1")
    }

    /// Builds a pipeline-parallel graph (`S[dO]` present) for `layers`
    /// layers.
    ///
    /// # Panics
    ///
    /// Panics when `layers == 0`.
    pub fn pipeline_parallel(layers: usize) -> Self {
        TrainGraph::new(GraphConfig::pipeline_parallel(layers)).expect("layers >= 1")
    }

    /// The configuration this graph was built from.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Number of layers `L`.
    pub fn layers(&self) -> usize {
        self.config.layers
    }

    /// All operations in canonical storage order.
    pub fn ops(&self) -> &[Op] {
        self.arena.ops()
    }

    /// The arena mapping ops to dense u32 ids in O(1).
    pub fn arena(&self) -> &GraphArena {
        &self.arena
    }

    /// Number of operations in the graph.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the graph has no operations (never true for a valid graph).
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Whether `op` is part of this graph.
    pub fn contains(&self, op: Op) -> bool {
        self.arena.contains(op)
    }

    /// Dense index of `op`, if present — an O(1) arena slot computation.
    pub fn op_index(&self, op: Op) -> Option<usize> {
        self.arena.id_of(op).map(|id| id as usize)
    }

    /// Direct dependencies of `op`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownOp`] when `op` is not part of the graph.
    pub fn deps(&self, op: Op) -> Result<Vec<Op>> {
        let idx = self.op_index(op).ok_or(Error::UnknownOp(op))?;
        Ok(self.deps[idx]
            .iter()
            .map(|&i| self.arena.op_of(i as u32))
            .collect())
    }

    /// Direct dependents of `op`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownOp`] when `op` is not part of the graph.
    pub fn dependents(&self, op: Op) -> Result<Vec<Op>> {
        let idx = self.op_index(op).ok_or(Error::UnknownOp(op))?;
        Ok(self.dependents[idx]
            .iter()
            .map(|&i| self.arena.op_of(i as u32))
            .collect())
    }

    /// Dependency indices of the op at dense index `idx`.
    pub fn dep_indices(&self, idx: usize) -> &[usize] {
        &self.deps[idx]
    }

    /// Dependent indices of the op at dense index `idx`.
    pub fn dependent_indices(&self, idx: usize) -> &[usize] {
        &self.dependents[idx]
    }

    /// The conventional backpropagation order: for each layer from `L`
    /// down to `1`, compute `dO_i` then `dW_i` (then sync/update), then run
    /// the forward pass — i.e. strictly the reverse of the network layout,
    /// as existing deep-learning systems execute it.
    pub fn conventional_backprop(&self) -> Vec<Op> {
        // The canonical storage order was chosen to be exactly this.
        self.arena.ops().to_vec()
    }

    /// The gradient fast-forwarding order of Section 5.2: all output
    /// gradients first (in reverse layer order), then all weight gradients
    /// (also in reverse layer order), then updates, then the forward pass.
    pub fn fast_forward_backprop(&self) -> Vec<Op> {
        let l = self.config.layers;
        let mut order = vec![Op::Loss];
        for i in (1..=l).rev() {
            if let Some(op) = self.present(Op::OutputGrad(LayerId(i))) {
                order.push(op);
            }
            if let Some(op) = self.present(Op::SyncOutputGrad(LayerId(i))) {
                order.push(op);
            }
        }
        for i in (1..=l).rev() {
            order.push(Op::WeightGrad(LayerId(i)));
            if let Some(op) = self.present(Op::SyncWeightGrad(LayerId(i))) {
                order.push(op);
            }
            if let Some(op) = self.present(Op::Update(LayerId(i))) {
                order.push(op);
            }
        }
        if self.config.include_forward {
            for i in 1..=l {
                order.push(Op::Forward(LayerId(i)));
            }
        }
        order
    }

    /// Returns `Some(op)` when the graph contains `op`.
    fn present(&self, op: Op) -> Option<Op> {
        self.contains(op).then_some(op)
    }

    /// All weight-gradient operations in reverse layer order
    /// (`dW_L, ..., dW_1`) — the set out-of-order backprop may move.
    pub fn weight_grads(&self) -> Vec<Op> {
        (1..=self.config.layers)
            .rev()
            .map(|i| Op::WeightGrad(LayerId(i)))
            .collect()
    }

    /// All output-gradient operations in reverse layer order.
    pub fn output_grads(&self) -> Vec<Op> {
        (1..=self.config.layers)
            .rev()
            .filter_map(|i| self.present(Op::OutputGrad(LayerId(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate_order;

    #[test]
    fn zero_layers_is_rejected() {
        assert!(matches!(
            TrainGraph::new(GraphConfig::single_gpu(0)),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn single_gpu_op_count() {
        // L layers: 1 loss + (L-1) dO + L dW + L U + L F.
        let g = TrainGraph::single_gpu(4);
        assert_eq!(g.len(), 1 + 3 + 4 + 4 + 4);
    }

    #[test]
    fn data_parallel_adds_weight_syncs() {
        let g = TrainGraph::data_parallel(4);
        assert!(g.contains(Op::SyncWeightGrad(LayerId(1))));
        assert!(!g.contains(Op::SyncOutputGrad(LayerId(2))));
        assert_eq!(g.len(), 1 + 3 + 4 + 4 + 4 + 4);
    }

    #[test]
    fn pipeline_parallel_adds_output_syncs() {
        let g = TrainGraph::pipeline_parallel(4);
        assert!(g.contains(Op::SyncOutputGrad(LayerId(2))));
        assert!(!g.contains(Op::SyncWeightGrad(LayerId(1))));
    }

    #[test]
    fn first_output_grad_skipped_by_default() {
        let g = TrainGraph::single_gpu(3);
        assert!(!g.contains(Op::OutputGrad(LayerId(1))));
        let cfg = GraphConfig {
            compute_first_output_grad: true,
            ..GraphConfig::single_gpu(3)
        };
        let g2 = TrainGraph::new(cfg).unwrap();
        assert!(g2.contains(Op::OutputGrad(LayerId(1))));
    }

    #[test]
    fn weight_grad_depends_only_on_incoming_gradient() {
        let g = TrainGraph::single_gpu(4);
        // dW_3 depends on dO_4 only; dO_3 does NOT depend on dW_3.
        assert_eq!(
            g.deps(Op::WeightGrad(LayerId(3))).unwrap(),
            vec![Op::OutputGrad(LayerId(4))]
        );
        let deps_do3 = g.deps(Op::OutputGrad(LayerId(3))).unwrap();
        assert!(!deps_do3.contains(&Op::WeightGrad(LayerId(3))));
    }

    #[test]
    fn last_layer_grads_depend_on_loss() {
        let g = TrainGraph::single_gpu(2);
        assert_eq!(g.deps(Op::WeightGrad(LayerId(2))).unwrap(), vec![Op::Loss]);
        assert_eq!(g.deps(Op::OutputGrad(LayerId(2))).unwrap(), vec![Op::Loss]);
    }

    #[test]
    fn forward_depends_on_update_and_previous_forward() {
        let g = TrainGraph::single_gpu(3);
        let deps = g.deps(Op::Forward(LayerId(2))).unwrap();
        assert!(deps.contains(&Op::Update(LayerId(2))));
        assert!(deps.contains(&Op::Forward(LayerId(1))));
    }

    #[test]
    fn data_parallel_forward_gated_by_sync() {
        let g = TrainGraph::data_parallel(3);
        let deps = g.deps(Op::Update(LayerId(2))).unwrap();
        assert_eq!(deps, vec![Op::SyncWeightGrad(LayerId(2))]);
    }

    #[test]
    fn pipeline_grads_depend_on_synced_gradient() {
        let g = TrainGraph::pipeline_parallel(3);
        assert_eq!(
            g.deps(Op::WeightGrad(LayerId(2))).unwrap(),
            vec![Op::SyncOutputGrad(LayerId(3))]
        );
    }

    #[test]
    fn conventional_and_fast_forward_orders_are_valid() {
        for l in 1..=8 {
            for g in [
                TrainGraph::single_gpu(l),
                TrainGraph::data_parallel(l),
                TrainGraph::pipeline_parallel(l),
            ] {
                validate_order(&g, &g.conventional_backprop()).unwrap();
                validate_order(&g, &g.fast_forward_backprop()).unwrap();
            }
        }
    }

    #[test]
    fn unknown_op_is_reported() {
        let g = TrainGraph::single_gpu(2);
        assert_eq!(
            g.deps(Op::Forward(LayerId(9))),
            Err(Error::UnknownOp(Op::Forward(LayerId(9))))
        );
    }

    #[test]
    fn dependents_inverse_of_deps() {
        let g = TrainGraph::data_parallel(4);
        for &op in g.ops() {
            for dep in g.deps(op).unwrap() {
                assert!(g.dependents(dep).unwrap().contains(&op), "{dep} -> {op}");
            }
        }
    }

    #[test]
    fn loss_has_no_deps_and_many_dependents() {
        let g = TrainGraph::single_gpu(5);
        assert!(g.deps(Op::Loss).unwrap().is_empty());
        let deps = g.dependents(Op::Loss).unwrap();
        assert!(deps.contains(&Op::OutputGrad(LayerId(5))));
        assert!(deps.contains(&Op::WeightGrad(LayerId(5))));
    }
}
