//! Error types shared across the crate.

use crate::op::Op;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by graph construction, schedule validation, and the
/// scheduling algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A schedule references an operation that is not part of the graph.
    UnknownOp(Op),
    /// An operation appears more than once in a schedule.
    DuplicateOp(Op),
    /// A required operation is missing from a schedule.
    MissingOp(Op),
    /// An operation is scheduled before one of its dependencies.
    DependencyViolation {
        /// The operation scheduled too early.
        op: Op,
        /// The dependency that had not completed.
        missing_dep: Op,
    },
    /// A schedule exceeds the configured peak-memory budget.
    MemoryBudgetExceeded {
        /// Peak bytes required by the schedule.
        peak: u64,
        /// Allowed budget in bytes.
        budget: u64,
    },
    /// The requested configuration is structurally invalid (e.g. zero
    /// layers, zero devices, more pipeline stages than layers).
    InvalidConfig(String),
    /// A trace document is structurally invalid: unparsable JSON, a
    /// missing required field, out-of-order or overlapping spans.
    MalformedTrace(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownOp(op) => write!(f, "operation {op} is not part of the graph"),
            Error::DuplicateOp(op) => write!(f, "operation {op} appears more than once"),
            Error::MissingOp(op) => write!(f, "operation {op} is missing from the schedule"),
            Error::DependencyViolation { op, missing_dep } => {
                write!(
                    f,
                    "operation {op} scheduled before its dependency {missing_dep}"
                )
            }
            Error::MemoryBudgetExceeded { peak, budget } => {
                write!(f, "peak memory {peak} B exceeds budget {budget} B")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::MalformedTrace(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::LayerId;

    #[test]
    fn display_is_informative() {
        let e = Error::DependencyViolation {
            op: Op::WeightGrad(LayerId(3)),
            missing_dep: Op::OutputGrad(LayerId(4)),
        };
        let s = e.to_string();
        assert!(s.contains("dW3"));
        assert!(s.contains("dO4"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::InvalidConfig("x".into()));
    }
}
