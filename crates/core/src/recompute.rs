//! Checkpointing and re-computation (the paper's Section 6 combination).
//!
//! With gradient checkpointing only a subset of forward activations is
//! kept; the rest are re-computed during the backward pass from the
//! nearest earlier checkpoint. The paper argues this composes with
//! reverse first-k scheduling: by the time the reordered first-`k` weight
//! gradients run, most checkpointed segments have already been
//! re-computed and freed, so the reordering fits in the checkpointing
//! memory envelope.
//!
//! This module provides the plan representation, the classic `sqrt(L)`
//! segmentation heuristic, the extra-compute accounting, and a
//! memory-over-time model for checkpointed backward passes under both
//! conventional and reverse-first-k orders.

use crate::cost::CostModel;
use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::op::{LayerId, Op};
use crate::SimTime;

/// A checkpointing plan: which layer *inputs* are retained after the
/// forward pass. Layer 1's input (the batch itself) is always retained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecomputePlan {
    /// Checkpointed layers in ascending order (their inputs are kept).
    pub checkpoints: Vec<usize>,
    /// Total layer count the plan covers.
    pub layers: usize,
}

impl RecomputePlan {
    /// Builds a plan from explicit checkpoint layers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for out-of-range or unsorted
    /// checkpoints.
    pub fn new(layers: usize, mut checkpoints: Vec<usize>) -> Result<Self> {
        if layers == 0 {
            return Err(Error::InvalidConfig("layers must be positive".into()));
        }
        if !checkpoints.contains(&1) {
            checkpoints.push(1);
        }
        checkpoints.sort_unstable();
        checkpoints.dedup();
        if checkpoints.iter().any(|&c| c == 0 || c > layers) {
            return Err(Error::InvalidConfig("checkpoint out of range".into()));
        }
        Ok(RecomputePlan {
            checkpoints,
            layers,
        })
    }

    /// The standard `sqrt(L)` segmentation: checkpoints every
    /// `ceil(sqrt(L))` layers, giving `O(sqrt(L))` resident activations
    /// and at most one extra forward pass of compute.
    pub fn sqrt_heuristic(layers: usize) -> Self {
        let stride = (layers as f64).sqrt().ceil() as usize;
        let checkpoints = (1..=layers).step_by(stride.max(1)).collect();
        RecomputePlan {
            checkpoints,
            layers,
        }
    }

    /// A plan that keeps everything (checkpointing disabled).
    pub fn keep_all(layers: usize) -> Self {
        RecomputePlan {
            checkpoints: (1..=layers).collect(),
            layers,
        }
    }

    /// The checkpoint segment containing `layer`: `(segment_start,
    /// segment_end)` where `segment_start` is the nearest checkpoint at
    /// or below `layer`.
    pub fn segment_of(&self, layer: usize) -> (usize, usize) {
        let start = self
            .checkpoints
            .iter()
            .copied()
            .filter(|&c| c <= layer)
            .max()
            .unwrap_or(1);
        let end = self
            .checkpoints
            .iter()
            .copied()
            .filter(|&c| c > layer)
            .min()
            .map(|c| c - 1)
            .unwrap_or(self.layers);
        (start, end)
    }

    /// Whether `layer`'s input survives the forward pass.
    pub fn is_checkpointed(&self, layer: usize) -> bool {
        self.checkpoints.contains(&layer)
    }

    /// Resident activation bytes right after the forward pass.
    pub fn resident_after_forward<C: CostModel>(&self, cost: &C) -> u64 {
        self.checkpoints
            .iter()
            .map(|&c| cost.activation_bytes(LayerId(c)))
            .sum()
    }

    /// Extra forward compute incurred by re-computation: each
    /// non-checkpointed layer's forward runs once more (segment-by-segment
    /// re-computation during the backward pass).
    pub fn extra_forward_ns<C: CostModel>(&self, cost: &C) -> SimTime {
        (1..=self.layers)
            .filter(|&i| !self.is_checkpointed(i))
            .map(|i| cost.duration(Op::Forward(LayerId(i))))
            .sum()
    }
}

/// Memory-over-time of a checkpointed backward pass executing `order`
/// (loss/`dO`/`dW` ops): before layer `i`'s gradients run, its segment is
/// re-materialized (all activations of the segment become resident); the
/// segment is freed once its lowest layer's `dO` and `dW` completed.
/// Returns `(peak_bytes, samples)` where samples follow the order.
///
/// # Errors
///
/// Returns [`Error::UnknownOp`] for ops outside the graph and
/// [`Error::InvalidConfig`] when the plan does not match the graph.
pub fn checkpointed_memory_profile<C: CostModel>(
    graph: &TrainGraph,
    plan: &RecomputePlan,
    order: &[Op],
    cost: &C,
) -> Result<(u64, Vec<(Op, u64)>)> {
    if plan.layers != graph.layers() {
        return Err(Error::InvalidConfig(format!(
            "plan covers {} layers, graph has {}",
            plan.layers,
            graph.layers()
        )));
    }
    for &op in order {
        if !graph.contains(op) {
            return Err(Error::UnknownOp(op));
        }
    }
    let l = graph.layers();
    // Per-layer residency: checkpointed layers start resident; others are
    // materialized on demand. Gradient buffers as in the plain model.
    let mut act_resident = vec![false; l + 1];
    let mut act_consumers = vec![0usize; l + 1];
    for i in 1..=l {
        act_resident[i] = plan.is_checkpointed(i);
        act_consumers[i] = if graph.contains(Op::OutputGrad(LayerId(i))) {
            2
        } else {
            1
        };
    }
    let mut usage: u64 = (1..=l)
        .filter(|&i| act_resident[i])
        .map(|i| cost.activation_bytes(LayerId(i)))
        .sum();
    let mut grad_live = vec![0u64; l + 1]; // remaining consumers of g_i
    let mut peak = usage;
    let mut samples = Vec::with_capacity(order.len());

    let materialize = |layer: usize,
                       act_resident: &mut Vec<bool>,
                       act_consumers: &Vec<usize>,
                       usage: &mut u64,
                       peak: &mut u64| {
        // Re-materialize the segment containing `layer` (segment
        // re-computation runs the forward chain from the checkpoint).
        // Layers whose gradients already completed stay freed.
        let (start, end) = plan.segment_of(layer);
        for i in start..=end {
            if !act_resident[i] && act_consumers[i] > 0 {
                act_resident[i] = true;
                *usage += cost.activation_bytes(LayerId(i));
            }
        }
        *peak = (*peak).max(*usage);
    };
    let free_act = |layer: usize,
                    act_resident: &mut Vec<bool>,
                    act_consumers: &mut Vec<usize>,
                    usage: &mut u64| {
        act_consumers[layer] -= 1;
        if act_consumers[layer] == 0 && act_resident[layer] {
            act_resident[layer] = false;
            *usage -= cost.activation_bytes(LayerId(layer));
        }
    };

    for &op in order {
        match op {
            Op::Loss => {
                grad_live[l] = act_consumers[l] as u64;
                usage += cost.out_grad_bytes(LayerId(l));
                peak = peak.max(usage);
            }
            Op::OutputGrad(LayerId(i)) => {
                materialize(i, &mut act_resident, &act_consumers, &mut usage, &mut peak);
                if i > 1 {
                    grad_live[i - 1] = act_consumers[i - 1] as u64;
                    usage += cost.out_grad_bytes(LayerId(i - 1));
                    peak = peak.max(usage);
                }
                free_act(i, &mut act_resident, &mut act_consumers, &mut usage);
                if grad_live[i] > 0 {
                    grad_live[i] -= 1;
                    if grad_live[i] == 0 {
                        usage -= cost.out_grad_bytes(LayerId(i));
                    }
                }
            }
            Op::WeightGrad(LayerId(i)) => {
                materialize(i, &mut act_resident, &act_consumers, &mut usage, &mut peak);
                usage += cost.weight_bytes(LayerId(i));
                peak = peak.max(usage);
                free_act(i, &mut act_resident, &mut act_consumers, &mut usage);
                if grad_live[i] > 0 {
                    grad_live[i] -= 1;
                    if grad_live[i] == 0 {
                        usage -= cost.out_grad_bytes(LayerId(i));
                    }
                }
            }
            Op::Update(LayerId(i)) => {
                usage -= cost.weight_bytes(LayerId(i)).min(usage);
            }
            Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) | Op::Forward(_) => {}
        }
        samples.push((op, usage));
    }
    Ok((peak, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};
    use crate::memory::memory_profile;
    use crate::reverse_k::reverse_first_k;

    #[test]
    fn sqrt_heuristic_spacing() {
        let p = RecomputePlan::sqrt_heuristic(16);
        assert_eq!(p.checkpoints, vec![1, 5, 9, 13]);
        assert!(p.is_checkpointed(1));
        assert!(!p.is_checkpointed(2));
    }

    #[test]
    fn segments_partition_layers() {
        let p = RecomputePlan::new(10, vec![1, 4, 8]).unwrap();
        assert_eq!(p.segment_of(1), (1, 3));
        assert_eq!(p.segment_of(3), (1, 3));
        assert_eq!(p.segment_of(4), (4, 7));
        assert_eq!(p.segment_of(8), (8, 10));
        assert_eq!(p.segment_of(10), (8, 10));
    }

    #[test]
    fn plan_validation() {
        assert!(RecomputePlan::new(0, vec![]).is_err());
        assert!(RecomputePlan::new(5, vec![6]).is_err());
        // Layer 1 is added implicitly.
        let p = RecomputePlan::new(5, vec![3]).unwrap();
        assert_eq!(p.checkpoints, vec![1, 3]);
    }

    #[test]
    fn extra_compute_is_non_checkpointed_forwards() {
        let g = TrainGraph::single_gpu(9);
        let _ = g;
        let cost = TableCost::uniform(
            9,
            LayerCost {
                forward: 10,
                ..LayerCost::default()
            },
        );
        let p = RecomputePlan::sqrt_heuristic(9); // checkpoints 1, 4, 7
        assert_eq!(p.extra_forward_ns(&cost), 60); // 6 recomputed layers
        assert_eq!(RecomputePlan::keep_all(9).extra_forward_ns(&cost), 0);
    }

    #[test]
    fn checkpointing_reduces_resident_memory() {
        let cost = TableCost::uniform(
            16,
            LayerCost {
                activation_bytes: 100,
                out_grad_bytes: 10,
                weight_bytes: 1,
                ..LayerCost::default()
            },
        );
        let g = TrainGraph::single_gpu(16);
        let full = memory_profile(&g, &g.conventional_backprop(), &cost).unwrap();
        let plan = RecomputePlan::sqrt_heuristic(16);
        let (peak, _) =
            checkpointed_memory_profile(&g, &plan, &g.conventional_backprop(), &cost).unwrap();
        assert!(
            peak < full.peak / 2,
            "checkpointed peak {peak} vs full {}",
            full.peak
        );
    }

    #[test]
    fn keep_all_matches_start_state() {
        let g = TrainGraph::single_gpu(6);
        let plan = RecomputePlan::keep_all(6);
        let (peak, samples) =
            checkpointed_memory_profile(&g, &plan, &g.conventional_backprop(), &UnitCost).unwrap();
        assert!(peak >= 6);
        // Everything frees by the end.
        assert_eq!(samples.last().unwrap().1, 0);
    }

    #[test]
    fn reverse_k_composes_with_checkpointing() {
        // The paper's Section 6 claim: reverse first-k under checkpointing
        // stays within a modest envelope because the later segments are
        // already freed when the first-k weight gradients run.
        let cost = TableCost::uniform(
            25,
            LayerCost {
                activation_bytes: 100,
                out_grad_bytes: 10,
                weight_bytes: 10,
                ..LayerCost::default()
            },
        );
        let g = TrainGraph::data_parallel(25);
        let plan = RecomputePlan::sqrt_heuristic(25);
        let conv = reverse_first_k::<TableCost>(&g, 0, None).unwrap();
        let (peak_conv, _) = checkpointed_memory_profile(&g, &plan, &conv, &cost).unwrap();
        let ooo = reverse_first_k::<TableCost>(&g, 5, None).unwrap();
        let (peak_ooo, _) = checkpointed_memory_profile(&g, &plan, &ooo, &cost).unwrap();
        assert!(
            peak_ooo <= peak_conv + 5 * 110,
            "reverse-k peak {peak_ooo} vs conventional {peak_conv}"
        );
        // And far below the non-checkpointed footprint.
        let full = memory_profile(&g, &conv, &cost).unwrap();
        assert!(peak_ooo < full.peak);
    }

    #[test]
    fn mismatched_plan_rejected() {
        let g = TrainGraph::single_gpu(4);
        let plan = RecomputePlan::sqrt_heuristic(9);
        assert!(
            checkpointed_memory_profile(&g, &plan, &g.conventional_backprop(), &UnitCost).is_err()
        );
    }
}
