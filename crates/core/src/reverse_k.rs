//! Reverse first-k scheduling (the paper's Algorithm 2) and the concave
//! heuristic search for the optimal `k`.
//!
//! In data-parallel training the first layers' parameter synchronizations
//! are the critical operations: they gate the next iteration's forward
//! pass, which consumes layer 1 first. Reverse first-k scheduling hoists
//! the weight-gradient computations of layers `1..=k` to run immediately
//! after the output-gradient chain reaches them — in *ascending* layer
//! order — so their synchronizations start as early as possible and
//! overlap the remaining backward computation.

use crate::cost::CostModel;
use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::memory::reverse_k_peak_estimate;
use crate::op::{LayerId, Op};

/// Builds the backward-pass order of Algorithm 2 for the given `k`.
///
/// The produced order is: the loss; then for each layer `i` from `L` down
/// to `1`, `dW_i` (only when `i > k`) followed by `dO_i`; then
/// `dW_1, dW_2, ..., dW_k` — i.e. the first `k` weight gradients are
/// *reversed* relative to conventional backpropagation, exactly as in the
/// paper's pseudocode.
///
/// When `budget` is given, `k` is first clamped to the largest value whose
/// estimated peak memory (see
/// [`reverse_k_peak_estimate`]) stays
/// below the budget (Algorithm 2, lines 1–2).
///
/// The returned order covers only loss/`dO`/`dW`; synchronizations,
/// updates, and forwards are driven by the data-parallel simulator.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `k > L`.
pub fn reverse_first_k<C: CostModel>(
    graph: &TrainGraph,
    k: usize,
    budget: Option<(u64, &C)>,
) -> Result<Vec<Op>> {
    let l = graph.layers();
    if k > l {
        return Err(Error::InvalidConfig(format!(
            "k = {k} exceeds layer count {l}"
        )));
    }
    let k = match budget {
        Some((max_bytes, cost)) => k.min(max_feasible_k(graph, max_bytes, cost)),
        None => k,
    };
    let mut order = vec![Op::Loss];
    for i in (1..=l).rev() {
        if i > k {
            order.push(Op::WeightGrad(LayerId(i)));
        }
        if graph.contains(Op::OutputGrad(LayerId(i))) {
            order.push(Op::OutputGrad(LayerId(i)));
        }
    }
    for i in 1..=k {
        order.push(Op::WeightGrad(LayerId(i)));
    }
    Ok(order)
}

/// The largest `j` whose reverse-first-`j` peak-memory estimate stays
/// strictly below `max_bytes` (Algorithm 2, line 1). Returns 0 when even
/// `j = 1` would exceed the budget.
pub fn max_feasible_k<C: CostModel>(graph: &TrainGraph, max_bytes: u64, cost: &C) -> usize {
    (0..=graph.layers())
        .rev()
        .find(|&j| reverse_k_peak_estimate(graph, j, cost) < max_bytes)
        .unwrap_or(0)
}

/// The paper's heuristic search for the throughput-optimal `k`, assuming
/// throughput is roughly concave in `k`.
///
/// Starting with a step of `L/10`, the search scans `k = 0, Δk, 2Δk, …`,
/// keeps the best, then repeats within `(k−Δk, k+Δk)` with the step
/// halved, until the step reaches 1. `throughput(k)` is typically a
/// closure running the data-parallel simulator (in the paper it is a live
/// measurement of the training job).
///
/// Results are memoized per `k`: the refinement window
/// `(best_k−Δk, best_k+Δk)` always re-includes values measured in earlier
/// rounds, and each measurement may be a full simulator sweep (or, in a
/// live system, a noisy throughput sample whose re-measurement could move
/// `best_k` between rounds). The closure is therefore invoked **at most
/// once per distinct `k`**.
pub fn search_optimal_k<F>(layers: usize, mut throughput: F) -> usize
where
    F: FnMut(usize) -> f64,
{
    let mut measured: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    let mut best_k = 0usize;
    let mut best_t = f64::NEG_INFINITY;
    let mut lo = 0usize;
    let mut hi = layers;
    let mut step = (layers / 10).max(1);
    loop {
        let mut k = lo;
        while k <= hi && k <= layers {
            let t = *measured.entry(k).or_insert_with(|| throughput(k));
            if t > best_t {
                best_t = t;
                best_k = k;
            }
            if k == hi {
                break;
            }
            k = (k + step).min(hi);
        }
        if step == 1 {
            return best_k;
        }
        lo = best_k.saturating_sub(step);
        hi = (best_k + step).min(layers);
        step = (step / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};
    use crate::schedule::validate_partial_order;

    #[test]
    fn k_zero_is_conventional_with_dw_first() {
        let g = TrainGraph::data_parallel(4);
        let order = reverse_first_k::<UnitCost>(&g, 0, None).unwrap();
        assert_eq!(
            order,
            vec![
                Op::Loss,
                Op::WeightGrad(LayerId(4)),
                Op::OutputGrad(LayerId(4)),
                Op::WeightGrad(LayerId(3)),
                Op::OutputGrad(LayerId(3)),
                Op::WeightGrad(LayerId(2)),
                Op::OutputGrad(LayerId(2)),
                Op::WeightGrad(LayerId(1)),
            ]
        );
    }

    #[test]
    fn first_k_weight_grads_are_ascending_at_the_end() {
        let g = TrainGraph::data_parallel(5);
        let order = reverse_first_k::<UnitCost>(&g, 3, None).unwrap();
        let tail: Vec<Op> = order[order.len() - 3..].to_vec();
        assert_eq!(
            tail,
            vec![
                Op::WeightGrad(LayerId(1)),
                Op::WeightGrad(LayerId(2)),
                Op::WeightGrad(LayerId(3))
            ]
        );
    }

    #[test]
    fn all_k_values_produce_valid_partial_orders() {
        for l in 1..=10 {
            let g = TrainGraph::data_parallel(l);
            for k in 0..=l {
                let order = reverse_first_k::<UnitCost>(&g, k, None).unwrap();
                validate_partial_order(&g, &order).unwrap();
                let dw = order.iter().filter(|o| o.is_weight_grad()).count();
                assert_eq!(dw, l, "every dW scheduled exactly once");
            }
        }
    }

    #[test]
    fn k_beyond_layers_rejected() {
        let g = TrainGraph::data_parallel(3);
        assert!(reverse_first_k::<UnitCost>(&g, 4, None).is_err());
    }

    #[test]
    fn memory_budget_clamps_k() {
        let g = TrainGraph::data_parallel(10);
        let cost = TableCost::uniform(10, LayerCost::default());
        // M_fwd = 10. Estimate for j: 10 - (10 - j) + j = 2j. Budget 9
        // allows j up to 4 (2*4 = 8 < 9).
        assert_eq!(max_feasible_k(&g, 9, &cost), 4);
        let order = reverse_first_k(&g, 8, Some((9, &cost))).unwrap();
        // Clamped to 4: the tail holds dW_1..dW_4 ascending.
        let tail: Vec<Op> = order[order.len() - 4..].to_vec();
        assert_eq!(
            tail,
            vec![
                Op::WeightGrad(LayerId(1)),
                Op::WeightGrad(LayerId(2)),
                Op::WeightGrad(LayerId(3)),
                Op::WeightGrad(LayerId(4)),
            ]
        );
        assert!(order.iter().filter(|o| o.is_weight_grad()).count() == 10);
    }

    #[test]
    fn search_finds_concave_peak() {
        // A strictly concave throughput with its peak at k = 37.
        let f = |k: usize| -((k as f64 - 37.0).powi(2));
        assert_eq!(search_optimal_k(100, f), 37);
    }

    #[test]
    fn search_handles_small_layer_counts() {
        assert_eq!(search_optimal_k(1, |k| k as f64), 1);
        assert_eq!(search_optimal_k(2, |k| -(k as f64)), 0);
    }

    #[test]
    fn search_peak_at_boundaries() {
        assert_eq!(search_optimal_k(50, |k| k as f64), 50);
        assert_eq!(search_optimal_k(50, |k| -(k as f64)), 0);
    }

    #[test]
    fn search_evaluates_each_k_at_most_once() {
        use std::collections::HashMap;
        for layers in [1usize, 2, 7, 10, 50, 100, 137] {
            let mut calls: HashMap<usize, usize> = HashMap::new();
            let best = search_optimal_k(layers, |k| {
                *calls.entry(k).or_insert(0) += 1;
                // Concave with an off-center peak to force refinement rounds.
                -((k as f64) - (layers as f64) * 0.37).powi(2)
            });
            assert!(best <= layers);
            for (k, n) in &calls {
                assert_eq!(
                    *n, 1,
                    "throughput({k}) evaluated {n} times for layers = {layers}"
                );
            }
        }
    }
}
